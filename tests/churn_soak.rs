//! Soak test: a larger deployment (several branches, several clients)
//! under continuous churn — migrations, crashes, recoveries — driven by a
//! seeded schedule. Asserts liveness (the system keeps answering), safety
//! (balances never violate the information invariants) and determinism.
//! A second segment soaks a branch under a bursty open-loop workload with
//! a bounded admission queue and asserts the causal oracle stays clean
//! while the SLO report replays byte-identically.

use rmodp::bank;
use rmodp::netsim::time::SimDuration;
use rmodp::observe::{bus, oracle};
use rmodp::prelude::*;
use rmodp::transparency::proxy::migrate_transparently;
use rmodp::OdpSystem;

struct Churn {
    sys: OdpSystem,
    branches: Vec<bank::BankDeployment>,
    proxies: Vec<TransparentProxy>,
    accounts: Vec<i64>,
    /// (branch index, live home) — updated as clusters migrate.
    homes: Vec<(NodeId, CapsuleId, ClusterId)>,
}

fn build(seed: u64, branches: usize) -> Churn {
    let mut sys = OdpSystem::new(seed);
    let mut deployments = Vec::new();
    let mut proxies = Vec::new();
    let mut accounts = Vec::new();
    let mut homes = Vec::new();
    let client = sys.engine.add_node(SyntaxId::Text);
    for i in 0..branches {
        let dep = bank::deploy_branch(
            &mut sys.engine,
            if i % 2 == 0 {
                SyntaxId::Binary
            } else {
                SyntaxId::Text
            },
        )
        .unwrap();
        sys.publish(dep.teller.interface).unwrap();
        sys.publish(dep.manager.interface).unwrap();
        let mut proxy = sys.proxy(client, dep.manager.interface, TransparencySet::all());
        let t = proxy
            .call(
                &mut sys.engine,
                &mut sys.infra,
                "CreateAccount",
                &Value::record([("c", Value::Int(i as i64)), ("opening", Value::Int(1_000))]),
            )
            .unwrap();
        accounts.push(t.results.field("a").unwrap().as_int().unwrap());
        homes.push((dep.node, dep.capsule, dep.cluster));
        deployments.push(dep);
        proxies.push(proxy);
    }
    Churn {
        sys,
        branches: deployments,
        proxies,
        accounts,
        homes,
    }
}

/// A deterministic pseudo-random schedule derived from the seed (no
/// wall-clock, no global RNG).
fn schedule(seed: u64, steps: usize) -> Vec<u64> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..steps)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

fn run(seed: u64) -> (Vec<String>, u64) {
    let mut churn = build(seed, 3);
    let mut outcomes = Vec::new();
    for (step, r) in schedule(seed, 60).into_iter().enumerate() {
        let b = (r % churn.branches.len() as u64) as usize;
        match r % 5 {
            // Banking traffic.
            0..=2 => {
                let op = if r % 2 == 0 { "Deposit" } else { "Withdraw" };
                let amount = (r % 120) as i64 + 1;
                let args = Value::record([
                    ("c", Value::Int(b as i64)),
                    ("a", Value::Int(churn.accounts[b])),
                    ("d", Value::Int(amount)),
                ]);
                let t = churn.proxies[b]
                    .call(&mut churn.sys.engine, &mut churn.sys.infra, op, &args)
                    .unwrap_or_else(|e| panic!("step {step}: {op} failed: {e}"));
                assert!(
                    matches!(t.name.as_str(), "OK" | "NotToday" | "Error"),
                    "unexpected termination {t:?}"
                );
                outcomes.push(format!("{step} {op} {}", t.name));
            }
            // Migration churn.
            3 => {
                let node = churn.sys.engine.add_node(if r % 2 == 0 {
                    SyntaxId::Binary
                } else {
                    SyntaxId::Text
                });
                let capsule = churn.sys.engine.add_capsule(node).unwrap();
                let dep = churn.branches[b];
                let new_cluster = migrate_transparently(
                    &mut churn.sys.engine,
                    &mut churn.sys.infra,
                    churn.homes[b],
                    (node, capsule),
                    &[dep.teller.interface, dep.manager.interface],
                )
                .unwrap();
                churn.homes[b] = (node, capsule, new_cluster);
                outcomes.push(format!("{step} migrate b{b}"));
            }
            // Midnight reset (keeps the daily limit from starving traffic).
            _ => {
                let t = churn.proxies[b]
                    .call(
                        &mut churn.sys.engine,
                        &mut churn.sys.infra,
                        "ResetDay",
                        &Value::record::<&str, _>([]),
                    )
                    .unwrap();
                assert!(t.is_ok());
                outcomes.push(format!("{step} reset b{b}"));
            }
        }
    }
    // Safety: every account still satisfies the information invariants.
    for (b, dep) in churn.branches.iter().enumerate() {
        let (node, _, _) = churn.homes[b];
        let state = churn
            .sys
            .engine
            .object_state(node, dep.object)
            .unwrap()
            .expect("branch object is live");
        let key = format!("acct{}", churn.accounts[b]);
        let balance = state
            .path(&["accounts", &key, "balance"])
            .and_then(Value::as_int)
            .unwrap();
        let withdrawn = state
            .path(&["accounts", &key, "withdrawn_today"])
            .and_then(Value::as_int)
            .unwrap();
        assert!(balance >= 0, "branch {b} balance {balance}");
        assert!(
            (0..=500).contains(&withdrawn),
            "branch {b} withdrawn {withdrawn}"
        );
    }
    (outcomes, churn.sys.engine.sim().now().as_micros())
}

#[test]
fn soak_under_churn_is_safe_and_live() {
    let (outcomes, _) = run(2026);
    assert_eq!(outcomes.len(), 60);
    // Some of everything actually happened.
    assert!(outcomes.iter().any(|o| o.contains("migrate")));
    assert!(outcomes
        .iter()
        .any(|o| o.contains("Deposit") || o.contains("Withdraw")));
}

#[test]
fn soak_is_deterministic() {
    assert_eq!(run(7_771), run(7_771));
}

/// Drives a branch with a bounded shed-oldest admission queue through a
/// bursty open-loop workload; returns the SLO report JSON, the causal
/// oracle's violation count and the server-side shed count.
fn bursty_run(seed: u64) -> (String, usize, u64) {
    let mut sys = OdpSystem::new(seed);
    let dep = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
    sys.engine
        .set_admission(
            dep.node,
            AdmissionConfig::shed_oldest(8, SimDuration::from_micros(900)),
        )
        .unwrap();

    let manager = sys.engine.add_node(SyntaxId::Binary);
    let manager_ch = sys
        .engine
        .open_channel(manager, dep.manager.interface, ChannelConfig::default())
        .unwrap();
    let t = sys
        .engine
        .call(
            manager_ch,
            "CreateAccount",
            &Value::record([("c", Value::Int(7)), ("opening", Value::Int(100_000))]),
        )
        .unwrap();
    let acct = t.results.field("a").and_then(Value::as_int).unwrap();

    let client = sys.engine.add_node(SyntaxId::Text);
    let teller_ch = sys
        .engine
        .open_channel(client, dep.teller.interface, ChannelConfig::default())
        .unwrap();

    let scenario = Scenario::new(
        "churn_bursty",
        seed,
        LoadModel::Open {
            arrivals: ArrivalProcess::BurstyOnOff {
                on_rate_per_sec: 3_000.0,
                off_rate_per_sec: 100.0,
                mean_on: SimDuration::from_millis(40),
                mean_off: SimDuration::from_millis(120),
            },
        },
    )
    .lasting(SimDuration::from_millis(800))
    .with_mix(OperationMix::new().with(
        "Deposit",
        Value::record([
            ("c", Value::Int(7)),
            ("a", Value::Int(acct)),
            ("d", Value::Int(3)),
        ]),
        1,
    ))
    .with_contract(
        rmodp::core::contract::QosRequirement::none()
            .with_min_availability(0.25)
            .reliable(),
    );

    let (stats, report) = run_scenario(&mut sys.engine, teller_ch, &scenario);
    let violations = oracle::verify_causality(&bus::snapshot_events()).len();
    (report.to_json(), violations, stats.admission_shed)
}

#[test]
fn bursty_segment_is_causal_and_replays_identically() {
    let (a, violations_a, shed) = bursty_run(4_242);
    assert_eq!(violations_a, 0, "causal oracle must stay clean");
    assert!(shed > 0, "the bursts must actually trip admission control");
    let (b, violations_b, _) = bursty_run(4_242);
    assert_eq!(violations_b, 0);
    assert_eq!(a, b, "same seed must yield a byte-identical SLO report");
}
