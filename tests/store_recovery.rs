//! Cross-crate recovery invariants of the durable object store: the
//! longest committed prefix is exactly what every restart reproduces,
//! the persistence transparency rides the store through a media crash,
//! and a chaos-plan capsule kill recovered by the [`DurableGuard`]
//! loses zero committed updates.
//!
//! [`DurableGuard`]: rmodp::transparency::durable::DurableGuard

use rmodp::chaos::prelude::{FaultInjector, FaultKind, FaultPlan};
use rmodp::core::codec::SyntaxId;
use rmodp::core::value::Value;
use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::engineering::engine::Engine;
use rmodp::netsim::time::SimDuration;
use rmodp::observe::bus;
use rmodp::store::oo7::{state_checksum, Oo7Config, Oo7Workload};
use rmodp::store::{MemMedia, PersistentStore, StableMedia, StoreConfig, StoreEngine};
use rmodp::transparency::durable::DurableGuard;
use rmodp::transparency::persistence::PersistenceManager;
use rmodp::transparency::{OdpInfra, Transparency, TransparencySet, TransparentProxy};

fn open_mem() -> StoreEngine<MemMedia> {
    StoreEngine::open(MemMedia::new(), StoreConfig::default()).expect("fresh medium")
}

#[test]
fn every_restart_reproduces_the_longest_committed_prefix() {
    // Commit a known series of batches, remembering the synced WAL
    // length and state checksum after each commit; then cut the WAL at
    // every commit point and demand exactly that prefix back.
    let mut engine = open_mem();
    let mut commit_points = Vec::new();
    for batch in 0..8u64 {
        engine.begin().unwrap();
        for item in 0..4u64 {
            engine
                .put(
                    &format!("k{}", (batch + item) % 5),
                    Value::Int((batch * 10 + item) as i64),
                )
                .unwrap();
        }
        engine.commit().unwrap();
        commit_points.push((engine.media_mut().synced_len(), state_checksum(&engine)));
    }
    let media = engine.into_media();
    for (cut, expected) in commit_points {
        let mut m = media.clone();
        m.truncate_wal(cut);
        m.crash();
        let recovered = StoreEngine::open(m, StoreConfig::default()).unwrap();
        assert_eq!(
            state_checksum(&recovered),
            expected,
            "prefix up to {cut} bytes must reproduce its committed state"
        );
    }
}

#[test]
fn oo7_library_survives_power_loss_mid_batch() {
    let mut engine = open_mem();
    let mut wl = Oo7Workload::new(Oo7Config::small(), 13);
    wl.load(&mut engine).unwrap();
    wl.update_batch(&mut engine, 0, 8).unwrap();
    let committed = state_checksum(&engine);

    // A second update batch is staged but the power fails before commit.
    engine.begin().unwrap();
    let state = engine.get("oo7/atomic/1/0").unwrap().clone();
    engine.put("oo7/atomic/1/0", state).unwrap();
    let mut media = engine.into_media();
    media.crash();

    let engine = StoreEngine::open(media, StoreConfig::default()).unwrap();
    assert_eq!(state_checksum(&engine), committed);
    assert_eq!(
        wl.validate_all(&engine),
        wl.config().total_objects(),
        "every recovered object still satisfies its information schema"
    );
}

/// A deployed counter world with a backup capsule and a client.
struct World {
    engine: Engine,
    infra: OdpInfra,
    home: rmodp::core::id::NodeId,
    home_capsule: rmodp::core::id::CapsuleId,
    backup: rmodp::core::id::NodeId,
    backup_capsule: rmodp::core::id::CapsuleId,
    cluster: rmodp::core::id::ClusterId,
    client: rmodp::core::id::NodeId,
    interface: rmodp::core::id::InterfaceId,
}

fn world(seed: u64) -> World {
    let mut engine = Engine::new(seed);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let home = engine.add_node(SyntaxId::Binary);
    let backup = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(SyntaxId::Binary);
    let home_capsule = engine.add_capsule(home).unwrap();
    let backup_capsule = engine.add_capsule(backup).unwrap();
    let cluster = engine.add_cluster(home, home_capsule).unwrap();
    let (_, refs) = engine
        .create_object(
            home,
            home_capsule,
            cluster,
            "c",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    let mut infra = OdpInfra::new();
    infra.publish(&engine, refs[0].interface).unwrap();
    World {
        engine,
        infra,
        home,
        home_capsule,
        backup,
        backup_capsule,
        cluster,
        client,
        interface: refs[0].interface,
    }
}

#[test]
fn persistence_transparency_survives_a_store_media_crash() {
    let mut w = world(29);
    let mut store = open_mem();
    let mut manager = PersistenceManager::new();
    manager
        .deactivate_to_storage(
            &mut w.engine,
            &mut store,
            "acct",
            w.home,
            w.home_capsule,
            w.cluster,
        )
        .unwrap();

    // The medium crashes while the cluster is passivated: the checkpoint
    // was committed through the WAL, so it survives.
    let mut media = store.into_media();
    media.crash();
    let store = StoreEngine::open(media, StoreConfig::default()).unwrap();
    assert!(
        store.fetch("persistent/acct").is_some(),
        "the checkpoint is durable"
    );

    manager.restore(&mut w.engine, &store, "acct").unwrap();
    let channel = w
        .engine
        .open_channel(
            w.client,
            w.interface,
            rmodp::engineering::channel::ChannelConfig::default(),
        )
        .unwrap();
    let t = w
        .engine
        .call(channel, "Get", &Value::record::<&str, _>([]))
        .unwrap();
    assert!(t.is_ok(), "restored object answers");
}

#[test]
fn chaos_capsule_kill_with_durable_guard_loses_nothing() {
    let mut w = world(31);
    let mut store = open_mem();
    let mut guard = DurableGuard::new(
        "kill",
        (w.home, w.home_capsule, w.cluster),
        (w.backup, w.backup_capsule),
        vec![w.interface],
    );
    // Failover target selection is automatic from the backup pool: the
    // designated backup dies before it is ever needed, so recovery must
    // skip the dead pool head and land on the spare.
    let spare = w.engine.add_node(SyntaxId::Binary);
    let spare_capsule = w.engine.add_capsule(spare).unwrap();
    guard.push_backup((spare, spare_capsule));
    let backup_idx = w.engine.sim_node(w.backup).unwrap();
    w.engine.sim_mut().topology_mut().crash(backup_idx);
    let mut proxy = TransparentProxy::new(
        w.client,
        w.interface,
        TransparencySet::none().with(Transparency::Relocation),
    );

    // The chaos plan kills the capsule *and* crashes its node mid-way
    // through the update stream. Both windows outlast every
    // `apply_until` target and `finish` is never called, so the
    // injector's own stale reactivation cannot mask the guard.
    let epoch = w.engine.sim().now();
    let beyond = SimDuration::from_secs(600);
    let plan = FaultPlan::new()
        .with(
            SimDuration::from_millis(25),
            FaultKind::CapsuleKill {
                node: w.home,
                capsule: w.home_capsule,
                cluster: w.cluster,
                down_for: beyond,
            },
        )
        .with(
            SimDuration::from_millis(25),
            FaultKind::CrashRestart {
                node: w.engine.sim_node(w.home).unwrap(),
                down_for: beyond,
            },
        );
    let mut injector = FaultInjector::new(plan, epoch);

    let mut expected = 0i64;
    let mut recovered = false;
    for i in 0..16u64 {
        injector.apply_until(&mut w.engine, epoch + SimDuration::from_millis(4 * (i + 1)));
        let k = i as i64 + 1;
        let args = Value::record([("k", Value::Int(k))]);
        guard.log_op(&mut store, w.interface, "Add", &args);
        expected += k;
        let call = proxy.call(&mut w.engine, &mut w.infra, "Add", &args);
        if i == 2 {
            guard.checkpoint_now(&mut w.engine, &mut store).unwrap();
        }
        if call.is_err() {
            assert!(!recovered, "exactly one kill in the plan");
            guard
                .recover(&mut w.engine, &mut w.infra, &mut store)
                .unwrap();
            recovered = true;
        }
    }
    assert!(recovered, "the kill must interrupt the stream");
    assert!(guard.replayed() > 0, "the logged tail was replayed");
    assert_eq!(
        guard.home().0,
        spare,
        "automatic selection skipped the dead backup"
    );

    let t = proxy
        .call(
            &mut w.engine,
            &mut w.infra,
            "Get",
            &Value::record::<&str, _>([]),
        )
        .unwrap();
    assert_eq!(
        t.results.field("n").and_then(Value::as_int),
        Some(expected),
        "zero committed updates lost across the capsule kill"
    );
    assert_eq!(
        bus::counter("failure.lost_updates"),
        0,
        "the durable path's measured loss window is zero"
    );
}
