//! The transparency matrix: for each of the eight transparencies, one
//! scenario where it is enabled (the complexity is masked) and one where
//! it is not (the complexity is visible) — §9's claim made falsifiable.

use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::engineering::engine::CallError;
use rmodp::functions::group::ReplicationPolicy;
use rmodp::netsim::time::SimDuration;
use rmodp::netsim::topology::LinkConfig;
use rmodp::prelude::*;
use rmodp::transactions::rm::{ResourceManager, TxProfile};
use rmodp::transparency::failure::FailureGuard;
use rmodp::transparency::proxy::{migrate_transparently, ProxyError};
use rmodp::transparency::replication::replicated_counters;
use rmodp::transparency::transaction::{in_transaction, transfer};
use rmodp::OdpSystem;

struct CounterWorld {
    sys: OdpSystem,
    home: (NodeId, CapsuleId, ClusterId),
    client: NodeId,
    interface: InterfaceId,
}

fn counter_world(seed: u64) -> CounterWorld {
    let mut sys = OdpSystem::new(seed);
    sys.engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let node = sys.engine.add_node(SyntaxId::Binary);
    let client = sys.engine.add_node(SyntaxId::Text);
    let capsule = sys.engine.add_capsule(node).unwrap();
    let cluster = sys.engine.add_cluster(node, capsule).unwrap();
    let (_, refs) = sys
        .engine
        .create_object(
            node,
            capsule,
            cluster,
            "c",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    sys.publish(refs[0].interface).unwrap();
    CounterWorld {
        sys,
        home: (node, capsule, cluster),
        client,
        interface: refs[0].interface,
    }
}

fn add(k: i64) -> Value {
    Value::record([("k", Value::Int(k))])
}

fn get() -> Value {
    Value::record::<&str, _>([])
}

#[test]
fn access_heterogeneous_syntaxes_interwork() {
    // Client text-native, server binary-native: without marshalling this
    // interaction could not be expressed at all; the channel stack makes
    // it invisible.
    let mut w = counter_world(1);
    let mut proxy = w.sys.proxy(
        w.client,
        w.interface,
        TransparencySet::none().with(Transparency::Access),
    );
    let t = proxy
        .call(&mut w.sys.engine, &mut w.sys.infra, "Add", &add(3))
        .unwrap();
    assert_eq!(t.results.field("n"), Some(&Value::Int(3)));
}

#[test]
fn location_client_never_names_a_node() {
    let mut w = counter_world(2);
    // The proxy is constructed from an InterfaceId alone — the test
    // itself is the demonstration: no node/address appears below.
    let mut proxy = w.sys.proxy(
        w.client,
        w.interface,
        TransparencySet::none().with(Transparency::Location),
    );
    assert!(proxy
        .call(&mut w.sys.engine, &mut w.sys.infra, "Add", &add(1))
        .unwrap()
        .is_ok());
}

#[test]
fn relocation_on_vs_off() {
    for (enabled, expect_ok) in [(true, true), (false, false)] {
        let mut w = counter_world(3);
        let selection = if enabled {
            TransparencySet::none().with(Transparency::Relocation)
        } else {
            TransparencySet::none().with(Transparency::Location)
        };
        let mut proxy = w.sys.proxy(w.client, w.interface, selection);
        proxy
            .call(&mut w.sys.engine, &mut w.sys.infra, "Add", &add(2))
            .unwrap();
        let new_node = w.sys.engine.add_node(SyntaxId::Binary);
        let new_capsule = w.sys.engine.add_capsule(new_node).unwrap();
        migrate_transparently(
            &mut w.sys.engine,
            &mut w.sys.infra,
            w.home,
            (new_node, new_capsule),
            &[w.interface],
        )
        .unwrap();
        let outcome = proxy.call(&mut w.sys.engine, &mut w.sys.infra, "Get", &get());
        assert_eq!(outcome.is_ok(), expect_ok, "enabled={enabled}");
        if !expect_ok {
            assert!(matches!(
                outcome.unwrap_err(),
                ProxyError::Call(CallError::NotHere { .. })
            ));
        }
    }
}

#[test]
fn persistence_on_vs_off() {
    for enabled in [true, false] {
        let mut w = counter_world(4);
        let selection = if enabled {
            TransparencySet::none()
                .with(Transparency::Relocation)
                .with(Transparency::Persistence)
        } else {
            TransparencySet::none().with(Transparency::Relocation)
        };
        let mut proxy = w.sys.proxy(w.client, w.interface, selection);
        proxy
            .call(&mut w.sys.engine, &mut w.sys.infra, "Add", &add(6))
            .unwrap();
        // Deactivate the cluster to storage.
        let (node, capsule, cluster) = w.home;
        let mut pm = std::mem::take(&mut w.sys.infra.persistence);
        pm.deactivate_to_storage(
            &mut w.sys.engine,
            &mut w.sys.infra.storage,
            "ctr",
            node,
            capsule,
            cluster,
        )
        .unwrap();
        w.sys.infra.persistence = pm;
        w.sys.infra.relocator.deactivate(w.interface);

        let outcome = proxy.call(&mut w.sys.engine, &mut w.sys.infra, "Get", &get());
        if enabled {
            assert_eq!(
                outcome.unwrap().results.field("n"),
                Some(&Value::Int(6)),
                "restored transparently"
            );
        } else {
            assert!(matches!(
                outcome.unwrap_err(),
                ProxyError::Unresolvable { .. }
            ));
        }
    }
}

#[test]
fn failure_on_vs_off() {
    for guarded in [true, false] {
        let mut w = counter_world(5);
        let mut proxy = w.sys.proxy(
            w.client,
            w.interface,
            TransparencySet::none().with(Transparency::Failure),
        );
        proxy
            .call(&mut w.sys.engine, &mut w.sys.infra, "Add", &add(4))
            .unwrap();

        let backup = w.sys.engine.add_node(SyntaxId::Binary);
        let backup_capsule = w.sys.engine.add_capsule(backup).unwrap();
        let mut guard = FailureGuard::new(w.home, (backup, backup_capsule), vec![w.interface]);
        if guarded {
            guard.checkpoint_now(&mut w.sys.engine).unwrap();
        }
        let idx = w.sys.engine.sim_node(w.home.0).unwrap();
        w.sys.engine.sim_mut().topology_mut().crash(idx);
        if guarded {
            guard.recover(&mut w.sys.engine, &mut w.sys.infra).unwrap();
            let t = proxy
                .call(&mut w.sys.engine, &mut w.sys.infra, "Get", &get())
                .unwrap();
            assert_eq!(t.results.field("n"), Some(&Value::Int(4)));
        } else {
            let err = proxy
                .call(&mut w.sys.engine, &mut w.sys.infra, "Get", &get())
                .unwrap_err();
            assert!(matches!(err, ProxyError::Call(CallError::Timeout { .. })));
        }
    }
}

#[test]
fn replication_group_stays_consistent_and_masks_replica_loss_for_reads() {
    let mut sys = OdpSystem::new(6);
    sys.engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let client = sys.engine.add_node(SyntaxId::Binary);
    let (mut svc, replicas) = replicated_counters(
        &mut sys.engine,
        &mut sys.infra,
        client,
        ReplicationPolicy::Active,
        3,
    )
    .unwrap();
    for k in 1..=5 {
        svc.update(&mut sys.engine, &mut sys.infra, "Add", &add(k))
            .unwrap();
    }
    // All replicas agree.
    let all = svc
        .read_all(&mut sys.engine, &mut sys.infra, "Get", &get())
        .unwrap();
    for t in &all {
        assert_eq!(t.results.field("n"), Some(&Value::Int(15)));
    }
    // Lose one replica: reads still served after the view change.
    let dead = replicas[2];
    let node = sys.engine.lookup(dead).unwrap().location.node;
    let idx = sys.engine.sim_node(node).unwrap();
    sys.engine.sim_mut().topology_mut().crash(idx);
    svc.drop_replica(&mut sys.infra, dead).unwrap();
    for _ in 0..4 {
        let t = svc
            .read(&mut sys.engine, &mut sys.infra, "Get", &get())
            .unwrap();
        assert_eq!(t.results.field("n"), Some(&Value::Int(15)));
    }
}

#[test]
fn transaction_transparency_masks_coordination() {
    let mut rm = ResourceManager::new("bank", TxProfile::acid());
    // Seed accounts inside a transaction the application never sees.
    in_transaction(&mut rm, 1, |ctx| {
        ctx.write("a", Value::Int(500)).map_err(|e| e.to_string())?;
        ctx.write("b", Value::Int(500)).map_err(|e| e.to_string())
    })
    .unwrap();
    // Plain-looking transfers; atomicity and isolation are invisible.
    for _ in 0..10 {
        transfer(&mut rm, "a", "b", 37).unwrap();
        transfer(&mut rm, "b", "a", 21).unwrap();
    }
    let a = rm.read_committed("a").unwrap().as_int().unwrap();
    let b = rm.read_committed("b").unwrap().as_int().unwrap();
    assert_eq!(a + b, 1_000);
    // Even across a crash (permanence).
    rm.crash();
    rm.recover();
    assert_eq!(
        rm.read_committed("a").unwrap().as_int().unwrap()
            + rm.read_committed("b").unwrap().as_int().unwrap(),
        1_000
    );
}

#[test]
fn migration_transparency_with_lossy_network() {
    // Migration masked even while the network drops 20% of messages —
    // failure transparency's retransmission and relocation's replay
    // compose.
    let mut w = counter_world(7);
    let s = w.sys.engine.sim_node(w.home.0).unwrap();
    let c = w.sys.engine.sim_node(w.client).unwrap();
    w.sys.engine.sim_mut().topology_mut().set_link(
        c,
        s,
        LinkConfig::with_latency(SimDuration::from_millis(1)).loss(0.2),
    );
    let mut proxy = w.sys.proxy(
        w.client,
        w.interface,
        TransparencySet::none()
            .with(Transparency::Migration)
            .with(Transparency::Failure),
    );
    // Failure transparency's channel now carries the whole retry budget
    // (exponential backoff under a total deadline), so the application
    // calls exactly once per logical operation — no replay loop.
    for k in 1..=10 {
        let t = proxy
            .call(&mut w.sys.engine, &mut w.sys.infra, "Add", &add(k))
            .unwrap();
        assert!(t.is_ok());
    }
    let new_node = w.sys.engine.add_node(SyntaxId::Binary);
    let new_capsule = w.sys.engine.add_capsule(new_node).unwrap();
    migrate_transparently(
        &mut w.sys.engine,
        &mut w.sys.infra,
        w.home,
        (new_node, new_capsule),
        &[w.interface],
    )
    .unwrap();
    let t = proxy
        .call(&mut w.sys.engine, &mut w.sys.infra, "Get", &get())
        .unwrap();
    // Retransmissions share one request id and the server deduplicates,
    // so even under 20% loss every Add executed exactly once.
    let n = t.results.field("n").unwrap().as_int().unwrap();
    assert_eq!(n, 55, "n={n}");
}
