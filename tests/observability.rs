//! Cross-crate observability properties: deterministic traces, the
//! causal-order oracle on real scenario traces, and histogram quantile
//! monotonicity.
//!
//! The event bus is thread-local and the test harness runs each test on
//! its own thread, so scenarios here cannot contaminate each other.

use proptest::prelude::*;
use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::netsim::sim::{Addr, Sim};
use rmodp::netsim::time::SimDuration;
use rmodp::netsim::topology::{LinkConfig, Topology};
use rmodp::observe::metrics::Histogram;
use rmodp::observe::{bus, export, oracle, Event, EventKind};
use rmodp::prelude::*;
use rmodp::transactions::twopc::{Coordinator, Participant, TxRequest};
use rmodp::transparency::proxy::migrate_transparently;
use rmodp::OdpSystem;

/// A counter served through a proxy, migrated mid-conversation: events
/// from the engineering, transparency and netsim layers.
fn migration_scenario(seed: u64) -> Vec<Event> {
    let mut sys = OdpSystem::new(seed);
    sys.engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let home = sys.engine.add_node(SyntaxId::Binary);
    let target = sys.engine.add_node(SyntaxId::Text);
    let client = sys.engine.add_node(SyntaxId::Binary);
    let home_capsule = sys.engine.add_capsule(home).unwrap();
    let target_capsule = sys.engine.add_capsule(target).unwrap();
    let cluster = sys.engine.add_cluster(home, home_capsule).unwrap();
    let (_, refs) = sys
        .engine
        .create_object(
            home,
            home_capsule,
            cluster,
            "c",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    let interface = refs[0].interface;
    sys.publish(interface).unwrap();
    let mut proxy = sys.proxy(
        client,
        interface,
        TransparencySet::none().with(Transparency::Migration),
    );
    let add = Value::record([("k", Value::Int(3))]);
    proxy
        .call(&mut sys.engine, &mut sys.infra, "Add", &add)
        .unwrap();
    migrate_transparently(
        &mut sys.engine,
        &mut sys.infra,
        (home, home_capsule, cluster),
        (target, target_capsule),
        &[interface],
    )
    .unwrap();
    proxy
        .call(&mut sys.engine, &mut sys.infra, "Add", &add)
        .unwrap();
    bus::snapshot_events()
}

/// Two-phase commit over a 40%-lossy network: retransmissions, drops and
/// timer events — the adversarial input for the causal oracle.
fn lossy_twopc_scenario(seed: u64) -> Vec<Event> {
    let link = LinkConfig::with_latency(SimDuration::from_millis(1)).loss(0.4);
    let mut sim = Sim::with_topology(seed, Topology::full_mesh(link));
    let coord = Addr::new(sim.add_node(), 0);
    let mut parts = Vec::new();
    for i in 0..3 {
        let addr = Addr::new(sim.add_node(), 0);
        sim.attach(addr, Participant::new(format!("rm{i}")));
        parts.push(addr);
    }
    sim.attach(
        coord,
        Coordinator::new(parts, SimDuration::from_millis(20), 5),
    );
    let request = TxRequest {
        writes: vec![
            (0, "x".to_owned(), Value::Int(1)),
            (1, "y".to_owned(), Value::Int(2)),
            (2, "z".to_owned(), Value::Int(3)),
        ],
    };
    sim.send_from(
        Addr::EXTERNAL,
        coord,
        Coordinator::submit_payload(TxId::new(1), &request),
    );
    sim.run_until_idle();
    bus::snapshot_events()
}

#[test]
fn same_seed_produces_byte_identical_trace() {
    let a = export::to_jsonl(&migration_scenario(42));
    let b = export::to_jsonl(&migration_scenario(42));
    assert_eq!(a, b);
    assert!(!a.is_empty());

    let a = export::to_jsonl(&lossy_twopc_scenario(7));
    let b = export::to_jsonl(&lossy_twopc_scenario(7));
    assert_eq!(a, b);
}

#[test]
fn causal_oracle_is_clean_on_migration_scenario() {
    let events = migration_scenario(42);
    assert!(events.len() > 10);
    let violations = oracle::verify_causality(&events);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn causal_oracle_is_clean_on_lossy_two_phase_commit() {
    for seed in [1u64, 7, 42, 1001] {
        let events = lossy_twopc_scenario(seed);
        assert!(
            events.iter().any(|e| e.kind == EventKind::Drop),
            "seed {seed} lost nothing"
        );
        let violations = oracle::verify_causality(&events);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

#[test]
fn oracle_detects_deliver_without_send() {
    let mut events = migration_scenario(42);
    // Remove the Send carrying the span of the first Deliver: that
    // delivery is now causally unexplained.
    let span = events
        .iter()
        .find(|e| e.kind == EventKind::Deliver)
        .and_then(|e| e.span)
        .expect("scenario delivers messages");
    events.retain(|e| !(e.kind == EventKind::Send && e.span == Some(span)));
    let violations = oracle::verify_causality(&events);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, oracle::CausalityViolation::DeliverWithoutSend { .. })),
        "{violations:?}"
    );
}

#[test]
fn oracle_detects_disordered_stream() {
    let mut events = migration_scenario(42);
    assert!(events.len() >= 2);
    events.swap(0, 1);
    let violations = oracle::verify_causality(&events);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, oracle::CausalityViolation::DisorderedStream { .. })),
        "{violations:?}"
    );
}

proptest! {
    /// Nearest-rank quantiles are monotone for any sample set.
    #[test]
    fn histogram_quantiles_are_monotone(samples in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::default();
        for s in &samples {
            h.observe(*s);
        }
        let (p50, p95, p99) = h.quantiles();
        prop_assert!(h.min() <= p50);
        prop_assert!(p50 <= p95);
        prop_assert!(p95 <= p99);
        prop_assert!(p99 <= h.max());
        prop_assert_eq!(h.count(), samples.len());
    }

    /// The percentile function itself is monotone in `p`.
    #[test]
    fn histogram_percentile_is_monotone_in_p(
        samples in proptest::collection::vec(any::<u64>(), 1..100),
        lo in 0.0f64..100.0,
        hi in 0.0f64..100.0,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut h = Histogram::default();
        for s in &samples {
            h.observe(*s);
        }
        prop_assert!(h.percentile(lo) <= h.percentile(hi));
    }
}
