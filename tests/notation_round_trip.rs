//! The paper's own notation, end to end: parse the §5.1 `BankTeller`
//! text, register the parsed type, trade against it, and drive the real
//! branch through an interface discovered by the *textual* specification.

use rmodp::bank;
use rmodp::computational::notation::{parse_interface_type, BANK_TELLER_NOTATION};
use rmodp::computational::signature::InterfaceSignature;
use rmodp::computational::subtype::is_operational_subtype;
use rmodp::prelude::*;
use rmodp::OdpSystem;

#[test]
fn parsed_notation_matches_the_deployed_interfaces() {
    let parsed = parse_interface_type(BANK_TELLER_NOTATION).unwrap();
    // The deployed branch's teller interface is exactly substitutable for
    // the paper's textual specification, in both directions.
    let built = bank::computational::bank_teller();
    assert!(is_operational_subtype(&parsed, &built).is_ok());
    assert!(is_operational_subtype(&built, &parsed).is_ok());
    // And the manager is a proper subtype of the parsed teller.
    let manager = bank::computational::bank_manager();
    assert!(is_operational_subtype(&manager, &parsed).is_ok());
    assert!(is_operational_subtype(&parsed, &manager).is_err());
}

#[test]
fn notation_registered_type_drives_trading_and_invocation() {
    let mut sys = OdpSystem::new(66);
    // Register the *parsed* teller, plus the manager built in code: the
    // lattice must connect them structurally.
    let parsed = parse_interface_type(BANK_TELLER_NOTATION).unwrap();
    sys.types
        .register(InterfaceSignature::Operational(parsed))
        .unwrap();
    sys.types
        .register(InterfaceSignature::Operational(
            bank::computational::bank_manager(),
        ))
        .unwrap();
    assert!(sys.types.is_subtype("BankManager", "BankTeller"));

    let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
    sys.publish(branch.manager.interface).unwrap();
    sys.trader
        .export(
            "BankManager",
            branch.manager.interface,
            Value::record::<&str, _>([]),
        )
        .unwrap();

    // Importing by the textual type name finds the manager offer.
    let found = sys.find("BankTeller", None).unwrap().unwrap();
    assert_eq!(found, branch.manager.interface);

    // And the discovered interface serves the notation's operations with
    // the notation's terminations.
    let client = sys.engine.add_node(SyntaxId::Text);
    let ch = sys
        .engine
        .open_channel(client, found, ChannelConfig::default())
        .unwrap();
    let t = sys
        .engine
        .call(
            ch,
            "CreateAccount",
            &Value::record([("c", Value::Int(1)), ("opening", Value::Int(600))]),
        )
        .unwrap();
    let a = t.results.field("a").unwrap().as_int().unwrap();
    let t = sys
        .engine
        .call(
            ch,
            "Withdraw",
            &Value::record([
                ("c", Value::Int(1)),
                ("a", Value::Int(a)),
                ("d", Value::Int(501)),
            ]),
        )
        .unwrap();
    // Either refusal is legitimate per the notation: NotToday (limit) —
    // here the limit binds first.
    assert_eq!(t.name, "NotToday");
    assert!(t.results.field("daily_limit").is_some());
}
