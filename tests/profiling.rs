//! Cross-crate profiling properties: the critical-path analyzer's
//! attribution must sum exactly to observed latency on real scenarios,
//! head-based sampling must keep whole invocation trees (so a sampled
//! profile equals its unsampled counterpart) while bounding trace
//! memory, and the folded-stack export must be byte-identical across
//! same-seed reruns.
//!
//! The event bus is thread-local and the test harness runs each test on
//! its own thread, so scenarios here cannot contaminate each other.

use proptest::prelude::*;
use rmodp::computational::signature::InterfaceSignature;
use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::engineering::channel::{ChannelConfig, RetryPolicy};
use rmodp::engineering::engine::Engine;
use rmodp::engineering::nucleus::AdmissionConfig;
use rmodp::netsim::time::SimDuration;
use rmodp::netsim::topology::LinkConfig;
use rmodp::observe::bus::{self, CollectConfig};
use rmodp::observe::{Event, EventKind};
use rmodp::prelude::*;
use rmodp::profile;
use rmodp::trader::Federation;
use rmodp::OdpSystem;

/// A two-node counter rig with optional admission queueing and loss —
/// the knobs that exercise every profiler segment.
fn counter_scenario(seed: u64, calls: u32, queued: bool, loss: bool) -> Vec<Event> {
    let mut engine = Engine::new(seed);
    bus::set_enabled(true);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let server = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(SyntaxId::Text);
    let capsule = engine.add_capsule(server).unwrap();
    let cluster = engine.add_cluster(server, capsule).unwrap();
    let (_, refs) = engine
        .create_object(
            server,
            capsule,
            cluster,
            "c",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    if queued {
        engine
            .set_admission(
                server,
                AdmissionConfig::reject(64, SimDuration::from_millis(1)),
            )
            .unwrap();
    }
    let mut config = ChannelConfig::default();
    if loss {
        let c = engine.sim_node(client).unwrap();
        let s = engine.sim_node(server).unwrap();
        let lossy = LinkConfig {
            loss: 0.3,
            ..engine.sim().topology().link(c, s)
        };
        let topo = engine.sim_mut().topology_mut();
        topo.set_link(c, s, lossy);
        topo.set_link(s, c, lossy);
        config.retry = Some(RetryPolicy::reliable());
    }
    let channel = engine
        .open_channel(client, refs[0].interface, config)
        .unwrap();
    let add = Value::record([("k", Value::Int(1))]);
    for _ in 0..calls {
        let t = engine.call(channel, "Add", &add).unwrap();
        assert!(t.is_ok());
    }
    bus::snapshot_events()
}

/// The paper's bank branch called through a transparent proxy — the
/// "bank" attribution scenario.
fn bank_scenario(seed: u64, calls: u32) -> Vec<Event> {
    let mut sys = OdpSystem::new(seed);
    bus::set_enabled(true);
    let branch = rmodp::bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
    sys.publish(branch.manager.interface).unwrap();
    let client = sys.engine.add_node(SyntaxId::Text);
    let mut proxy = sys.proxy(
        client,
        branch.manager.interface,
        TransparencySet::none().with(Transparency::Location),
    );
    for i in 0..calls {
        let t = proxy
            .call(
                &mut sys.engine,
                &mut sys.infra,
                "CreateAccount",
                &Value::record([
                    ("c", Value::Int(i64::from(i))),
                    ("opening", Value::Int(100)),
                ]),
            )
            .unwrap();
        assert!(t.is_ok());
    }
    bus::snapshot_events()
}

/// The trader-mediated flow: offers exported, imported through the
/// trader, then invoked — the "trader" attribution scenario.
fn trader_scenario(seed: u64, calls: u32) -> Vec<Event> {
    let mut sys = OdpSystem::new(seed);
    bus::set_enabled(true);
    let branch = rmodp::bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
    rmodp::bank::deployment::register_types(&mut sys.types).unwrap();
    rmodp::bank::deployment::export_to_trader(&mut sys.trader, &branch).unwrap();
    sys.publish(branch.teller.interface).unwrap();
    sys.publish(branch.manager.interface).unwrap();
    let client = sys.engine.add_node(SyntaxId::Text);
    let teller = sys
        .find("BankTeller", None)
        .unwrap()
        .expect("branch exported");
    let mut proxy = sys.proxy(client, teller, TransparencySet::all());
    for i in 0..calls {
        let t = proxy
            .call(
                &mut sys.engine,
                &mut sys.infra,
                "CreateAccount",
                &Value::record([("c", Value::Int(i64::from(i))), ("opening", Value::Int(10))]),
            )
            .unwrap();
        assert!(t.is_ok());
    }
    bus::snapshot_events()
}

/// Attribution is exact: for every profiled invocation, the named
/// segments partition the observed latency with nothing left over.
fn assert_exact(events: &[Event], at_least: usize) -> Vec<profile::InvocationProfile> {
    let profiles = profile::analyze(events);
    assert!(
        profiles.len() >= at_least,
        "expected >= {at_least} profiles, got {}",
        profiles.len()
    );
    for p in &profiles {
        assert_eq!(
            p.segment_sum(),
            p.total_us(),
            "segments must sum exactly to observed latency: {p:?}"
        );
        let known: Vec<&str> = p.segments.iter().map(|&(n, _)| n).collect();
        assert_eq!(
            known,
            profile::SEGMENTS.to_vec(),
            "segment vocabulary drifted"
        );
    }
    profiles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact attribution on the counter rig across seeds and the
    /// queueing/loss knobs that produce every segment kind.
    #[test]
    fn attribution_is_exact_on_counter_scenarios(
        seed in 1u64..500,
        queued in any::<bool>(),
        loss in any::<bool>(),
    ) {
        let events = counter_scenario(seed, 6, queued, loss);
        let profiles = assert_exact(&events, 6);
        if queued {
            let waited: u64 = profiles.iter().map(|p| p.segment("queue.wait")).sum();
            prop_assert!(waited > 0, "queued scenario must show queue.wait time");
        }
    }

    /// Exact attribution on the bank branch behind a proxy.
    #[test]
    fn attribution_is_exact_on_bank_scenario(seed in 1u64..500) {
        let events = bank_scenario(seed, 4);
        assert_exact(&events, 4);
    }

    /// Exact attribution on the trader-mediated invocation flow.
    #[test]
    fn attribution_is_exact_on_trader_scenario(seed in 1u64..500) {
        let events = trader_scenario(seed, 4);
        assert_exact(&events, 4);
    }
}

#[test]
fn folded_stacks_are_byte_identical_across_same_seed_reruns() {
    let a = profile::folded_stacks(&profile::analyze(&counter_scenario(77, 10, true, true)));
    let b = profile::folded_stacks(&profile::analyze(&counter_scenario(77, 10, true, true)));
    assert_eq!(a, b, "folded stacks must be deterministic");
    assert!(a.contains("invoke.Add;"), "stacks name the operation: {a}");
    let c = profile::attribution_table(&profile::analyze(&counter_scenario(77, 10, true, true)));
    let d = profile::attribution_table(&profile::analyze(&counter_scenario(77, 10, true, true)));
    assert_eq!(c, d, "attribution table must be deterministic");
}

/// The headline sampling property: at 1/16 sampling with a ring sized
/// to a sixteenth of the full trace, peak trace memory drops by at
/// least 10x — and every invocation the sampler kept profiles exactly
/// as it does in the full trace (head-based sampling keeps whole
/// trees; seq/span numbering is allocated before the keep decision, so
/// the sampled trace is literally a filtered view of the full one).
#[test]
fn sampling_bounds_memory_without_changing_kept_attribution() {
    const SEED: u64 = 4_040;
    const CALLS: u32 = 300;

    let full = counter_scenario(SEED, CALLS, true, false);
    let full_peak_bytes = bus::peak_trace_bytes();
    let full_peak_events = bus::peak_trace_events();
    let full_profiles = profile::analyze(&full);
    assert_eq!(full_profiles.len() as u32, CALLS);

    bus::set_collect(CollectConfig {
        ring_capacity: Some(full_peak_events / 16),
        sample_denom: Some(16),
    });
    let sampled = counter_scenario(SEED, CALLS, true, false);
    let sampled_peak_bytes = bus::peak_trace_bytes();
    let drops = bus::drop_stats();
    bus::set_collect(CollectConfig::default());

    assert!(drops.sampled_out > 0, "1/16 sampling must drop spans");
    assert!(
        sampled_peak_bytes.saturating_mul(10) <= full_peak_bytes,
        "peak trace memory must drop >= 10x: full={full_peak_bytes} sampled={sampled_peak_bytes}"
    );

    // Same seed → same virtual-time schedule → same span numbering, so
    // kept profiles must match their full-trace counterparts exactly.
    let sampled_profiles = profile::analyze(&sampled);
    assert!(
        !sampled_profiles.is_empty(),
        "1/16 over {CALLS} calls keeps some invocations"
    );
    assert!(sampled_profiles.len() < full_profiles.len());
    for p in &sampled_profiles {
        assert!(
            full_profiles.contains(p),
            "sampled profile diverged from its unsampled counterpart: {p:?}"
        );
    }
}

/// Satellite of the bounded-collection work: constructing a fresh
/// `Engine` (which builds a `Sim`, which calls `bus::reset`) clears the
/// drop counters, peak gauges and sampling memory, while the collection
/// *configuration* survives — a run configured for sampling stays
/// configured after the next scenario boots.
#[test]
fn engine_construction_resets_drop_stats_but_keeps_collect_config() {
    bus::set_collect(CollectConfig {
        ring_capacity: Some(4),
        sample_denom: None,
    });
    let events = counter_scenario(9, 3, false, false);
    assert!(events.len() <= 4, "ring caps the retained trace");
    assert!(bus::drop_stats().ring_evicted > 0);
    assert!(bus::peak_trace_events() > 0);

    let _fresh = Engine::new(10); // resets the bus via Sim::new
    assert_eq!(bus::drop_stats().total(), 0, "drop counters reset");
    assert_eq!(bus::peak_trace_events(), 0, "peak gauges reset");
    assert_eq!(bus::event_count(), 0, "trace cleared");
    assert_eq!(
        bus::collect_config().ring_capacity,
        Some(4),
        "collection config survives reset like `enabled` does"
    );
    bus::set_collect(CollectConfig::default());
}

/// Trader-plan oracle: every `trader_plan` span nests acyclically under
/// the federated import span that spawned it, and the
/// `trader.plan.indexed` / `trader.plan.fallback` counters reconcile
/// exactly with the number of `trader_plan` spans emitted.
#[test]
fn trader_plan_spans_nest_acyclically_and_counters_reconcile() {
    bus::reset();
    bus::set_enabled(true);
    let mut repo = TypeRepository::new();
    repo.register(InterfaceSignature::Operational(
        rmodp::bank::computational::bank_teller(),
    ))
    .unwrap();

    let mut federation = Federation::new();
    for name in ["brisbane", "sydney", "melbourne"] {
        federation.add_trader(name).unwrap();
    }
    federation.link("brisbane", "sydney").unwrap();
    federation.link("sydney", "melbourne").unwrap();
    for (i, name) in ["brisbane", "sydney", "melbourne"].iter().enumerate() {
        let trader = federation.trader_mut(name).unwrap();
        trader.index_property("daily_limit", rmodp::trader::IndexKind::Hash);
        trader
            .export(
                "BankTeller",
                InterfaceId::new(i as u64 + 1),
                Value::record([("daily_limit", Value::Int(500 + i as i64))]),
            )
            .unwrap();
    }
    for hops in 0..3usize {
        // An indexed plan (equality on an indexed property) and a
        // fallback plan (an opaque comparison) per hop count.
        let indexed = ImportRequest::new("BankTeller")
            .constraint("daily_limit == 501")
            .unwrap();
        federation
            .import_federated("brisbane", &indexed, Some(&repo), hops)
            .unwrap();
        let opaque = ImportRequest::new("BankTeller")
            .constraint("daily_limit > 100")
            .unwrap();
        federation
            .import_federated("brisbane", &opaque, Some(&repo), hops)
            .unwrap();
    }

    let events = bus::snapshot_events();
    let plans: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::TraderPlan)
        .collect();
    assert!(!plans.is_empty());

    // Counters reconcile with span counts: every plan span is counted
    // exactly once as indexed or fallback.
    let indexed = bus::counter("trader.plan.indexed");
    let fallback = bus::counter("trader.plan.fallback");
    assert!(indexed > 0, "equality constraints compile to indexed plans");
    assert!(fallback > 0, "opaque comparisons fall back to scans");
    assert_eq!(
        indexed + fallback,
        plans.len() as u64,
        "plan counters must reconcile with emitted trader_plan spans"
    );

    // Acyclic nesting: each plan span's parent chain (learned from the
    // whole stream) terminates without revisiting a span, and a plan
    // spawned inside a federated import hangs off that import's span.
    let mut parent_of = std::collections::BTreeMap::new();
    for e in &events {
        if let (Some(span), Some(parent)) = (e.span, e.parent) {
            parent_of.entry(span).or_insert(parent);
        }
    }
    let fed_spans: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::TraderLookup && e.detail.starts_with("federated start="))
        .filter_map(|e| e.span)
        .collect();
    for plan in &plans {
        let span = plan.span.expect("trader_plan events carry a span");
        let mut seen = std::collections::BTreeSet::from([span]);
        let mut cursor = span;
        while let Some(&up) = parent_of.get(&cursor) {
            assert!(seen.insert(up), "cycle in span ancestry at {up}");
            cursor = up;
        }
        assert!(
            fed_spans.contains(&cursor),
            "a federated plan's ancestry must end at the import span; ended at {cursor}"
        );
    }
}
