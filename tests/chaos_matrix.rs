//! Chaos determinism and safety: the same seed must produce the same
//! fault plan and the same observe trace, and the hardened invocation
//! path must keep its safety invariants while faults are in flight.

use rmodp::chaos::prelude::*;
use rmodp::core::codec::SyntaxId;
use rmodp::core::id::TxId;
use rmodp::core::value::Value;
use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::engineering::channel::{ChannelConfig, RetryPolicy};
use rmodp::engineering::engine::Engine;
use rmodp::netsim::sim::{Addr, NodeIdx, Sim};
use rmodp::netsim::time::{SimDuration, SimTime};
use rmodp::netsim::topology::{LinkConfig, Topology};
use rmodp::observe::{bus, export};
use rmodp::store::{MemMedia, StoreConfig, StoreEngine};
use rmodp::transactions::twopc::{Coordinator, Participant, TxOutcome, TxRequest};
use rmodp::transparency::durable::DurableGuard;
use rmodp::transparency::failure::FailureGuard;
use rmodp::transparency::{OdpInfra, Transparency, TransparencySet, TransparentProxy};
use rmodp::workload::prelude::*;

fn profile() -> ChaosProfile {
    ChaosProfile {
        servers: vec![NodeIdx(0)],
        client: NodeIdx(1),
        duration: SimDuration::from_secs(1),
        crashes: 1,
        partitions: 1,
        loss_bursts: 1,
        latency_spikes: 1,
        mean_downtime: SimDuration::from_millis(50),
    }
}

#[test]
fn same_seed_same_fault_plan() {
    // Property over a seed sweep: plan generation is a pure function of
    // (seed, profile), and nearby seeds do not collide.
    let mut descriptions = Vec::new();
    for seed in 0..32u64 {
        let a = FaultPlan::generate(seed, &profile());
        let b = FaultPlan::generate(seed, &profile());
        assert_eq!(a, b, "seed {seed} produced two different plans");
        assert_eq!(a.describe(), b.describe());
        descriptions.push(a.describe());
    }
    descriptions.dedup();
    assert!(
        descriptions.len() > 16,
        "seed sweep collapsed to {} distinct plans",
        descriptions.len()
    );
}

/// One full chaos run: counter rig, open-loop load, generated plan.
/// Returns the complete observe trace as JSONL plus the recovery JSON.
fn chaos_run(seed: u64) -> (String, String) {
    let mut engine = Engine::new(seed);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let server = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(SyntaxId::Text);
    let capsule = engine.add_capsule(server).unwrap();
    let cluster = engine.add_cluster(server, capsule).unwrap();
    let (_obj, refs) = engine
        .create_object(
            server,
            capsule,
            cluster,
            "counter",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    let channel = engine
        .open_channel(client, refs[0].interface, ChannelConfig::default())
        .unwrap();

    let scenario = Scenario::new(
        "chaos_trace",
        seed,
        LoadModel::Open {
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 200.0,
            },
        },
    )
    .lasting(SimDuration::from_secs(1))
    .with_mix(OperationMix::new().with("Add", Value::record([("k", Value::Int(1))]), 1));

    let plan = FaultPlan::generate(
        seed,
        &ChaosProfile {
            servers: vec![engine.sim_node(server).unwrap()],
            client: engine.sim_node(client).unwrap(),
            ..profile()
        },
    );
    let outcome = run_scenario_under_faults(&mut engine, client, channel, &scenario, plan).unwrap();
    let trace = export::to_jsonl(&bus::snapshot_events());
    (trace, outcome.recovery.to_json())
}

#[test]
fn same_seed_same_observe_trace() {
    let (trace_a, recovery_a) = chaos_run(21);
    let (trace_b, recovery_b) = chaos_run(21);
    assert_eq!(recovery_a, recovery_b);
    assert!(
        trace_a == trace_b,
        "same seed produced diverging observe traces ({} vs {} bytes)",
        trace_a.len(),
        trace_b.len()
    );
    // And the trace actually contains the chaos lifecycle events.
    assert!(trace_a.contains("\"fault_inject\""));
    assert!(trace_a.contains("\"fault_clear\""));
}

#[test]
fn faults_recover_and_execution_stays_at_most_once() {
    let (_trace, recovery) = chaos_run(5);
    assert!(
        recovery.contains("\"duplicate_dispatches\":0"),
        "{recovery}"
    );
}

#[test]
fn retransmission_under_loss_executes_each_call_once() {
    let mut engine = Engine::new(77);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let server = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(SyntaxId::Binary);
    let capsule = engine.add_capsule(server).unwrap();
    let cluster = engine.add_cluster(server, capsule).unwrap();
    let (_obj, refs) = engine
        .create_object(
            server,
            capsule,
            cluster,
            "counter",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    let channel = engine
        .open_channel(
            client,
            refs[0].interface,
            ChannelConfig {
                retry: Some(RetryPolicy::reliable()),
                ..ChannelConfig::default()
            },
        )
        .unwrap();

    // Latency above the retransmit timeout guarantees genuine duplicate
    // arrivals at the server; loss makes some of them necessary.
    let (c, s) = (
        engine.sim_node(client).unwrap(),
        engine.sim_node(server).unwrap(),
    );
    let lossy = LinkConfig::with_latency(SimDuration::from_millis(30)).loss(0.3);
    engine.sim_mut().topology_mut().set_link(c, s, lossy);
    engine.sim_mut().topology_mut().set_link(s, c, lossy);

    let mut ok = 0;
    for _ in 0..20 {
        if engine
            .call(channel, "Add", &Value::record([("k", Value::Int(1))]))
            .is_ok()
        {
            ok += 1;
        }
    }
    engine
        .sim_mut()
        .topology_mut()
        .set_link(c, s, LinkConfig::ideal());
    engine
        .sim_mut()
        .topology_mut()
        .set_link(s, c, LinkConfig::ideal());
    let got = engine
        .call(channel, "Get", &Value::record::<&str, _>([]))
        .unwrap();
    let n = got.results.field("n").and_then(Value::as_int).unwrap();

    assert!(ok > 0, "some calls must get through 30% loss");
    assert!(
        n >= ok,
        "acknowledged calls must all be applied: n={n} ok={ok}"
    );
    assert!(n <= 20, "no call may execute twice: n={n}");
    assert_eq!(
        bus::counter("engineering.dedup.duplicate_dispatches"),
        0,
        "the dedup cache must suppress every duplicate dispatch"
    );
    assert!(
        bus::counter("engineering.dedup.hits") > 0,
        "30ms latency over a 25ms timeout must produce duplicate arrivals"
    );
}

#[test]
fn partition_during_prepare_never_reports_commit() {
    // Regression: a coordinator partitioned from a participant during
    // the prepare phase must end in Aborted (presumed abort), never
    // Committed, and the reachable participant must not expose the
    // transaction's writes.
    let link = LinkConfig::with_latency(SimDuration::from_millis(1));
    let mut sim = Sim::with_topology(9, Topology::full_mesh(link));
    let coord_node = sim.add_node();
    let coord = Addr::new(coord_node, 0);
    let mut parts = Vec::new();
    for i in 0..2 {
        let node = sim.add_node();
        let addr = Addr::new(node, 0);
        sim.attach(addr, Participant::new(format!("rm{i}")));
        parts.push(addr);
    }
    sim.attach(
        coord,
        Coordinator::new(parts.clone(), SimDuration::from_millis(20), 5),
    );

    // The partition is already up when the transaction is submitted, so
    // participant 1 never receives a prepare.
    sim.topology_mut().partition(coord.node, parts[1].node);
    let request = TxRequest {
        writes: vec![
            (0, "x".to_owned(), Value::Int(1)),
            (1, "y".to_owned(), Value::Int(2)),
        ],
    };
    sim.send_from(
        Addr::EXTERNAL,
        coord,
        Coordinator::submit_payload(TxId::new(1), &request),
    );
    sim.run_until_idle();

    let outcome = sim
        .inspect::<Coordinator>(coord)
        .unwrap()
        .outcome(TxId::new(1))
        .unwrap();
    assert_eq!(
        outcome,
        TxOutcome::Aborted,
        "prepare cannot complete across a partition"
    );
    let exposed = sim
        .inspect::<Participant>(parts[0])
        .unwrap()
        .rm
        .read_committed("x");
    assert_eq!(exposed, None, "no write from an unprepared transaction");

    // After healing, the system is still usable.
    sim.topology_mut().heal(coord.node, parts[1].node);
    sim.send_from(
        Addr::EXTERNAL,
        coord,
        Coordinator::submit_payload(TxId::new(2), &request),
    );
    sim.run_until_idle();
    assert_eq!(
        sim.inspect::<Coordinator>(coord)
            .unwrap()
            .outcome(TxId::new(2)),
        Some(TxOutcome::Committed)
    );
}

/// A guarded counter world for the loss-window comparison.
struct GuardWorld {
    engine: Engine,
    infra: OdpInfra,
    home: rmodp::core::id::NodeId,
    home_capsule: rmodp::core::id::CapsuleId,
    backup: rmodp::core::id::NodeId,
    backup_capsule: rmodp::core::id::CapsuleId,
    cluster: rmodp::core::id::ClusterId,
    proxy: TransparentProxy,
    interface: rmodp::core::id::InterfaceId,
}

fn guard_world(seed: u64) -> GuardWorld {
    let mut engine = Engine::new(seed);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let home = engine.add_node(SyntaxId::Binary);
    let backup = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(SyntaxId::Binary);
    let home_capsule = engine.add_capsule(home).unwrap();
    let backup_capsule = engine.add_capsule(backup).unwrap();
    let cluster = engine.add_cluster(home, home_capsule).unwrap();
    let (_, refs) = engine
        .create_object(
            home,
            home_capsule,
            cluster,
            "c",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .unwrap();
    let mut infra = OdpInfra::new();
    infra.publish(&engine, refs[0].interface).unwrap();
    let proxy = TransparentProxy::new(
        client,
        refs[0].interface,
        TransparencySet::none().with(Transparency::Relocation),
    );
    GuardWorld {
        engine,
        infra,
        home,
        home_capsule,
        backup,
        backup_capsule,
        cluster,
        proxy,
        interface: refs[0].interface,
    }
}

/// Crashes the home node via a chaos plan whose window outlasts the
/// test (apply only, never cleared), so the guard — not the injector —
/// must perform recovery.
fn crash_home_via_plan(w: &mut GuardWorld) {
    let epoch = w.engine.sim().now();
    let plan = FaultPlan::new().with(
        SimDuration::from_millis(1),
        FaultKind::CrashRestart {
            node: w.engine.sim_node(w.home).unwrap(),
            down_for: SimDuration::from_secs(600),
        },
    );
    let mut injector = FaultInjector::new(plan, epoch);
    injector.apply_until(&mut w.engine, epoch + SimDuration::from_millis(2));
    assert!(w
        .engine
        .sim()
        .topology()
        .is_crashed(w.engine.sim_node(w.home).unwrap()));
}

#[test]
fn in_memory_recovery_loses_the_tail_and_the_counter_measures_it() {
    let mut w = guard_world(61);
    let mut guard = FailureGuard::new(
        (w.home, w.home_capsule, w.cluster),
        (w.backup, w.backup_capsule),
        vec![w.interface],
    );
    let add = |k: i64| Value::record([("k", Value::Int(k))]);
    w.proxy
        .call(&mut w.engine, &mut w.infra, "Add", &add(10))
        .unwrap();
    guard.checkpoint_now(&mut w.engine).unwrap();
    // Post-checkpoint work the in-memory checkpoint cannot cover.
    w.proxy
        .call(&mut w.engine, &mut w.infra, "Add", &add(5))
        .unwrap();

    crash_home_via_plan(&mut w);
    guard.recover(&mut w.engine, &mut w.infra).unwrap();

    assert!(
        guard.lost_updates() > 0,
        "the in-memory path must measure a non-empty loss window"
    );
    assert!(bus::counter("failure.lost_updates") > 0);
    let t = w
        .proxy
        .call(
            &mut w.engine,
            &mut w.infra,
            "Get",
            &Value::record::<&str, _>([]),
        )
        .unwrap();
    assert_eq!(
        t.results.field("n").and_then(Value::as_int),
        Some(10),
        "recovery rolled back to the checkpoint"
    );
}

#[test]
fn durable_recovery_replays_the_tail_and_the_counter_stays_zero() {
    let mut w = guard_world(61);
    let mut store = StoreEngine::open(MemMedia::new(), StoreConfig::default()).unwrap();
    let mut guard = DurableGuard::new(
        "cmp",
        (w.home, w.home_capsule, w.cluster),
        (w.backup, w.backup_capsule),
        vec![w.interface],
    );
    let add = |k: i64| Value::record([("k", Value::Int(k))]);
    guard.log_op(&mut store, w.interface, "Add", &add(10));
    w.proxy
        .call(&mut w.engine, &mut w.infra, "Add", &add(10))
        .unwrap();
    guard.checkpoint_now(&mut w.engine, &mut store).unwrap();
    // The same post-checkpoint work — this time write-ahead logged.
    guard.log_op(&mut store, w.interface, "Add", &add(5));
    w.proxy
        .call(&mut w.engine, &mut w.infra, "Add", &add(5))
        .unwrap();

    crash_home_via_plan(&mut w);
    guard
        .recover(&mut w.engine, &mut w.infra, &mut store)
        .unwrap();

    assert_eq!(
        bus::counter("failure.lost_updates"),
        0,
        "the durable path's measured loss window is zero"
    );
    assert_eq!(guard.replayed(), 1, "the logged tail was replayed");
    let t = w
        .proxy
        .call(
            &mut w.engine,
            &mut w.infra,
            "Get",
            &Value::record::<&str, _>([]),
        )
        .unwrap();
    assert_eq!(
        t.results.field("n").and_then(Value::as_int),
        Some(15),
        "10 + 5: nothing lost"
    );
}

#[test]
fn injector_lands_faults_at_exact_virtual_instants() {
    let mut engine = Engine::new(31);
    let a = engine.add_node(SyntaxId::Binary);
    let _b = engine.add_node(SyntaxId::Binary);
    let na = engine.sim_node(a).unwrap();
    let plan = FaultPlan::new()
        .with(
            SimDuration::from_millis(10),
            FaultKind::CrashRestart {
                node: na,
                down_for: SimDuration::from_millis(20),
            },
        )
        .with(
            SimDuration::from_millis(15),
            FaultKind::Partition {
                a: na,
                b: engine.sim_node(_b).unwrap(),
                heal_after: SimDuration::from_millis(5),
            },
        );
    let mut injector = FaultInjector::new(plan, engine.sim().now());
    injector.finish(&mut engine);
    let applied = injector.into_applied();
    assert_eq!(applied.len(), 2);
    assert_eq!(applied[0].injected_at, SimTime::from_micros(10_000));
    assert_eq!(applied[0].cleared_at, Some(SimTime::from_micros(30_000)));
    assert_eq!(applied[1].injected_at, SimTime::from_micros(15_000));
    assert_eq!(applied[1].cleared_at, Some(SimTime::from_micros(20_000)));
    assert_eq!(bus::counter("chaos.faults_injected"), 2);
    assert_eq!(bus::counter("chaos.faults_cleared"), 2);
}
