//! End-to-end quorum failover invariants: a replicated group survives
//! a leader kill with automatic detector-driven failover, a stale
//! front is fenced rather than allowed to split the brain, and the
//! chaos-crate consistency oracle — which audits only the observe
//! event stream — proves at most one leader per epoch, zero committed
//! updates lost, and committed-only reads. A sustained-load test pins
//! the engineering dedup cache to a tiny capacity and demands
//! at-most-once execution *across* evictions.

use rmodp::chaos::prelude::ConsistencyReport;
use rmodp::core::codec::SyntaxId;
use rmodp::core::id::InterfaceId;
use rmodp::core::value::Value;
use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::engineering::channel::{ChannelConfig, RetryPolicy};
use rmodp::engineering::engine::Engine;
use rmodp::functions::{DetectorConfig, FailureDetector};
use rmodp::observe::bus;
use rmodp::transparency::replication::{quorum_counters, ReplicatedService, ReplicationError};
use rmodp::transparency::OdpInfra;

fn sim_idx(engine: &Engine, replica: InterfaceId) -> rmodp::netsim::sim::NodeIdx {
    let node = engine.lookup(replica).unwrap().location.node;
    engine.sim_node(node).unwrap()
}

/// One seeded leader-kill + stale-front schedule. Returns the oracle's
/// JSON verdict plus the counters a determinism check can compare.
fn quorum_schedule(seed: u64) -> String {
    let mut engine = Engine::new(seed);
    let client = engine.add_node(SyntaxId::Binary);
    let mut infra = OdpInfra::new();
    let (mut svc, replicas) = quorum_counters(&mut engine, &mut infra, client, 5).unwrap();
    let monitor = engine.add_node(SyntaxId::Binary);
    let mut detector = FailureDetector::new(monitor, DetectorConfig::default());
    for r in &replicas {
        detector.watch(*r);
    }

    for k in 1..=4 {
        svc.quorum_update(&mut engine, &mut infra, k).unwrap();
    }

    // Kill the leader; the detector must reach suspicion on virtual
    // time before the election is even attempted.
    let view = infra.groups.view(svc.group()).unwrap();
    let leader = view.leader.unwrap();
    let leader_idx = sim_idx(&engine, leader);
    engine.sim_mut().topology_mut().crash(leader_idx);
    let mut rounds = 0;
    while !detector.is_suspected(leader) {
        detector.run_round(&mut engine);
        rounds += 1;
        assert!(rounds <= 8, "detector never suspected the dead leader");
    }
    svc.fail_over(&mut engine, &mut infra).unwrap();
    let t = svc.quorum_read(&mut engine, &mut infra).unwrap();
    assert_eq!(
        t.results.field("n"),
        Some(&Value::Int(10)),
        "every committed update survived the failover"
    );
    for k in 5..=6 {
        svc.quorum_update(&mut engine, &mut infra, k).unwrap();
    }

    // A takeover front elects a newer epoch; the old front must be
    // fenced by the replicas on its next write.
    let mut front2 =
        ReplicatedService::attach(&mut engine, &mut infra, client, svc.group()).unwrap();
    match svc.quorum_update(&mut engine, &mut infra, 100) {
        Err(ReplicationError::Fenced { epoch, newer }) => assert!(newer > epoch),
        other => panic!("stale front must be fenced, got {other:?}"),
    }
    front2.quorum_update(&mut engine, &mut infra, 7).unwrap();
    let t = front2.quorum_read(&mut engine, &mut infra).unwrap();
    assert_eq!(
        t.results.field("n"),
        Some(&Value::Int(28)),
        "the fenced write was never committed"
    );

    let oracle = ConsistencyReport::gather();
    assert!(oracle.clean(), "oracle unclean:\n{}", oracle.render());
    assert!(oracle.fenced_writes() > 0, "the schedule exercised fencing");
    assert_eq!(oracle.split_brain(), 0, "at most one leader per epoch");
    assert_eq!(oracle.lost_committed(), 0, "no committed update was lost");

    format!(
        "{}|suspects={}|failovers={}|events={}",
        oracle.to_json(),
        bus::counter("detector.suspects"),
        bus::counter("replication.failovers"),
        bus::snapshot_events().len()
    )
}

#[test]
fn leader_kill_fails_over_and_the_oracle_stays_clean() {
    quorum_schedule(91);
}

#[test]
fn failover_schedule_is_deterministic() {
    assert_eq!(
        quorum_schedule(92),
        quorum_schedule(92),
        "same seed must reproduce the same oracle verdict, counters, and event count"
    );
}

#[test]
fn dedup_cache_sustains_load_within_a_bounded_footprint() {
    let run = |seed: u64| -> (usize, u64, u64, i64) {
        let mut engine = Engine::new(seed);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let server = engine.add_node(SyntaxId::Binary);
        let client = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(server).unwrap();
        let cluster = engine.add_cluster(server, capsule).unwrap();
        let (_, refs) = engine
            .create_object(
                server,
                capsule,
                cluster,
                "c",
                "counter",
                CounterBehaviour::initial_state(),
                1,
            )
            .unwrap();
        // A tiny cache: sustained load must evict constantly while the
        // at-most-once guarantee holds for every *live* retransmission.
        engine.set_dedup_capacity(server, 4).unwrap();
        let channel = engine
            .open_channel(
                client,
                refs[0].interface,
                ChannelConfig {
                    retry: Some(RetryPolicy::reliable()),
                    ..ChannelConfig::default()
                },
            )
            .unwrap();

        // Drop most replies for the whole run: requests execute, their
        // replies vanish, and every retransmission arrives as a genuine
        // duplicate the cache must absorb — at a capacity far below the
        // number of in-flight-ever requests.
        let server_idx = engine.sim_node(server).unwrap();
        let client_idx = engine.sim_node(client).unwrap();
        let healthy = engine.sim().topology().link(server_idx, client_idx);
        engine.sim_mut().topology_mut().set_link(
            server_idx,
            client_idx,
            rmodp::netsim::topology::LinkConfig {
                loss: 0.5,
                ..healthy
            },
        );

        for i in 0..60u64 {
            let _ = engine.call(channel, "Add", &Value::record([("k", Value::Int(1))]));
            // The cache never outgrows its capacity, at any point in
            // the sustained stream.
            let len = engine.dedup_len(server).unwrap();
            assert!(len <= 4, "call {i}: dedup cache grew to {len}");
        }
        engine
            .sim_mut()
            .topology_mut()
            .set_link(server_idx, client_idx, healthy);
        let t = engine
            .call(channel, "Get", &Value::record::<&str, _>([]))
            .unwrap();
        let n = t.results.field("n").and_then(Value::as_int).unwrap();

        let hits = bus::counter("engineering.dedup.hits");
        let dupes = bus::counter("engineering.dedup.duplicate_dispatches");
        (engine.dedup_len(server).unwrap(), hits, dupes, n)
    };

    let (len, hits, dupes, n) = run(17);
    assert!(len <= 4);
    assert!(hits > 0, "reply loss must have forced duplicate arrivals");
    assert_eq!(
        dupes, 0,
        "at-most-once must hold across evictions: an evicted entry is only \
         re-dispatched when its call already left the retry loop"
    );
    assert!(
        (1..=60).contains(&n),
        "applied count stays within the offered load: {n}"
    );

    // Eviction order and counters are deterministic for a given seed.
    assert_eq!(run(17), (len, hits, dupes, n));
}
