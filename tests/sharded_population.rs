//! Cross-crate determinism of the sharded kernel: the same seed must
//! produce byte-identical observable results at any shard count, with
//! and without fault injection, on serial and threaded execution.

use rmodp_chaos::plan::{FaultKind, FaultPlan};
use rmodp_chaos::shard::FaultPlanHook;
use rmodp_netsim::sim::NodeIdx;
use rmodp_netsim::time::SimDuration;
use rmodp_workload::population::{
    run_population, run_population_with_hook, PopulationConfig, PopulationScenario,
};

fn config(scenario: PopulationScenario, shards: usize) -> PopulationConfig {
    let mut config = PopulationConfig::new(scenario, 20_260_808, shards);
    config.regions = 6;
    config.capsules_per_region = 32;
    config.ops_per_capsule = 3;
    config.arrival_window = SimDuration::from_millis(100);
    config.collect_export = true;
    config
}

#[test]
fn bank_branch_runs_are_identical_at_shard_counts_1_2_4() {
    let base = run_population(&config(PopulationScenario::Bank, 1));
    assert_eq!(base.stats.offered, 6 * 32 * 3, "every op was issued");
    assert_eq!(base.stats.lost, 0, "no faults, no losses");
    assert!(base.report.pass, "{}", base.report.render());

    for shards in [2, 4] {
        let run = run_population(&config(PopulationScenario::Bank, shards));
        assert!(
            run.cross_shard_messages > 0,
            "{shards}-shard run must exercise the cross-shard merge"
        );
        assert_eq!(
            run.export, base.export,
            "JSONL observe export differs at {shards} shards"
        );
        assert_eq!(run.export_checksum, base.export_checksum);
        assert_eq!(run.state_checksum, base.state_checksum);
        assert_eq!(run.events, base.events, "event count at {shards} shards");
        assert_eq!(
            run.report, base.report,
            "SLO verdict differs at {shards} shards"
        );
    }
}

#[test]
fn fault_injection_stays_shard_count_invariant() {
    // Crash region 1's server (node 2) mid-run: requests in flight to it
    // die, the capsules that targeted it stall, and the verdict flips —
    // identically at every shard count.
    let plan = FaultPlan::new().with(
        SimDuration::from_millis(20),
        FaultKind::CrashRestart {
            node: NodeIdx(2),
            down_for: SimDuration::from_millis(40),
        },
    );

    let run_at = |shards: usize| {
        let mut hook = FaultPlanHook::compile(&plan).expect("topology-level plan");
        run_population_with_hook(&config(PopulationScenario::Bank, shards), &mut hook)
    };

    let base = run_at(1);
    assert!(base.stats.lost > 0, "the crash must actually cost requests");
    assert_eq!(base.hook_firings, 2, "crash + restart");

    for shards in [2, 3] {
        let run = run_at(shards);
        assert_eq!(run.export, base.export, "faulted export at {shards} shards");
        assert_eq!(run.export_checksum, base.export_checksum);
        assert_eq!(run.state_checksum, base.state_checksum);
        assert_eq!(run.stats.lost, base.stats.lost);
        assert_eq!(run.report, base.report);
    }
}
