//! Whole-system integration: the bank deployed through `OdpSystem`, used
//! through trading, typed binding, transparent proxies, policies and
//! schemas — every viewpoint exercised in one scenario.

use rmodp::bank;
use rmodp::enterprise::prelude::*;
use rmodp::prelude::*;
use rmodp::OdpSystem;

fn banked_system(seed: u64) -> (OdpSystem, bank::BankDeployment, NodeId) {
    let mut sys = OdpSystem::new(seed);
    let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
    bank::deployment::register_types(&mut sys.types).unwrap();
    bank::deployment::export_to_trader(&mut sys.trader, &branch).unwrap();
    sys.publish(branch.teller.interface).unwrap();
    sys.publish(branch.manager.interface).unwrap();
    let client = sys.engine.add_node(SyntaxId::Text);
    (sys, branch, client)
}

fn dwa(c: i64, a: i64, d: i64) -> Value {
    Value::record([
        ("c", Value::Int(c)),
        ("a", Value::Int(a)),
        ("d", Value::Int(d)),
    ])
}

#[test]
fn trade_bind_and_bank_under_full_transparency() {
    let (mut sys, _branch, client) = banked_system(101);
    // Dynamic binding: discover the manager via the trader.
    let manager = sys.find("BankManager", None).unwrap().unwrap();
    let mut proxy = sys.proxy(client, manager, TransparencySet::all());

    let t = proxy
        .call(
            &mut sys.engine,
            &mut sys.infra,
            "CreateAccount",
            &Value::record([("c", Value::Int(1)), ("opening", Value::Int(900))]),
        )
        .unwrap();
    let a = t.results.field("a").unwrap().as_int().unwrap();

    // The paper's scenario through the full stack.
    let t = proxy
        .call(&mut sys.engine, &mut sys.infra, "Withdraw", &dwa(1, a, 400))
        .unwrap();
    assert!(t.is_ok());
    let t = proxy
        .call(&mut sys.engine, &mut sys.infra, "Withdraw", &dwa(1, a, 200))
        .unwrap();
    assert_eq!(t.name, "NotToday");
}

#[test]
fn policies_schemas_and_runtime_agree_on_the_daily_limit() {
    // The enterprise policy, the information invariant and the deployed
    // behaviour must all draw the line at the same place.
    let (mut sys, branch, client) = banked_system(102);
    let roster = bank::enterprise::BranchRoster::default();
    let community = bank::enterprise::branch_community(&roster);
    let mut policies = bank::enterprise::branch_policies();

    let ch = sys
        .engine
        .open_channel(client, branch.manager.interface, ChannelConfig::default())
        .unwrap();
    let t = sys
        .engine
        .call(
            ch,
            "CreateAccount",
            &Value::record([("c", Value::Int(10)), ("opening", Value::Int(10_000))]),
        )
        .unwrap();
    let a = t.results.field("a").unwrap().as_int().unwrap();

    let mut withdrawn = 0i64;
    for amount in [100, 250, 150, 100] {
        // Ask the policy engine first (enterprise viewpoint).
        let request =
            ActionRequest::new(roster.customers[0], "withdraw").with_context(Value::record([
                ("amount", Value::Int(amount)),
                ("withdrawn_today", Value::Int(withdrawn)),
            ]));
        let decision = policies.decide(&community, &request).unwrap();
        // Then perform it through the engineering runtime.
        let t = sys
            .engine
            .call(ch, "Withdraw", &dwa(10, a, amount))
            .unwrap();
        match (decision.is_allowed(), t.name.as_str()) {
            (true, "OK") => withdrawn += amount,
            (false, "NotToday") => {}
            (policy, runtime) => {
                panic!("policy said allowed={policy} but runtime said {runtime}")
            }
        }
    }
    assert_eq!(withdrawn, 500);
}

#[test]
fn migration_during_banking_is_invisible_to_the_customer() {
    let (mut sys, branch, client) = banked_system(103);
    let teller = sys
        .find("BankTeller", Some("daily_limit == 500"))
        .unwrap()
        .unwrap();
    let mut proxy = sys.proxy(client, teller, TransparencySet::all());
    let manager_ch = sys
        .engine
        .open_channel(client, branch.manager.interface, ChannelConfig::default())
        .unwrap();
    let t = sys
        .engine
        .call(
            manager_ch,
            "CreateAccount",
            &Value::record([("c", Value::Int(1)), ("opening", Value::Int(1_000))]),
        )
        .unwrap();
    let a = t.results.field("a").unwrap().as_int().unwrap();

    proxy
        .call(&mut sys.engine, &mut sys.infra, "Deposit", &dwa(1, a, 10))
        .unwrap();

    // Move the whole branch to another node mid-session.
    let new_node = sys.engine.add_node(SyntaxId::Text);
    let new_capsule = sys.engine.add_capsule(new_node).unwrap();
    rmodp::transparency::proxy::migrate_transparently(
        &mut sys.engine,
        &mut sys.infra,
        (branch.node, branch.capsule, branch.cluster),
        (new_node, new_capsule),
        &[branch.teller.interface, branch.manager.interface],
    )
    .unwrap();

    // The customer's session continues; balances survived the move.
    let t = proxy
        .call(&mut sys.engine, &mut sys.infra, "Deposit", &dwa(1, a, 5))
        .unwrap();
    assert_eq!(t.results.field("new_balance"), Some(&Value::Int(1_015)));
    assert_eq!(proxy.stats().relocations_masked, 1);
}

#[test]
fn two_branches_federated_trading_picks_by_constraint() {
    let mut sys = OdpSystem::new(104);
    let branch_a = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
    let branch_b = bank::deploy_branch(&mut sys.engine, SyntaxId::Text).unwrap();
    bank::deployment::register_types(&mut sys.types).unwrap();
    sys.trader
        .export(
            "BankTeller",
            branch_a.teller.interface,
            Value::record([
                ("branch", Value::text("toowong")),
                ("queue_len", Value::Int(9)),
            ]),
        )
        .unwrap();
    sys.trader
        .export(
            "BankTeller",
            branch_b.teller.interface,
            Value::record([
                ("branch", Value::text("st-lucia")),
                ("queue_len", Value::Int(2)),
            ]),
        )
        .unwrap();
    sys.publish(branch_a.teller.interface).unwrap();
    sys.publish(branch_b.teller.interface).unwrap();

    // Prefer the shortest queue.
    let matches = sys.trader.import(
        &ImportRequest::new("BankTeller")
            .prefer_min("queue_len")
            .unwrap(),
        Some(&sys.types),
    );
    assert_eq!(matches[0].offer.interface, branch_b.teller.interface);

    // And it actually answers.
    let client = sys.engine.add_node(SyntaxId::Binary);
    let mut proxy = sys.proxy(client, matches[0].offer.interface, TransparencySet::all());
    let t = proxy
        .call(&mut sys.engine, &mut sys.infra, "Withdraw", &dwa(1, 99, 10))
        .unwrap();
    assert_eq!(t.name, "Error"); // no account yet — but the service responded
}

#[test]
fn determinism_of_a_full_session() {
    fn run(seed: u64) -> (u64, Vec<String>) {
        let (mut sys, _branch, client) = banked_system(seed);
        let manager = sys.find("BankManager", None).unwrap().unwrap();
        let mut proxy = sys.proxy(client, manager, TransparencySet::all());
        let mut outcomes = Vec::new();
        let t = proxy
            .call(
                &mut sys.engine,
                &mut sys.infra,
                "CreateAccount",
                &Value::record([("c", Value::Int(1)), ("opening", Value::Int(100))]),
            )
            .unwrap();
        let a = t.results.field("a").unwrap().as_int().unwrap();
        for amount in [30, 80, 400, 20] {
            let t = proxy
                .call(
                    &mut sys.engine,
                    &mut sys.infra,
                    "Withdraw",
                    &dwa(1, a, amount),
                )
                .unwrap();
            outcomes.push(format!("{} {}", t.name, t.results));
        }
        (sys.engine.sim().now().as_micros(), outcomes)
    }
    assert_eq!(run(777), run(777));
}
