//! Relocation, migration and failure transparency in action: a counter
//! service keeps serving one oblivious client while its cluster is
//! migrated twice and then crash-recovered from a checkpoint on a backup
//! node (§9.2, §8.1, §8.2) — followed by a two-phase commit on the same
//! simulated network (§9.3).
//!
//! The whole run is observed on the `rmodp-observe` event bus: the trace
//! is dumped as deterministic JSONL (same seed ⇒ byte-identical file),
//! checked against the causal-order oracle, and rendered as a per-node
//! summary table plus an indented causal timeline.
//!
//! Run with: `cargo run --example migration_and_failure`

use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::netsim::sim::Addr;
use rmodp::netsim::time::SimDuration;
use rmodp::observe::{bus, export, oracle};
use rmodp::prelude::*;
use rmodp::transactions::twopc::{Coordinator, Participant, TxRequest};
use rmodp::transparency::failure::FailureGuard;
use rmodp::transparency::proxy::migrate_transparently;
use rmodp::OdpSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = OdpSystem::new(42);
    sys.engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);

    // Home, first target, two pooled backups, and the client.
    let home = sys.engine.add_node(SyntaxId::Binary);
    let target = sys.engine.add_node(SyntaxId::Text);
    let backup = sys.engine.add_node(SyntaxId::Binary);
    let spare = sys.engine.add_node(SyntaxId::Binary);
    let client = sys.engine.add_node(SyntaxId::Binary);
    let home_capsule = sys.engine.add_capsule(home)?;
    let target_capsule = sys.engine.add_capsule(target)?;
    let backup_capsule = sys.engine.add_capsule(backup)?;
    let spare_capsule = sys.engine.add_capsule(spare)?;
    let cluster = sys.engine.add_cluster(home, home_capsule)?;
    let (_, refs) = sys.engine.create_object(
        home,
        home_capsule,
        cluster,
        "counter",
        "counter",
        CounterBehaviour::initial_state(),
        1,
    )?;
    let interface = refs[0].interface;
    sys.publish(interface)?;

    let mut proxy = sys.proxy(
        client,
        interface,
        TransparencySet::none()
            .with(Transparency::Migration)
            .with(Transparency::Failure),
    );
    let add = |k: i64| Value::record([("k", Value::Int(k))]);

    let t = proxy.call(&mut sys.engine, &mut sys.infra, "Add", &add(10))?;
    println!("counter at {} after Add(10): {}", home, t.results);

    // Migrate the whole cluster to a text-native node; the client's next
    // call is transparently replayed at the new location.
    let new_cluster = migrate_transparently(
        &mut sys.engine,
        &mut sys.infra,
        (home, home_capsule, cluster),
        (target, target_capsule),
        &[interface],
    )?;
    let t = proxy.call(&mut sys.engine, &mut sys.infra, "Add", &add(5))?;
    println!("after migration to {target}: Add(5) -> {}", t.results);

    // Guard the migrated cluster with a pool of backup locations;
    // checkpoint; then crash BOTH the node and its first backup. The
    // failover target is selected automatically — recovery skips the
    // dead pool head and lands on the spare, no `set_backup` needed.
    let mut guard = FailureGuard::new(
        (target, target_capsule, new_cluster),
        (backup, backup_capsule),
        vec![interface],
    );
    guard.push_backup((spare, spare_capsule));
    guard.checkpoint_now(&mut sys.engine)?;
    let idx = sys.engine.sim_node(target)?;
    sys.engine.sim_mut().topology_mut().crash(idx);
    let idx = sys.engine.sim_node(backup)?;
    sys.engine.sim_mut().topology_mut().crash(idx);
    println!("node {target} and backup {backup} crashed; recovering from the pool…");
    guard.recover(&mut sys.engine, &mut sys.infra)?;
    assert_eq!(
        guard.home().0,
        spare,
        "recovery skips the dead backup and selects the spare"
    );

    // The oblivious client keeps calling.
    let t = proxy.call(
        &mut sys.engine,
        &mut sys.infra,
        "Get",
        &Value::record::<&str, _>([]),
    )?;
    println!(
        "after recovery: Get -> {} (relocations masked: {}, recoveries: {})",
        t.results,
        proxy.stats().relocations_masked,
        guard.recoveries()
    );
    assert_eq!(t.results.field("n"), Some(&Value::Int(15)));

    // A distributed commit on the *same* simulated network: coordinator
    // and two participants attached directly to the engine's simulator,
    // so their PREPARE/VOTE/COMMIT/ACK traffic lands on the same event
    // stream as everything above.
    let sim = sys.engine.sim_mut();
    let coord = Addr::new(sim.add_node(), 0);
    let ledger_a = Addr::new(sim.add_node(), 0);
    let ledger_b = Addr::new(sim.add_node(), 0);
    sim.attach(ledger_a, Participant::new("ledger-a"));
    sim.attach(ledger_b, Participant::new("ledger-b"));
    sim.attach(
        coord,
        Coordinator::new(vec![ledger_a, ledger_b], SimDuration::from_millis(20), 5),
    );
    let request = TxRequest {
        writes: vec![
            (0, "alice".to_owned(), Value::Int(70)),
            (1, "bob".to_owned(), Value::Int(80)),
        ],
    };
    let payload = Coordinator::submit_payload(TxId::new(1), &request);
    sim.send_from(Addr::EXTERNAL, coord, payload);
    sim.run_until_idle();

    // ── Observability epilogue ──────────────────────────────────────
    let events = bus::snapshot_events();
    let violations = oracle::verify_causality(&events);
    assert!(violations.is_empty(), "causal oracle: {violations:?}");

    let jsonl = export::to_jsonl(&events);
    std::fs::create_dir_all("target")?;
    let trace_path = "target/migration_and_failure.jsonl";
    std::fs::write(trace_path, &jsonl)?;

    let layers: std::collections::BTreeSet<_> = events.iter().map(|e| e.layer.name()).collect();
    let kinds: std::collections::BTreeSet<_> = events.iter().map(|e| e.kind.name()).collect();
    println!(
        "\ntrace: {} events from layers {:?} ({} event kinds) -> {trace_path}",
        events.len(),
        layers,
        kinds.len()
    );
    assert!(layers.len() >= 4, "expected events from >=4 layers");
    assert!(kinds.len() >= 8, "expected >=8 distinct event kinds");

    // Capped exports: the tail of a long run is noise here, and the
    // `(+N more)` markers make the truncation explicit.
    println!("\n{}", export::summary_table_capped(&events, 12));
    println!("{}", export::metrics_table(&bus::snapshot_metrics()));
    println!("{}", export::timeline_capped(&events, 80));
    Ok(())
}
