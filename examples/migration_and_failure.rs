//! Relocation, migration and failure transparency in action: a counter
//! service keeps serving one oblivious client while its cluster is
//! migrated twice and then crash-recovered from a checkpoint on a backup
//! node (§9.2, §8.1, §8.2).
//!
//! Run with: `cargo run --example migration_and_failure`

use rmodp::engineering::behaviour::CounterBehaviour;
use rmodp::prelude::*;
use rmodp::transparency::failure::FailureGuard;
use rmodp::transparency::proxy::migrate_transparently;
use rmodp::OdpSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = OdpSystem::new(42);
    sys.engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);

    // Home, first target, backup, and the client.
    let home = sys.engine.add_node(SyntaxId::Binary);
    let target = sys.engine.add_node(SyntaxId::Text);
    let backup = sys.engine.add_node(SyntaxId::Binary);
    let client = sys.engine.add_node(SyntaxId::Binary);
    let home_capsule = sys.engine.add_capsule(home)?;
    let target_capsule = sys.engine.add_capsule(target)?;
    let backup_capsule = sys.engine.add_capsule(backup)?;
    let cluster = sys.engine.add_cluster(home, home_capsule)?;
    let (_, refs) = sys.engine.create_object(
        home,
        home_capsule,
        cluster,
        "counter",
        "counter",
        CounterBehaviour::initial_state(),
        1,
    )?;
    let interface = refs[0].interface;
    sys.publish(interface)?;

    let mut proxy = sys.proxy(
        client,
        interface,
        TransparencySet::none()
            .with(Transparency::Migration)
            .with(Transparency::Failure),
    );
    let add = |k: i64| Value::record([("k", Value::Int(k))]);

    let t = proxy.call(&mut sys.engine, &mut sys.infra, "Add", &add(10))?;
    println!("counter at {} after Add(10): {}", home, t.results);

    // Migrate the whole cluster to a text-native node; the client's next
    // call is transparently replayed at the new location.
    let new_cluster = migrate_transparently(
        &mut sys.engine,
        &mut sys.infra,
        (home, home_capsule, cluster),
        (target, target_capsule),
        &[interface],
    )?;
    let t = proxy.call(&mut sys.engine, &mut sys.infra, "Add", &add(5))?;
    println!("after migration to {target}: Add(5) -> {}", t.results);

    // Guard the migrated cluster; checkpoint; then crash the node.
    let mut guard = FailureGuard::new(
        (target, target_capsule, new_cluster),
        (backup, backup_capsule),
        vec![interface],
    );
    guard.checkpoint_now(&mut sys.engine)?;
    let idx = sys.engine.sim_node(target)?;
    sys.engine.sim_mut().topology_mut().crash(idx);
    println!("node {target} crashed; recovering on {backup}…");
    guard.recover(&mut sys.engine, &mut sys.infra)?;

    // The oblivious client keeps calling.
    let t = proxy.call(
        &mut sys.engine,
        &mut sys.infra,
        "Get",
        &Value::record::<&str, _>([]),
    )?;
    println!(
        "after recovery: Get -> {} (relocations masked: {}, recoveries: {})",
        t.results,
        proxy.stats().relocations_masked,
        guard.recoveries()
    );
    assert_eq!(t.results.field("n"), Some(&Value::Int(15)));
    Ok(())
}
