//! Federated trading (§8.3.2): three linked traders serving a constrained,
//! preference-ordered import across administrative domains, with type-safe
//! subtype matching through the type repository.
//!
//! Run with: `cargo run --example trading_federation`

use rmodp::bank;
use rmodp::computational::signature::InterfaceSignature;
use rmodp::observe::{bus, export};
use rmodp::prelude::*;
use rmodp::trader::{Federation, ImportRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The type repository knows the Figure 3 lattice.
    let mut repo = TypeRepository::new();
    repo.register(InterfaceSignature::Operational(
        bank::computational::bank_teller(),
    ))?;
    repo.register(InterfaceSignature::Operational(
        bank::computational::bank_manager(),
    ))?;
    repo.register(InterfaceSignature::Operational(
        bank::computational::loans_officer(),
    ))?;

    // Three city traders in a chain, each advertising branch interfaces.
    let mut federation = Federation::new();
    for name in ["brisbane", "sydney", "melbourne"] {
        federation.add_trader(name)?;
    }
    federation.link("brisbane", "sydney")?;
    federation.link("sydney", "melbourne")?;

    let offers: [(&str, &str, u64, i64); 4] = [
        ("brisbane", "BankTeller", 101, 12),
        ("sydney", "BankManager", 201, 8),
        ("sydney", "BankTeller", 202, 30),
        ("melbourne", "LoansOfficer", 301, 5),
    ];
    for (city, service, interface, latency_ms) in offers {
        federation.trader_mut(city)?.export(
            service,
            InterfaceId::new(interface),
            Value::record([
                ("city", Value::text(city)),
                ("latency_ms", Value::Int(latency_ms)),
            ]),
        )?;
    }

    println!("federation: {:?}", federation.names().collect::<Vec<_>>());

    // A client in Brisbane wants any BankTeller-compatible service with
    // latency under 25ms, fastest first. Managers and loans officers
    // qualify by substitutability (Figure 3).
    let request = ImportRequest::new("BankTeller")
        .constraint("latency_ms <= 25")?
        .prefer_min("latency_ms")?;

    for hops in 0..=2 {
        let matches = federation.import_federated("brisbane", &request, Some(&repo), hops)?;
        println!("\nimport with {hops} hop(s): {} match(es)", matches.len());
        for m in &matches {
            println!(
                "  {} {} at {} ({})",
                m.offer.held_by, m.offer.service_type, m.offer.interface, m.offer.properties
            );
        }
    }

    // The winner across the whole federation is Melbourne's loans officer
    // at 5ms — a *subtype* of the requested BankTeller.
    let best = federation
        .import_federated("brisbane", &request.clone().at_most(1), Some(&repo), 2)?
        .remove(0);
    println!(
        "\nbest federation-wide: {} ({}) at {}ms",
        best.offer.service_type, best.offer.held_by, best.score
    );
    assert_eq!(best.offer.service_type, "LoansOfficer");

    // ── Observability epilogue: what did the trading layer do? ──────
    let events = bus::snapshot_events();
    // Capped exports keep the epilogue readable; `(+N more)` marks
    // anything truncated.
    println!("\n{}", export::summary_table_capped(&events, 12));
    println!("{}", export::metrics_table(&bus::snapshot_metrics()));
    println!("{}", export::timeline_capped(&events, 80));
    Ok(())
}
