//! Figure 2: the bank branch object with its BankTeller and BankManager
//! interfaces, bound to customer objects over real channels — including
//! the paper's "$400 in the morning, $200 refused in the afternoon"
//! scenario and the interest-rate obligation.
//!
//! Run with: `cargo run --example bank_branch`

use rmodp::bank;
use rmodp::enterprise::prelude::ObligationState;
use rmodp::prelude::*;
use rmodp::OdpSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = OdpSystem::new(1993);
    let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary)?;
    sys.publish(branch.teller.interface)?;
    sys.publish(branch.manager.interface)?;

    // Two customer objects on their own (heterogeneous) nodes — Figure 2
    // shows each customer bound to one branch interface.
    let customer1 = sys.engine.add_node(SyntaxId::Text);
    let customer2 = sys.engine.add_node(SyntaxId::Binary);
    let teller_ch =
        sys.engine
            .open_channel(customer1, branch.teller.interface, ChannelConfig::default())?;
    let manager_ch = sys.engine.open_channel(
        customer2,
        branch.manager.interface,
        ChannelConfig::default(),
    )?;

    // Accounts can be created only through the bank manager interface.
    let t = sys.engine.call(
        manager_ch,
        "CreateAccount",
        &Value::record([("c", Value::Int(1)), ("opening", Value::Int(1_000))]),
    )?;
    let acct = t
        .results
        .field("a")
        .and_then(Value::as_int)
        .expect("OK carries a");
    println!("manager opened account {acct} with $1000");

    let dwa = |c: i64, d: i64| {
        Value::record([
            ("c", Value::Int(c)),
            ("a", Value::Int(acct)),
            ("d", Value::Int(d)),
        ])
    };

    // Both interfaces can deposit and withdraw.
    let t = sys.engine.call(teller_ch, "Deposit", &dwa(1, 200))?;
    println!("teller deposit $200 -> {} {}", t.name, t.results);

    // The paper's daily-limit scenario, across the wire.
    let t = sys.engine.call(teller_ch, "Withdraw", &dwa(1, 400))?;
    println!("morning withdraw $400 -> {} {}", t.name, t.results);
    let t = sys.engine.call(teller_ch, "Withdraw", &dwa(1, 200))?;
    println!("afternoon withdraw $200 -> {} {}", t.name, t.results);
    assert_eq!(t.name, "NotToday");

    // Midnight: the nucleus runs the reset; the limit reopens.
    sys.engine
        .call(manager_ch, "ResetDay", &Value::record::<&str, _>([]))?;
    let t = sys.engine.call(teller_ch, "Withdraw", &dwa(1, 200))?;
    println!("next morning withdraw $200 -> {} {}", t.name, t.results);

    // Enterprise viewpoint alongside: the rate change obliges the manager.
    let roster = bank::enterprise::BranchRoster::default();
    let mut policies = bank::enterprise::branch_policies();
    policies.tick(sys.engine.sim().now().as_micros());
    let obligations = bank::enterprise::change_interest_rate(&mut policies, &roster, 4.75, None);
    for id in &obligations {
        policies.discharge(*id)?;
    }
    println!(
        "rate change: {} obligations created, {} fulfilled",
        obligations.len(),
        policies.obligations_in(ObligationState::Fulfilled).len()
    );

    println!("network: {}", sys.engine.sim().metrics());
    Ok(())
}
