//! Quickstart: deploy the paper's bank branch, discover it through the
//! trader, and interact through a fully transparent proxy.
//!
//! Run with: `cargo run --example quickstart`

use rmodp::prelude::*;
use rmodp::OdpSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One system: engine + relocator + trader + type repository.
    let mut sys = OdpSystem::new(2026);

    // Deploy the bank branch (engineering viewpoint) and make it
    // discoverable (type repository + trader).
    let branch = rmodp::bank::deploy_branch(&mut sys.engine, SyntaxId::Binary)?;
    rmodp::bank::deployment::register_types(&mut sys.types)?;
    rmodp::bank::deployment::export_to_trader(&mut sys.trader, &branch)?;
    sys.publish(branch.teller.interface)?;
    sys.publish(branch.manager.interface)?;
    println!(
        "deployed branch on {} (teller={}, manager={})",
        branch.node, branch.teller.interface, branch.manager.interface
    );

    // A client on a *text-native* node: access transparency will marshal.
    let client = sys.engine.add_node(SyntaxId::Text);

    // Dynamic binding: import a BankManager from the trader.
    let manager = sys
        .find("BankManager", None)?
        .expect("the branch exported a manager interface");
    println!("trader resolved BankManager -> {manager}");

    let mut proxy = sys.proxy(client, manager, TransparencySet::all());

    // Open an account and bank a little.
    let t = proxy.call(
        &mut sys.engine,
        &mut sys.infra,
        "CreateAccount",
        &Value::record([("c", Value::Int(1)), ("opening", Value::Int(500))]),
    )?;
    let account = t
        .results
        .field("a")
        .and_then(Value::as_int)
        .expect("OK carries a");
    println!("opened account {account}");

    for (op, amount) in [("Deposit", 250), ("Withdraw", 100)] {
        let t = proxy.call(
            &mut sys.engine,
            &mut sys.infra,
            op,
            &Value::record([
                ("c", Value::Int(1)),
                ("a", Value::Int(account)),
                ("d", Value::Int(amount)),
            ]),
        )?;
        println!("{op} ${amount} -> {} {}", t.name, t.results);
    }

    let metrics = sys.engine.sim().metrics();
    println!("network: {metrics}");
    Ok(())
}
