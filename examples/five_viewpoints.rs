//! Figure 1: the five RM-ODP viewpoints mapped onto the software
//! engineering process, walked end-to-end for the bank application.
//!
//! enterprise → requirements analysis
//! information + computational → functional specification
//! engineering → design
//! technology → implementation
//!
//! Run with: `cargo run --example five_viewpoints`

use rmodp::bank;
use rmodp::prelude::*;
use rmodp::OdpSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. Enterprise viewpoint (requirements analysis) ==");
    let roster = bank::enterprise::BranchRoster::default();
    let community = bank::enterprise::branch_community(&roster);
    let mut policies = bank::enterprise::branch_policies();
    println!("community: {community}");
    for p in policies.policies() {
        println!("  policy: {p}");
    }
    // The performative action: a rate change creates obligations.
    let obligations =
        bank::enterprise::change_interest_rate(&mut policies, &roster, 5.25, Some(1_000));
    println!(
        "  rate change created {} obligations on the manager",
        obligations.len()
    );

    println!("\n== 2. Information viewpoint (functional specification: data) ==");
    let mut account = bank::information::new_account(1, 1_000);
    println!("account schema: {}", account.schema().dtype());
    for inv in account.invariants() {
        println!("  invariant {}: {}", inv.name(), inv.predicate());
    }
    let withdraw = bank::information::withdraw_schema();
    account.apply(&withdraw, Value::record([("x", Value::Int(400))]))?;
    println!(
        "  morning withdrawal of $400: ok, state {}",
        account.state()
    );
    let rejected = account.apply(&withdraw, Value::record([("x", Value::Int(200))]));
    println!("  afternoon withdrawal of $200: {}", rejected.unwrap_err());

    println!("\n== 3. Computational viewpoint (functional specification: behaviour) ==");
    let teller = bank::computational::bank_teller();
    let manager = bank::computational::bank_manager();
    println!(
        "interface types: {} ({} ops), {} ({} ops)",
        teller.name(),
        teller.operations().len(),
        manager.name(),
        manager.operations().len()
    );
    let sub = rmodp::computational::subtype::is_operational_subtype(&manager, &teller);
    println!(
        "  BankManager substitutable for BankTeller: {}",
        sub.is_ok()
    );

    println!("\n== 4. Engineering viewpoint (design) ==");
    let mut sys = OdpSystem::new(11);
    let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary)?;
    sys.publish(branch.teller.interface)?;
    let (capsules, clusters, objects) = sys.engine.census(branch.node)?;
    println!(
        "node {}: {capsules} capsule(s), {clusters} cluster(s), {objects} object(s)",
        branch.node
    );
    let violations = sys.engine.validate_node(branch.node)?;
    println!(
        "  structuring rules: {}",
        if violations.is_empty() {
            "all hold".to_owned()
        } else {
            violations.join("; ")
        }
    );

    println!("\n== 5. Technology viewpoint (implementation) ==");
    let tech = bank::technology::standard();
    println!(
        "server syntax {:?}, client syntax {:?}, link latency {}",
        tech.server_syntax, tech.client_syntax, tech.link_latency
    );
    for point in &tech.conformance {
        println!("  conformance point {}: {}", point.name, point.observes);
    }

    println!("\n== One interaction crossing all five ==");
    let client = sys.engine.add_node(tech.client_syntax);
    let mut proxy = sys.proxy(client, branch.teller.interface, TransparencySet::all());
    // The enterprise policy allows it, the information schema constrains
    // it, the computational signature types it, the engineering channel
    // carries it, the technology choice marshals it.
    let manager_ch =
        sys.engine
            .open_channel(client, branch.manager.interface, Default::default())?;
    let t = sys.engine.call(
        manager_ch,
        "CreateAccount",
        &Value::record([("c", Value::Int(10)), ("opening", Value::Int(800))]),
    )?;
    let acct = t
        .results
        .field("a")
        .and_then(Value::as_int)
        .expect("created");
    let t = proxy.call(
        &mut sys.engine,
        &mut sys.infra,
        "Withdraw",
        &Value::record([
            ("c", Value::Int(10)),
            ("a", Value::Int(acct)),
            ("d", Value::Int(400)),
        ]),
    )?;
    println!("Withdraw $400 -> {} {}", t.name, t.results);
    Ok(())
}
