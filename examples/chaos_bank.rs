//! The bank branch under fire: a customer keeps depositing while the
//! branch node crashes, the network partitions, and a loss burst rolls
//! through — the failure-transparency machinery (retransmission with
//! backoff, request dedup, circuit breaking) carries the session
//! through, and the recovery oracle prints the timeline and SLO
//! verdicts.
//!
//! Run with: `cargo run --example chaos_bank`

use rmodp::bank;
use rmodp::chaos::prelude::*;
use rmodp::netsim::time::SimDuration;
use rmodp::observe::bus;
use rmodp::prelude::*;
use rmodp::OdpSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = OdpSystem::new(2_026);
    let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary)?;
    sys.publish(branch.teller.interface)?;
    sys.publish(branch.manager.interface)?;

    let customer = sys.engine.add_node(SyntaxId::Text);
    // A hardened channel: retransmission with exponential backoff under
    // a total deadline, plus a circuit breaker for fast failure while
    // the branch is provably dead.
    let teller_ch = sys.engine.open_channel(
        customer,
        branch.teller.interface,
        ChannelConfig {
            retry: Some(RetryPolicy::reliable().with_deadline(SimDuration::from_millis(100))),
            breaker: Some(BreakerConfig::default()),
            ..ChannelConfig::default()
        },
    )?;
    let manager_ch =
        sys.engine
            .open_channel(customer, branch.manager.interface, ChannelConfig::default())?;

    let t = sys.engine.call(
        manager_ch,
        "CreateAccount",
        &Value::record([("c", Value::Int(1)), ("opening", Value::Int(100))]),
    )?;
    let acct = t
        .results
        .field("a")
        .and_then(Value::as_int)
        .expect("OK carries a");
    println!("opened account {acct} with $100\n");

    // The day's fault schedule, on virtual time.
    let branch_idx = sys.engine.sim_node(branch.node)?;
    let customer_idx = sys.engine.sim_node(customer)?;
    let plan = FaultPlan::new()
        .with(
            SimDuration::from_millis(60),
            FaultKind::LossBurst {
                a: customer_idx,
                b: branch_idx,
                loss: 0.5,
                window: SimDuration::from_millis(80),
            },
        )
        .with(
            SimDuration::from_millis(200),
            FaultKind::CrashRestart {
                node: branch_idx,
                down_for: SimDuration::from_millis(70),
            },
        )
        .with(
            SimDuration::from_millis(420),
            FaultKind::Partition {
                a: customer_idx,
                b: branch_idx,
                heal_after: SimDuration::from_millis(50),
            },
        );
    println!("fault plan:\n{}", plan.describe());

    // Thirty $10 deposits, one every 20ms, riding through the plan.
    let mut injector = FaultInjector::new(plan, sys.engine.sim().now());
    let t0 = sys.engine.sim().now();
    let deposit = Value::record([
        ("c", Value::Int(1)),
        ("a", Value::Int(acct)),
        ("d", Value::Int(10)),
    ]);
    let total = 30u64;
    let mut ok = 0u64;
    let mut failed = 0u64;
    for i in 0..total {
        // Pace to the deposit's due time — or to "now" if a slow retry
        // battle already pushed the clock past it, so fault clears that
        // fell due in the meantime (the restart!) are still applied.
        let due = t0 + SimDuration::from_millis(20 * i);
        let target = due.max(sys.engine.sim().now());
        injector.apply_until(&mut sys.engine, target);
        let at_us = sys.engine.sim().now().as_micros();
        match sys.engine.call(teller_ch, "Deposit", &deposit) {
            Ok(t) if t.is_ok() => ok += 1,
            Ok(t) => {
                failed += 1;
                println!("t={at_us}us deposit refused: {}", t.name);
            }
            Err(e) => {
                failed += 1;
                println!("t={at_us}us deposit failed: {e}");
            }
        }
    }
    injector.finish(&mut sys.engine);
    println!("\n{ok} deposits acknowledged, {failed} failed at the counter");

    // Give any open breaker time to probe again, then prove exactly-once
    // execution via the balance: dedup suppressed retransmitted
    // duplicates, and nothing acknowledged was lost.
    let resume = sys.engine.sim().now() + BreakerConfig::default().cooldown;
    sys.engine.sim_mut().run_until(resume);
    let t = sys.engine.call(teller_ch, "Deposit", &deposit)?;
    let balance = t
        .results
        .field("new_balance")
        .and_then(Value::as_int)
        .expect("deposit reports the new balance");
    println!("final balance: ${balance} after {ok}/{total} acknowledged deposits");
    assert!(
        balance >= 100 + 10 * (ok as i64 + 1),
        "an acknowledged deposit was lost"
    );
    assert!(
        balance <= 100 + 10 * (total as i64 + 1),
        "a deposit executed twice"
    );

    // The recovery timeline, judged from the observe stream.
    let oracle = RecoveryOracle::new(customer_idx.0 as u64);
    let report = RecoveryReport::gather(&oracle, injector.applied());
    println!("\nrecovery timeline:");
    print!("{}", report.render());
    for f in &report.faults {
        let verdict = if f.recovered { "RECOVERED" } else { "STUCK" };
        println!(
            "  {}: mttr {:.1}ms, availability {:.0}% during window -> {verdict}",
            f.label,
            f.mttr_us as f64 / 1_000.0,
            f.availability * 100.0,
        );
    }
    assert!(report.clean(), "chaos invariants violated");
    assert_eq!(report.duplicate_dispatches, 0);
    println!(
        "\nSLO verdict: all faults recovered, no duplicate side-effects \
         ({} duplicate arrivals absorbed by the dedup cache, {} breaker transitions)",
        report.dedup_hits, report.breaker_transitions
    );
    println!("network: {}", sys.engine.sim().metrics());
    let _ = bus::snapshot_events();
    Ok(())
}
