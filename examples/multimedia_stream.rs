//! Stream interfaces (§5.1): "stream interfaces have been included in
//! RM-ODP to cater for multi-media and telecommunications applications."
//!
//! A producer pushes an audio-like flow to a consumer over a lossy,
//! jittery link; the environment contract (§5.3) demands a minimum
//! delivered throughput, and the run reports whether the environment
//! honoured it.
//!
//! Run with: `cargo run --example multimedia_stream`

use rmodp::computational::signature::{FlowDirection, Invocation, StreamSignature, Termination};
use rmodp::core::contract::{QosOffer, QosRequirement, SecurityLevel};
use rmodp::core::dtype::DataType;
use rmodp::engineering::behaviour::ServerBehaviour;
use rmodp::engineering::channel::ChannelConfig;
use rmodp::netsim::time::SimDuration;
use rmodp::netsim::topology::LinkConfig;
use rmodp::prelude::*;
use rmodp::OdpSystem;
use std::time::Duration;

/// Counts frames and bytes of the flows it consumes.
#[derive(Debug, Default)]
struct MediaSink;

impl ServerBehaviour for MediaSink {
    fn invoke(&mut self, state: &mut Value, _invocation: &Invocation) -> Termination {
        Termination::ok(state.clone())
    }

    fn on_flow(&mut self, state: &mut Value, _flow: &str, item: &Value) {
        let frames = state.field("frames").and_then(Value::as_int).unwrap_or(0);
        let bytes = state.field("bytes").and_then(Value::as_int).unwrap_or(0);
        let size = match item {
            Value::Blob(b) => b.len() as i64,
            other => other.size() as i64,
        };
        state.set_field("frames", Value::Int(frames + 1));
        state.set_field("bytes", Value::Int(bytes + size));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The computational specification: an AV stream interface.
    let av = StreamSignature::new("AudioVideo")
        .flow("audio", DataType::Blob, FlowDirection::Produced)
        .flow("video", DataType::Blob, FlowDirection::Produced);
    println!(
        "stream interface {} with {} flows",
        av.name(),
        av.flows().len()
    );

    // The environment contract: at least 800 delivered frames per virtual
    // second, latency under 20ms.
    let requirement = QosRequirement::none()
        .with_min_throughput(800.0)
        .with_max_latency(Duration::from_millis(20));

    let mut sys = OdpSystem::new(8);
    sys.engine
        .behaviours_mut()
        .register("sink", MediaSink::default);

    let producer_node = sys.engine.add_node(SyntaxId::Binary);
    let consumer_node = sys.engine.add_node(SyntaxId::Binary);
    let capsule = sys.engine.add_capsule(consumer_node)?;
    let cluster = sys.engine.add_cluster(consumer_node, capsule)?;
    let (sink, refs) = sys.engine.create_object(
        consumer_node,
        capsule,
        cluster,
        "sink",
        "sink",
        Value::record([("frames", Value::Int(0)), ("bytes", Value::Int(0))]),
        1,
    )?;

    // A lossy, jittery link between producer and consumer.
    let loss = 0.05;
    let p = sys.engine.sim_node(producer_node)?;
    let c = sys.engine.sim_node(consumer_node)?;
    sys.engine.sim_mut().topology_mut().set_link(
        p,
        c,
        LinkConfig::with_latency(SimDuration::from_millis(5))
            .jitter(SimDuration::from_millis(10))
            .loss(loss),
    );

    let ch = sys
        .engine
        .open_channel(producer_node, refs[0].interface, ChannelConfig::default())?;

    // Produce one virtual second of 1000 fps audio frames, paced at one
    // frame per virtual millisecond.
    let frames = 1_000u64;
    let start = sys.engine.sim().now();
    for _ in 0..frames {
        sys.engine
            .send_flow(ch, "audio", &Value::Blob(vec![0u8; 160]))?;
        sys.engine.sim_mut().run_for(SimDuration::from_millis(1));
    }
    sys.engine.run_until_idle();
    let elapsed = sys.engine.sim().now().since(start);

    let state = sys
        .engine
        .object_state(consumer_node, sink)?
        .expect("sink exists");
    let delivered = state.field("frames").and_then(Value::as_int).unwrap_or(0);
    let bytes = state.field("bytes").and_then(Value::as_int).unwrap_or(0);
    let throughput = delivered as f64 / elapsed.as_secs_f64();
    println!(
        "produced {frames} frames over {elapsed}; delivered {delivered} ({bytes} bytes) \
         = {throughput:.0} frames/s at {loss:.0$}% loss",
        0,
        loss = loss * 100.0
    );

    // Check the delivered QoS against the environment contract.
    let offered = QosOffer {
        latency: Duration::from_millis(15), // worst case: 5ms + 10ms jitter
        throughput,
        availability: 1.0 - loss,
        reliable_delivery: false,
        security: SecurityLevel::None,
    };
    match offered.satisfies(&requirement) {
        Ok(()) => println!("environment contract HELD: {throughput:.0} >= 800 frames/s"),
        Err(v) => println!("environment contract VIOLATED: {v}"),
    }
    Ok(())
}
