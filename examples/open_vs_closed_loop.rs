//! Open-loop vs. closed-loop load on the paper's bank branch, judged
//! against the same environment contract (§5.3).
//!
//! The same deposit/withdraw mix is applied twice to an identical
//! deployment with a bounded admission queue on the branch node:
//!
//! * **open loop** — a Poisson arrival stream that keeps offering
//!   traffic no matter how slowly the branch answers, so the admission
//!   queue fills and the Reject policy sheds load;
//! * **closed loop** — a fixed population of customers who each wait for
//!   their reply (plus a think time), so offered load self-limits and
//!   nothing is shed.
//!
//! Both runs print the SLO verdict table; the contrast *is* the lesson:
//! identical system, identical contract, different load model, opposite
//! verdicts on availability.
//!
//! Run with: `cargo run --example open_vs_closed_loop`

use std::time::Duration;

use rmodp::bank;
use rmodp::observe::{bus, oracle};
use rmodp::prelude::*;
use rmodp::OdpSystem;
use rmodp_netsim::time::SimDuration;

/// Deploys a fresh branch with one funded account and a bounded
/// admission queue, and opens a teller channel for the population.
fn build(seed: u64) -> Result<(OdpSystem, ChannelId, i64), Box<dyn std::error::Error>> {
    let mut sys = OdpSystem::new(seed);
    let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary)?;
    // Serve one request per 800us from a queue of at most 8; refuse the
    // rest. (Unbounded is the default — this example opts in.)
    sys.engine.set_admission(
        branch.node,
        AdmissionConfig::reject(8, SimDuration::from_micros(800)),
    )?;

    let manager = sys.engine.add_node(SyntaxId::Binary);
    let manager_ch =
        sys.engine
            .open_channel(manager, branch.manager.interface, ChannelConfig::default())?;
    let t = sys.engine.call(
        manager_ch,
        "CreateAccount",
        &Value::record([("c", Value::Int(1)), ("opening", Value::Int(1_000_000))]),
    )?;
    let acct = t
        .results
        .field("a")
        .and_then(Value::as_int)
        .expect("OK carries a");

    let customers = sys.engine.add_node(SyntaxId::Text);
    let teller_ch =
        sys.engine
            .open_channel(customers, branch.teller.interface, ChannelConfig::default())?;
    Ok((sys, teller_ch, acct))
}

/// The shared mix: deposit-heavy traffic with small withdrawals, all
/// against the single funded account.
fn mix(acct: i64) -> OperationMix {
    let dwa = |d: i64| {
        Value::record([
            ("c", Value::Int(1)),
            ("a", Value::Int(acct)),
            ("d", Value::Int(d)),
        ])
    };
    OperationMix::new()
        .with("Deposit", dwa(5), 3)
        .with("Withdraw", dwa(1), 1)
}

/// The shared contract both load models are judged against.
fn contract() -> rmodp::core::contract::QosRequirement {
    rmodp::core::contract::QosRequirement::default()
        .with_max_latency(Duration::from_millis(25))
        .with_min_availability(0.99)
        .reliable()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 1_993;

    // Open loop: 2000 requests/s offered against ~1250/s of service
    // capacity — the arrival stream does not care that the branch is
    // saturated. Closed loop: 8 customers, each at most one request in
    // flight — the whole population fits the admission queue, so offered
    // load self-limits instead of being shed.
    let loads = [
        (
            "bank_open_loop",
            LoadModel::Open {
                arrivals: ArrivalProcess::Poisson {
                    rate_per_sec: 2_000.0,
                },
            },
        ),
        (
            "bank_closed_loop",
            LoadModel::Closed {
                population: 8,
                think_time: SimDuration::from_millis(5),
            },
        ),
    ];

    for (name, load) in loads {
        let (mut sys, teller_ch, acct) = build(SEED)?;
        let scenario = Scenario::new(name, SEED, load)
            .lasting(SimDuration::from_secs(1))
            .with_mix(mix(acct))
            .with_contract(contract());
        let (stats, report) = run_scenario(&mut sys.engine, teller_ch, &scenario);
        let violations = oracle::verify_causality(&bus::snapshot_events());
        println!("{}", report.render());
        println!(
            "  causal oracle: {} violations; server shed {} of {} offered\n",
            violations.len(),
            stats.admission_shed,
            stats.offered
        );
        assert!(violations.is_empty(), "causality must hold under overload");
    }
    Ok(())
}
