//! # rmodp — a Rust realisation of the Reference Model of Open Distributed Processing
//!
//! This crate re-exports the whole workspace and adds [`OdpSystem`], a
//! facade wiring the pieces together the way the tutorial describes them
//! cooperating:
//!
//! - the **engineering engine** (`rmodp-engineering`) running nodes,
//!   capsules, clusters and channels over a deterministic network
//!   simulator (`rmodp-netsim`);
//! - the **ODP functions**: trader (`rmodp-trader`), type repository
//!   (`rmodp-typerepo`), relocator / storage / events / groups / security
//!   (`rmodp-functions`), transactions (`rmodp-transactions`);
//! - the **viewpoint languages**: enterprise (`rmodp-enterprise`),
//!   information (`rmodp-information`), computational
//!   (`rmodp-computational`);
//! - the **distribution transparencies** (`rmodp-transparency`);
//! - the paper's running example (`rmodp-bank`).
//!
//! # Quickstart
//!
//! ```
//! use rmodp::OdpSystem;
//! use rmodp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = OdpSystem::new(7);
//! // Deploy the paper's bank branch and look it up through the trader.
//! let branch = rmodp::bank::deploy_branch(&mut sys.engine, SyntaxId::Binary)?;
//! rmodp::bank::deployment::register_types(&mut sys.types)?;
//! rmodp::bank::deployment::export_to_trader(&mut sys.trader, &branch)?;
//! sys.publish(branch.teller.interface)?;
//! sys.publish(branch.manager.interface)?;
//!
//! let client = sys.engine.add_node(SyntaxId::Text);
//! let teller = sys.find("BankTeller", None)?.expect("the branch is exported");
//! let mut proxy = sys.proxy(client, teller, TransparencySet::all());
//! let t = proxy.call(
//!     &mut sys.engine,
//!     &mut sys.infra,
//!     "CreateAccount",
//!     &Value::record([("c", Value::Int(1)), ("opening", Value::Int(100))]),
//! )?;
//! assert!(t.is_ok());
//! # Ok(())
//! # }
//! ```

pub use rmodp_bank as bank;
pub use rmodp_chaos as chaos;
pub use rmodp_computational as computational;
pub use rmodp_core as core;
pub use rmodp_engineering as engineering;
pub use rmodp_enterprise as enterprise;
pub use rmodp_functions as functions;
pub use rmodp_information as information;
pub use rmodp_netsim as netsim;
pub use rmodp_observe as observe;
pub use rmodp_profile as profile;
pub use rmodp_store as store;
pub use rmodp_trader as trader;
pub use rmodp_transactions as transactions;
pub use rmodp_transparency as transparency;
pub use rmodp_typerepo as typerepo;
pub use rmodp_workload as workload;

/// The commonly needed names from across the workspace.
pub mod prelude {
    pub use rmodp_chaos::prelude::*;
    pub use rmodp_computational::signature::{Invocation, Termination};
    pub use rmodp_core::codec::SyntaxId;
    pub use rmodp_core::id::*;
    pub use rmodp_core::value::Value;
    pub use rmodp_engineering::prelude::*;
    pub use rmodp_trader::{ImportRequest, Trader};
    pub use rmodp_transparency::{OdpInfra, Transparency, TransparencySet, TransparentProxy};
    pub use rmodp_typerepo::TypeRepository;
    pub use rmodp_workload::prelude::*;
}

use rmodp_core::id::InterfaceId;
use rmodp_core::id::NodeId;
use rmodp_engineering::engine::{EngError, Engine};
use rmodp_trader::{ImportRequest, Trader, TraderError};
use rmodp_transparency::{OdpInfra, TransparencySet, TransparentProxy};
use rmodp_typerepo::TypeRepository;

/// One assembled ODP system: engine + infrastructure functions + type
/// repository + trader, sharing a deterministic seed.
#[derive(Debug)]
pub struct OdpSystem {
    /// The engineering runtime.
    pub engine: Engine,
    /// Relocator, storage, events, groups, persistence.
    pub infra: OdpInfra,
    /// The type repository (§8.3.1).
    pub types: TypeRepository,
    /// The trader (§8.3.2).
    pub trader: Trader,
}

impl OdpSystem {
    /// Creates a system with the given simulation seed.
    pub fn new(seed: u64) -> Self {
        Self {
            engine: Engine::new(seed),
            infra: OdpInfra::new(),
            types: TypeRepository::new(),
            trader: Trader::new("system"),
        }
    }

    /// Publishes an interface's location from the engine into the
    /// relocator — done whenever a binding is set up.
    ///
    /// # Errors
    ///
    /// Unknown interface.
    pub fn publish(&mut self, interface: InterfaceId) -> Result<(), EngError> {
        self.infra.publish(&self.engine, interface)
    }

    /// Imports from the trader: finds the first offer of a service type
    /// (optionally constrained), with subtype substitution through the
    /// type repository.
    ///
    /// # Errors
    ///
    /// Malformed constraint text.
    pub fn find(
        &mut self,
        service_type: &str,
        constraint: Option<&str>,
    ) -> Result<Option<InterfaceId>, TraderError> {
        let mut request = ImportRequest::new(service_type).at_most(1);
        if let Some(c) = constraint {
            request = request.constraint(c)?;
        }
        let matches = self.trader.import(&request, Some(&self.types));
        Ok(matches.first().map(|m| m.offer.interface))
    }

    /// Builds a transparent proxy from a client node to an interface.
    pub fn proxy(
        &self,
        client: NodeId,
        target: InterfaceId,
        selection: TransparencySet,
    ) -> TransparentProxy {
        TransparentProxy::new(client, target, selection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn system_wires_trader_types_and_proxy_together() {
        let mut sys = OdpSystem::new(3);
        let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
        bank::deployment::register_types(&mut sys.types).unwrap();
        bank::deployment::export_to_trader(&mut sys.trader, &branch).unwrap();
        sys.publish(branch.teller.interface).unwrap();
        sys.publish(branch.manager.interface).unwrap();

        // Subtype substitution: asking for a teller may yield the manager.
        let teller = sys.find("BankTeller", None).unwrap();
        assert!(teller.is_some());
        // Constrained: only the teller offer carries daily_limit.
        let constrained = sys.find("BankTeller", Some("daily_limit == 500")).unwrap();
        assert_eq!(constrained, Some(branch.teller.interface));
        // Nothing matches a bogus constraint.
        assert_eq!(
            sys.find("BankTeller", Some("daily_limit == 1")).unwrap(),
            None
        );
    }

    #[test]
    fn proxy_round_trip_through_system() {
        let mut sys = OdpSystem::new(4);
        let branch = bank::deploy_branch(&mut sys.engine, SyntaxId::Binary).unwrap();
        sys.publish(branch.manager.interface).unwrap();
        let client = sys.engine.add_node(SyntaxId::Text);
        let mut proxy = sys.proxy(
            client,
            branch.manager.interface,
            TransparencySet::none().with(Transparency::Location),
        );
        let t = proxy
            .call(
                &mut sys.engine,
                &mut sys.infra,
                "CreateAccount",
                &Value::record([("c", Value::Int(9)), ("opening", Value::Int(50))]),
            )
            .unwrap();
        assert!(t.is_ok());
    }
}
