//! The failover benchmark suite behind `failover_bench`.
//!
//! [`run_suite`] drives two quorum-replicated groups — a *bank* group
//! (deposit-sized updates) and a *trader* group (offer-sized updates) —
//! through a rolling leader-kill schedule and a partition-during-commit
//! schedule, and returns the full `BENCH_failover.json` document
//! (schema `rmodp-bench-failover/1`, documented in `EXPERIMENTS.md`
//! §E14): availability over the whole schedule, the failover-MTTR
//! distribution, fenced-write and quorum-loss counters, and the
//! [`GroupOracle`] consistency verdict — whose `lost_committed` and
//! `split_brain` counts are zero-banded in the perf gate.
//!
//! Everything runs on virtual time with seeded RNGs: probe timeouts,
//! election fan-outs, and partition windows all consume deterministic
//! virtual time, so the same seed produces a byte-identical document —
//! CI runs the binary twice and compares.

use rmodp_chaos::prelude::*;
use rmodp_core::codec::SyntaxId;
use rmodp_core::id::InterfaceId;
use rmodp_engineering::engine::Engine;
use rmodp_functions::{DetectorConfig, FailureDetector};
use rmodp_netsim::sim::NodeIdx;
use rmodp_observe::bus;
use rmodp_transparency::replication::{quorum_counters, ReplicatedService, ReplicationError};
use rmodp_transparency::OdpInfra;

/// Replicas per group: tolerates two failures, majority of three.
const REPLICAS: usize = 5;
/// Leader-kill rounds per group.
const ROUNDS: usize = 3;
/// Committed updates attempted between failure injections.
const UPDATES_PER_ROUND: usize = 4;

/// Formats a float with three decimals (deterministic, locale-free).
fn f3(x: f64) -> String {
    format!("{x:.3}")
}

fn sim_idx(engine: &Engine, replica: InterfaceId) -> NodeIdx {
    let node = engine
        .lookup(replica)
        .expect("replica exists")
        .location
        .node;
    engine.sim_node(node).expect("node exists")
}

/// One group's full schedule: warm-up commits, `ROUNDS` leader kills
/// with detector-driven failover, a client-side majority partition
/// during the commit schedule, and a stale-front takeover that must be
/// fenced. Returns the per-group JSON fragment.
///
/// The partition lands between commits, not inside one — the simulator
/// is sequential — but it leaves a *minority* of replicas holding
/// staged, uncommitted sequence numbers, which is exactly the state an
/// interrupted commit leaves behind; the retry after healing must fold
/// those idempotently.
fn group_run(label: &str, seed: u64, update_k: i64) -> String {
    let mut engine = Engine::new(seed);
    let client = engine.add_node(SyntaxId::Binary);
    let mut infra = OdpInfra::new();
    let (mut svc, replicas) =
        quorum_counters(&mut engine, &mut infra, client, REPLICAS).expect("group deploys");
    let monitor = engine.add_node(SyntaxId::Binary);
    let mut detector = FailureDetector::new(monitor, DetectorConfig::default());
    for r in &replicas {
        detector.watch(*r);
    }

    let mut attempts = 0u64;
    let mut commits = 0u64;
    let update = |svc: &mut ReplicatedService,
                  engine: &mut Engine,
                  infra: &mut OdpInfra,
                  attempts: &mut u64,
                  commits: &mut u64| {
        *attempts += 1;
        if svc.quorum_update(engine, infra, update_k).is_ok() {
            *commits += 1;
        }
    };

    for _ in 0..UPDATES_PER_ROUND {
        update(
            &mut svc,
            &mut engine,
            &mut infra,
            &mut attempts,
            &mut commits,
        );
    }

    // Part 1: rolling leader kill. Crash the current leader, let the
    // failure detector reach suspicion on virtual time, elect, and
    // measure MTTR as crash -> first linearizable read served by the
    // new leader.
    let mut mttr_us: Vec<u64> = Vec::new();
    for round in 0..ROUNDS {
        let view = infra.groups.view(svc.group()).expect("group exists");
        let leader = view.leader.expect("elected group has a leader");
        let leader_idx = sim_idx(&engine, leader);
        let t_kill = engine.now();
        engine.sim_mut().topology_mut().crash(leader_idx);
        assert!(
            svc.quorum_read(&mut engine, &mut infra).is_err(),
            "round {round}: reads must fail while the leader is down"
        );
        let mut rounds = 0;
        while !detector.is_suspected(leader) {
            detector.run_round(&mut engine);
            rounds += 1;
            assert!(
                rounds <= 8,
                "round {round}: detector never suspected the dead leader"
            );
        }
        svc.fail_over(&mut engine, &mut infra)
            .expect("a majority survives a single leader kill");
        svc.quorum_read(&mut engine, &mut infra)
            .expect("new leader serves reads");
        mttr_us.push(engine.now().as_micros() - t_kill.as_micros());
        for _ in 0..UPDATES_PER_ROUND {
            update(
                &mut svc,
                &mut engine,
                &mut infra,
                &mut attempts,
                &mut commits,
            );
        }
        // The killed leader heals; the next commits Gap->Sync repair it.
        engine.sim_mut().topology_mut().restart(leader_idx);
        for _ in 0..2 {
            update(
                &mut svc,
                &mut engine,
                &mut infra,
                &mut attempts,
                &mut commits,
            );
        }
    }

    // Part 2: partition during the commit schedule. Cut the client from
    // a majority of replicas: the in-flight update must NOT commit
    // (QuorumLost, sequence number not advanced), and the retry after
    // healing must commit exactly once.
    let client_idx = engine.sim_node(client).expect("client exists");
    let cut: Vec<NodeIdx> = replicas
        .iter()
        .map(|r| sim_idx(&engine, *r))
        .take(3)
        .collect();
    for idx in &cut {
        engine.sim_mut().topology_mut().partition(client_idx, *idx);
    }
    attempts += 1;
    match svc.quorum_update(&mut engine, &mut infra, update_k) {
        Err(ReplicationError::QuorumLost { acks, needed }) => {
            assert!(acks < needed, "quorum arithmetic holds");
        }
        other => panic!("partitioned majority must lose the quorum, got {other:?}"),
    }
    for idx in &cut {
        engine.sim_mut().topology_mut().heal(client_idx, *idx);
    }
    for _ in 0..2 {
        update(
            &mut svc,
            &mut engine,
            &mut infra,
            &mut attempts,
            &mut commits,
        );
    }

    // Part 3: stale-front fencing. A second front attaches and elects a
    // newer epoch (the takeover a partitioned-away primary cannot see);
    // the old front's next write must be fenced by the replicas, never
    // committed.
    let mut front2 = ReplicatedService::attach(&mut engine, &mut infra, client, svc.group())
        .expect("takeover front elects");
    attempts += 1;
    match svc.quorum_update(&mut engine, &mut infra, update_k) {
        Err(ReplicationError::Fenced { epoch, newer }) => {
            assert!(newer > epoch, "fencing names the newer epoch");
        }
        other => panic!("stale front must be fenced, got {other:?}"),
    }
    for _ in 0..UPDATES_PER_ROUND {
        update(
            &mut front2,
            &mut engine,
            &mut infra,
            &mut attempts,
            &mut commits,
        );
    }
    front2
        .quorum_read(&mut engine, &mut infra)
        .expect("group serves after the takeover");

    // The oracle audits the whole schedule from the event stream.
    let oracle = ConsistencyReport::gather();
    assert!(
        oracle.clean(),
        "{label}: consistency oracle unclean:\n{}",
        oracle.render()
    );
    assert!(
        oracle.fenced_writes() > 0,
        "{label}: the schedule must exercise fencing"
    );
    assert_eq!(oracle.split_brain(), 0);
    assert_eq!(oracle.lost_committed(), 0);

    let fenced_writes = bus::counter("replication.fenced_writes");
    let quorum_losses = bus::counter("replication.quorum_losses");
    let failovers = bus::counter("replication.failovers");
    let suspects = bus::counter("detector.suspects");
    let sync_repairs = bus::counter("replication.sync_repairs");
    let availability = commits as f64 / attempts as f64;
    let min = mttr_us.iter().min().copied().unwrap_or(0);
    let max = mttr_us.iter().max().copied().unwrap_or(0);
    let mean = if mttr_us.is_empty() {
        0
    } else {
        mttr_us.iter().sum::<u64>() / mttr_us.len() as u64
    };
    println!(
        "{label}: attempts={attempts} commits={commits} availability={} mttr_us={mttr_us:?} \
         fenced={fenced_writes} quorum_losses={quorum_losses} failovers={failovers}",
        f3(availability)
    );
    println!("{}", oracle.render());

    let samples: Vec<String> = mttr_us.iter().map(u64::to_string).collect();
    format!(
        "{{\"label\":\"{label}\",\"replicas\":{REPLICAS},\"rounds\":{ROUNDS},\
         \"attempts\":{attempts},\"commits\":{commits},\"availability\":{},\
         \"mttr_us\":{{\"samples\":[{}],\"min\":{min},\"mean\":{mean},\"max\":{max}}},\
         \"fenced_writes\":{fenced_writes},\"quorum_losses\":{quorum_losses},\
         \"failovers\":{failovers},\"suspects\":{suspects},\"sync_repairs\":{sync_repairs},\
         \"oracle\":{}}}",
        f3(availability),
        samples.join(","),
        oracle.to_json()
    )
}

/// Runs the bank and trader group schedules against `seed` and returns
/// the `BENCH_failover.json` document. Per-group summaries go to
/// stdout.
///
/// # Panics
///
/// If any quorum, fencing, or oracle invariant fails.
pub fn run_suite(seed: u64) -> String {
    let bank = group_run("bank", seed, 25);
    let trader = group_run("trader", seed.wrapping_add(1), 1);
    format!(
        "{{\"schema\":\"rmodp-bench-failover/1\",\"seed\":{seed},\"groups\":[{bank},{trader}]}}\n"
    )
}
