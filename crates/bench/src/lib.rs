//! # rmodp-bench — shared workload builders for the benchmark harness
//!
//! The paper (a reference-model tutorial) contains no measurement tables;
//! its five figures are architectural. The benchmark harness therefore
//! regenerates each *figure* as a measured workload and quantifies the
//! cost of every mechanism the model prescribes (see `EXPERIMENTS.md` at
//! the workspace root for the index). This crate holds the workload
//! builders the `benches/` targets share, so they are also unit-testable.

pub mod chaos_suite;
pub mod failover_suite;
pub mod mechanisms;
pub mod oo7_suite;
pub mod perf;
pub mod population_suite;
pub mod trader_suite;
pub mod workload_suite;

use rmodp_computational::signature::{OperationalSignature, TerminationSignature};
use rmodp_core::codec::SyntaxId;
use rmodp_core::dtype::DataType;
use rmodp_core::id::{CapsuleId, ClusterId, InterfaceId, NodeId};
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::engine::Engine;
use rmodp_trader::Trader;

/// Shared argument parsing for the benchmark binaries: every bin speaks
/// the same `--seed N <output-path>` interface (CI relies on this), and
/// a bin may declare extra numeric flags (the trader bench's `--offers`
/// / `--imports`).
pub mod cli {
    /// Parsed benchmark arguments.
    #[derive(Debug)]
    pub struct BenchArgs {
        /// The base seed (`--seed N`).
        pub seed: u64,
        /// The shard count (`--shards N`; `None` when the flag wasn't
        /// given). Only the population benchmark runs multi-shard; the
        /// single-queue benchmarks accept the flag so the interface stays
        /// uniform, but reject values other than 1 via
        /// [`BenchArgs::single_shard`] (their pinned fixture bytes are
        /// single-shard by definition).
        pub shards: Option<u64>,
        /// The output path (the one positional argument).
        pub out: String,
        /// Values for the declared extra flags, in declaration order;
        /// `None` where the flag wasn't given.
        pub extra: Vec<Option<u64>>,
    }

    impl BenchArgs {
        /// Asserts this benchmark was not asked to shard.
        ///
        /// # Panics
        ///
        /// When `--shards` was given with a value other than 1.
        pub fn single_shard(&self, bench: &str) {
            let shards = self.shards.unwrap_or(1);
            assert!(
                shards == 1,
                "{bench} runs on a single shard (its pinned fixtures are \
                 single-queue runs); multi-shard execution is the population \
                 benchmark's job: population_bench --shards {shards}"
            );
        }
    }

    /// Parses `std::env::args()` against the unified interface.
    ///
    /// # Panics
    ///
    /// On an unknown flag, a flag without its numeric value, or more
    /// than one positional argument.
    pub fn parse(default_seed: u64, default_out: &str, extra_flags: &[&str]) -> BenchArgs {
        let mut parsed = BenchArgs {
            seed: default_seed,
            shards: None,
            out: default_out.to_owned(),
            extra: vec![None; extra_flags.len()],
        };
        let mut saw_out = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut numeric = |name: &str| {
                args.next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
            };
            if arg == "--seed" {
                parsed.seed = numeric("--seed");
            } else if arg == "--shards" {
                let n = numeric("--shards");
                assert!(n >= 1, "--shards needs a positive value");
                parsed.shards = Some(n);
            } else if let Some(i) = extra_flags.iter().position(|f| *f == arg) {
                parsed.extra[i] = Some(numeric(&arg));
            } else if arg.starts_with("--") {
                panic!("unknown flag {arg}; expected --seed, --shards{}", {
                    let mut s = String::new();
                    for f in extra_flags {
                        s.push_str(", ");
                        s.push_str(f);
                    }
                    s
                });
            } else {
                assert!(!saw_out, "more than one output path given: {arg}");
                parsed.out = arg;
                saw_out = true;
            }
        }
        parsed
    }

    /// Writes a benchmark document, creating parent directories.
    ///
    /// # Panics
    ///
    /// On I/O failure — benchmarks have no one to report errors to.
    pub fn write_output(out: &str, json: &str) {
        if let Some(dir) = std::path::Path::new(out).parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(out, json).expect("write benchmark output");
        println!("wrote {out}");
    }
}

/// A deployed counter reachable from a client node — the standard unit of
/// invocation benchmarks.
#[derive(Debug)]
pub struct CounterRig {
    /// The engine.
    pub engine: Engine,
    /// The server node.
    pub server: NodeId,
    /// The client node.
    pub client: NodeId,
    /// The counter's home.
    pub home: (NodeId, CapsuleId, ClusterId),
    /// The counter's interface.
    pub interface: InterfaceId,
}

/// Builds a two-node counter rig. `client_syntax` differing from binary
/// forces real marshalling on every call.
pub fn counter_rig(seed: u64, client_syntax: SyntaxId) -> CounterRig {
    let mut engine = Engine::new(seed);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let server = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(client_syntax);
    let capsule = engine.add_capsule(server).expect("fresh node");
    let cluster = engine.add_cluster(server, capsule).expect("fresh capsule");
    let (_, refs) = engine
        .create_object(
            server,
            capsule,
            cluster,
            "counter",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .expect("fresh cluster");
    CounterRig {
        engine,
        server,
        client,
        home: (server, capsule, cluster),
        interface: refs[0].interface,
    }
}

/// Opens a channel on a rig and returns it.
pub fn open(rig: &mut CounterRig, config: ChannelConfig) -> rmodp_core::id::ChannelId {
    rig.engine
        .open_channel(rig.client, rig.interface, config)
        .expect("interface is live")
}

/// The standard `Add {k: 1}` argument record.
pub fn add_one() -> Value {
    Value::record([("k", Value::Int(1))])
}

/// Builds an operational signature with `n` interrogations of `p`
/// parameters each — the scaling axis of the Figure 3 benchmark.
pub fn wide_signature(name: &str, n: usize, p: usize) -> OperationalSignature {
    let mut sig = OperationalSignature::new(name);
    for i in 0..n {
        let params: Vec<(String, DataType)> =
            (0..p).map(|j| (format!("p{j}"), DataType::Int)).collect();
        sig = sig.interrogation(
            format!("op{i}"),
            params,
            vec![
                TerminationSignature::new("OK", [("r", DataType::Int)]),
                TerminationSignature::new("Error", [("reason", DataType::Text)]),
            ],
        );
    }
    sig
}

/// Fills a trader with `n` printer offers whose properties spread over
/// speed/floor/colour — the Figure/E3 scaling corpus.
pub fn populated_trader(n: usize) -> Trader {
    let mut trader = Trader::new("bench");
    for i in 0..n {
        trader
            .export(
                "Printer",
                InterfaceId::new(i as u64 + 1),
                Value::record([
                    ("ppm", Value::Int((i % 90) as i64 + 10)),
                    ("floor", Value::Int((i % 12) as i64)),
                    ("colour", Value::Bool(i % 3 == 0)),
                    ("queue_len", Value::Int((i % 25) as i64)),
                ]),
            )
            .expect("record properties");
    }
    trader
}

/// A nested value of the given depth/width for codec benchmarks.
pub fn nested_value(depth: usize, width: usize) -> Value {
    if depth == 0 {
        return Value::Int(42);
    }
    Value::record((0..width).map(|i| (format!("f{i}"), nested_value(depth - 1, width))))
}

/// Per-mechanism metric capture: runs a workload once with the
/// observability bus recording and reports which instrumented mechanisms
/// fired, how often, and at what sim-time latency — alongside the
/// wall-clock numbers the timed benchmarks produce.
pub mod capture {
    use rmodp_observe::bus;
    use rmodp_observe::metrics::Registry;

    /// Runs `f` against a clean bus with recording forced on and returns
    /// its result together with the metrics registry it filled. The bus is
    /// cleared again afterwards (recording returns to its prior setting),
    /// so timed iterations are unaffected. Build the simulation inside
    /// `f`: constructing a `Sim`/`Engine` resets the bus, so metrics
    /// recorded before the last construction would be lost.
    pub fn capture_metrics<T>(f: impl FnOnce() -> T) -> (T, Registry) {
        bus::reset();
        let was_enabled = bus::is_enabled();
        bus::set_enabled(true);
        let out = f();
        let registry = bus::snapshot_metrics();
        bus::set_enabled(was_enabled);
        bus::reset();
        (out, registry)
    }

    /// Renders a labelled per-mechanism report of a captured registry.
    pub fn mechanism_report(label: &str, registry: &Registry) -> String {
        let mut out = String::new();
        out.push_str(&format!("── mechanism metrics: {label} ──\n"));
        let body = registry.render();
        if body.is_empty() {
            out.push_str("(no instrumented mechanism fired)\n");
        } else {
            out.push_str(&body);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rig_serves_calls() {
        let mut rig = counter_rig(1, SyntaxId::Text);
        let ch = open(&mut rig, ChannelConfig::default());
        let t = rig.engine.call(ch, "Add", &add_one()).unwrap();
        assert!(t.is_ok());
    }

    #[test]
    fn wide_signature_has_requested_shape() {
        let sig = wide_signature("W", 8, 3);
        assert_eq!(sig.operations().len(), 8);
        assert_eq!(sig.operation("op0").unwrap().params.len(), 3);
    }

    #[test]
    fn populated_trader_holds_n_offers() {
        assert_eq!(populated_trader(100).len(), 100);
    }

    #[test]
    fn nested_value_size_grows() {
        assert_eq!(nested_value(0, 4).size(), 1);
        assert!(nested_value(3, 3).size() > nested_value(2, 3).size());
    }

    #[test]
    fn capture_reports_fired_mechanisms() {
        let (_, registry) = capture::capture_metrics(|| {
            let mut rig = counter_rig(1, SyntaxId::Binary);
            let ch = open(&mut rig, ChannelConfig::default());
            rig.engine.call(ch, "Add", &add_one()).unwrap();
        });
        assert!(registry.counter("engineering.calls") >= 1);
        assert!(registry.counter("netsim.sent") >= 1);
        let report = capture::mechanism_report("smoke", &registry);
        assert!(report.contains("engineering.calls"));
        assert!(report.contains("smoke"));
    }

    #[test]
    fn capture_leaves_bus_state_as_it_found_it() {
        rmodp_observe::bus::set_enabled(false);
        let (_, registry) = capture::capture_metrics(|| {
            rmodp_observe::bus::counter_add("probe", 1);
        });
        assert_eq!(
            registry.counter("probe"),
            1,
            "recording is on inside capture"
        );
        assert!(!rmodp_observe::bus::is_enabled(), "prior setting restored");
        rmodp_observe::bus::set_enabled(true);
    }
}
