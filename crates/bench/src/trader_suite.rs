//! The trading-at-scale suite behind `trader_bench`.
//!
//! [`run_suite`] populates a trader with a large offer corpus (1M+ by
//! default), replays the *same* seeded, mixed export/import workload —
//! arrivals from `rmodp-workload` scheduled on the kernel's event queue
//! — against two matching engines, and emits the full
//! `BENCH_trader.json` document (schema `rmodp-bench-trader/1`,
//! documented in `EXPERIMENTS.md` §E11):
//!
//! - **naive**: [`Trader::import_scan`], the linear reference scan;
//! - **indexed**: [`Trader::import`], the planner over declared
//!   secondary indexes.
//!
//! Latency is a *virtual* cost model — `1 + offers_examined/64`
//! microseconds per import, offers_examined read from the trader's own
//! counters — so every figure in the document derives from
//! deterministic counts, never wall-clock, and the file is
//! byte-identical across reruns (wall-clock rates go to stdout only).
//! Both engines fold their match streams (ids, order, counts) into a
//! checksum; the suite asserts the checksums are equal, making every
//! benchmark run an equivalence test at full scale.

use std::time::Instant;

use rmodp_core::id::InterfaceId;
use rmodp_core::value::Value;
use rmodp_kernel::{EventQueue, SimTime};
use rmodp_observe::metrics::Histogram;
use rmodp_trader::shard::ShardedFederation;
use rmodp_trader::{ImportRequest, IndexKind, Trader};
use rmodp_workload::arrival::ArrivalProcess;

/// Suite parameters (`--offers`, `--imports`, `--seed` on the binary).
#[derive(Debug, Clone, Copy)]
pub struct TraderBenchConfig {
    /// Initial offer corpus size.
    pub offers: usize,
    /// Workload operations replayed after population.
    pub imports: usize,
    /// Seed for the corpus and the arrival process.
    pub seed: u64,
}

impl Default for TraderBenchConfig {
    fn default() -> Self {
        Self {
            offers: 1_000_000,
            imports: 200,
            seed: 42,
        }
    }
}

const REGIONS: [&str; 4] = ["bne", "syd", "mel", "per"];
const TYPES: [&str; 3] = ["Printer", "Scanner", "Plotter"];

/// The deterministic properties of corpus offer `i`. Mixed int/float
/// speeds exercise the evaluator's numeric unification through the
/// index keys.
fn offer_properties(i: u64) -> Value {
    let ppm = (i.wrapping_mul(2_654_435_761) % 90 + 10) as i64;
    Value::record([
        (
            "ppm",
            if i.is_multiple_of(7) {
                Value::Float(ppm as f64)
            } else {
                Value::Int(ppm)
            },
        ),
        ("region", Value::text(REGIONS[(i % 4) as usize])),
        ("colour", Value::Bool(i.is_multiple_of(3))),
        ("floor", Value::Int((i % 12) as i64)),
    ])
}

fn offer_type(i: u64) -> &'static str {
    // 80% printers, the rest split — type buckets do real filtering.
    if i % 5 < 4 {
        TYPES[0]
    } else {
        TYPES[1 + (i % 2) as usize]
    }
}

fn populate(trader: &mut Trader, offers: usize) {
    for i in 0..offers as u64 {
        trader
            .export(offer_type(i), InterfaceId::new(i + 1), offer_properties(i))
            .expect("record properties");
    }
}

/// One workload step: mostly imports, with exports and withdrawals
/// mixed in so indexes are maintained (not just read) under load.
enum Op {
    Import(ImportRequest),
    Export(u64),
    Withdraw(u64),
}

/// The deterministic operation at workload position `k` over a corpus
/// of `offers`. Requests rotate through the planner's whole range:
/// selective conjunctions, point lookups, in-sets, preference-ordered
/// top-k, and planner-opaque constraints that force the fallback.
fn op_at(k: u64, offers: usize) -> Op {
    if k % 16 == 9 {
        return Op::Export(k);
    }
    if k % 32 == 19 {
        // A pseudo-random live-range id; withdrawing an already-gone
        // offer is a deterministic no-op on both engines.
        return Op::Withdraw(k.wrapping_mul(40_503) % offers as u64 + 1);
    }
    let region = REGIONS[(k % 4) as usize];
    let req = match k % 7 {
        0 => ImportRequest::new("Printer")
            .constraint(&format!("ppm >= 90 and region == \"{region}\""))
            .unwrap(),
        1 => ImportRequest::new("Printer")
            .constraint(&format!("ppm == {}", 10 + k % 90))
            .unwrap()
            .at_most(10),
        2 => ImportRequest::new("Scanner")
            .constraint("floor in [1, 5, 9] and colour == true")
            .unwrap(),
        3 => ImportRequest::new("Printer")
            .constraint(&format!("ppm >= 95 and region == \"{region}\""))
            .unwrap()
            .prefer_max("ppm")
            .unwrap()
            .at_most(5),
        4 => ImportRequest::new("Plotter")
            .constraint(&format!("ppm < {} and colour == false", 12 + k % 10))
            .unwrap(),
        // Planner-opaque: computed lhs forces the type-bucket fallback.
        5 => ImportRequest::new("Scanner")
            .constraint("ppm + 0 >= 97")
            .unwrap(),
        _ => ImportRequest::new("Plotter")
            .constraint(&format!("ppm <= 11 and floor == {}", k % 12))
            .unwrap()
            .prefer_min("ppm")
            .unwrap()
            .at_most(3),
    };
    Op::Import(req)
}

/// Measured outcome of one engine's run over the workload.
struct EngineRun {
    imports: u64,
    matches: u64,
    offers_examined: u64,
    busy_us: u64,
    latency: Histogram,
    checksum: u64,
    plans_indexed: u64,
    plans_fallback: u64,
    plan_example: String,
    wall: std::time::Duration,
}

/// Replays the workload against one trader. `indexed` picks the engine:
/// the planned path or the reference scan. The arrival process supplies
/// each operation's schedule time on the kernel queue; the virtual
/// latency model (`1 + examined/64` µs) supplies its service cost.
fn run_engine(trader: &mut Trader, cfg: TraderBenchConfig, indexed: bool) -> EngineRun {
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut arrivals = ArrivalProcess::Poisson {
        rate_per_sec: 500.0,
    }
    .stream(cfg.seed ^ 0x5eed);
    for k in 0..cfg.imports as u64 {
        let offset = arrivals.next().expect("stream is infinite");
        queue.schedule(SimTime::ZERO + offset, k);
    }
    let mut run = EngineRun {
        imports: 0,
        matches: 0,
        offers_examined: 0,
        busy_us: 0,
        latency: Histogram::default(),
        checksum: 0,
        plans_indexed: 0,
        plans_fallback: 0,
        plan_example: String::new(),
        wall: std::time::Duration::ZERO,
    };
    let started = Instant::now();
    let mut next_interface = cfg.offers as u64 + 1;
    while let Some((_, k)) = queue.pop() {
        match op_at(k, cfg.offers) {
            Op::Export(k) => {
                trader
                    .export(
                        offer_type(k),
                        InterfaceId::new(next_interface),
                        offer_properties(k),
                    )
                    .expect("record properties");
                next_interface += 1;
            }
            Op::Withdraw(id) => {
                let _ = trader.withdraw(rmodp_core::id::OfferId::new(id));
            }
            Op::Import(req) => {
                let before = trader.stats().offers_considered;
                let matches = if indexed {
                    trader.import(&req, None)
                } else {
                    trader.import_scan(&req, None)
                };
                let examined = trader.stats().offers_considered - before;
                let latency_us = 1 + examined / 64;
                run.imports += 1;
                run.matches += matches.len() as u64;
                run.offers_examined += examined;
                run.busy_us += latency_us;
                run.latency.observe(latency_us);
                run.checksum = run
                    .checksum
                    .wrapping_mul(31)
                    .wrapping_add(k)
                    .wrapping_add(matches.len() as u64);
                for m in &matches {
                    run.checksum = run
                        .checksum
                        .wrapping_mul(31)
                        .wrapping_add(m.offer.id.raw())
                        .wrapping_add(m.score.to_bits() >> 17);
                }
                if indexed && run.plan_example.is_empty() {
                    run.plan_example = trader.explain(&req, None).summary();
                }
            }
        }
    }
    run.wall = started.elapsed();
    run.plans_indexed = trader.stats().plans_indexed;
    run.plans_fallback = trader.stats().plans_fallback;
    run
}

fn engine_json(run: &EngineRun) -> String {
    let (p50, p95, p99) = run.latency.quantiles();
    let throughput = run.imports as f64 * 1e6 / run.busy_us.max(1) as f64;
    format!(
        "{{\"imports\":{},\"matches\":{},\"offers_examined\":{},\"busy_virtual_us\":{},\"latency_us\":{{\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}}},\"throughput_per_virtual_sec\":{throughput:.1},\"checksum\":{}}}",
        run.imports, run.matches, run.offers_examined, run.busy_us, run.checksum
    )
}

/// The sharded-federation section: the same corpus spread over 16
/// shards, showing type-directed routing touching a bounded shard set
/// instead of every trader.
fn sharded_section(cfg: TraderBenchConfig) -> String {
    const SHARDS: usize = 16;
    let offers = (cfg.offers / 8).max(1_000);
    let mut fed = ShardedFederation::new("shard", SHARDS);
    fed.index_property("ppm", IndexKind::Ordered);
    fed.index_property("region", IndexKind::Hash);
    for i in 0..offers as u64 {
        fed.export(offer_type(i), InterfaceId::new(i + 1), offer_properties(i))
            .expect("record properties");
    }
    let mut matches_total = 0u64;
    let mut checksum = 0u64;
    for k in 0..64u64 {
        let req = ImportRequest::new(TYPES[(k % 3) as usize])
            .constraint(&format!("ppm >= {}", 40 + k % 50))
            .unwrap()
            .exact_type();
        let matches = fed.import(&req, None);
        matches_total += matches.len() as u64;
        for m in &matches {
            checksum = checksum.wrapping_mul(31).wrapping_add(m.offer.id.raw());
        }
    }
    let stats = fed.stats();
    assert_eq!(
        stats.shard_queries, stats.routed_imports,
        "exact-type imports must touch exactly one shard each"
    );
    println!(
        "sharded: {SHARDS} shards, {offers} offers, {} routed imports -> {} shard queries (broadcast would be {})",
        stats.routed_imports,
        stats.shard_queries,
        stats.routed_imports * SHARDS as u64
    );
    format!(
        "{{\"shards\":{SHARDS},\"offers\":{offers},\"routed_imports\":{},\"shard_queries\":{},\"broadcast_equivalent_queries\":{},\"matches\":{matches_total},\"checksum\":{checksum}}}",
        stats.routed_imports,
        stats.shard_queries,
        stats.routed_imports * SHARDS as u64
    )
}

/// Runs the full suite and returns the `BENCH_trader.json` document.
///
/// # Panics
///
/// If the two engines disagree on any import (checksum mismatch), or if
/// the indexed engine fails to beat the scan on virtual busy time.
pub fn run_suite(cfg: TraderBenchConfig) -> String {
    // Millions of exports and imports would otherwise accumulate
    // millions of events; this suite is about the trader, not the bus.
    rmodp_observe::bus::reset();
    let was_enabled = rmodp_observe::bus::is_enabled();
    rmodp_observe::bus::set_enabled(false);

    let populate_started = Instant::now();
    let mut naive_trader = Trader::new("bench-naive");
    populate(&mut naive_trader, cfg.offers);
    println!(
        "populated {} offers (naive) in {:?}",
        cfg.offers,
        populate_started.elapsed()
    );
    let naive = run_engine(&mut naive_trader, cfg, false);
    drop(naive_trader);
    println!(
        "naive: {} imports, {} offers examined, busy {}us virtual, {:?} wall",
        naive.imports, naive.offers_examined, naive.busy_us, naive.wall
    );

    let populate_started = Instant::now();
    let mut indexed_trader = Trader::new("bench-indexed");
    indexed_trader.index_property("ppm", IndexKind::Ordered);
    indexed_trader.index_property("region", IndexKind::Hash);
    indexed_trader.index_property("floor", IndexKind::Ordered);
    indexed_trader.index_property("colour", IndexKind::Hash);
    populate(&mut indexed_trader, cfg.offers);
    println!(
        "populated {} offers (indexed) in {:?}",
        cfg.offers,
        populate_started.elapsed()
    );
    let indexed = run_engine(&mut indexed_trader, cfg, true);
    drop(indexed_trader);
    println!(
        "indexed: {} imports, {} offers examined, busy {}us virtual, {:?} wall ({} planned, {} fallback)",
        indexed.imports,
        indexed.offers_examined,
        indexed.busy_us,
        indexed.wall,
        indexed.plans_indexed,
        indexed.plans_fallback
    );

    assert_eq!(
        naive.checksum, indexed.checksum,
        "planned matching diverged from the reference scan"
    );
    assert!(
        indexed.busy_us < naive.busy_us,
        "indexed matching must beat the scan on virtual busy time \
         (indexed={}us naive={}us)",
        indexed.busy_us,
        naive.busy_us
    );

    let sharded = sharded_section(cfg);
    rmodp_observe::bus::set_enabled(was_enabled);

    let examined_ratio = naive.offers_examined as f64 / indexed.offers_examined.max(1) as f64;
    let throughput_ratio = naive.busy_us as f64 / indexed.busy_us.max(1) as f64;
    println!(
        "speedup: {examined_ratio:.1}x fewer offers examined, {throughput_ratio:.1}x match throughput"
    );

    format!(
        "{{\"schema\":\"rmodp-bench-trader/1\",\"config\":{{\"offers\":{},\"imports\":{},\"seed\":{},\"arrival\":\"poisson 500/s\",\"latency_model\":\"1 + examined/64 us\"}},\"naive\":{},\"indexed\":{},\"plans\":{{\"indexed\":{},\"fallback\":{},\"example\":\"{}\"}},\"speedup\":{{\"offers_examined_ratio\":{examined_ratio:.1},\"throughput_ratio\":{throughput_ratio:.1}}},\"sharded\":{}}}\n",
        cfg.offers,
        cfg.imports,
        cfg.seed,
        engine_json(&naive),
        engine_json(&indexed),
        indexed.plans_indexed,
        indexed.plans_fallback,
        indexed.plan_example,
        sharded
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_and_indexed_wins() {
        let cfg = TraderBenchConfig {
            offers: 4_000,
            imports: 96,
            seed: 7,
        };
        let a = run_suite(cfg);
        let b = run_suite(cfg);
        assert_eq!(a, b, "suite must be byte-identical across reruns");
        assert!(a.contains("\"schema\":\"rmodp-bench-trader/1\""));
        assert!(a.ends_with('\n'));
    }
}
