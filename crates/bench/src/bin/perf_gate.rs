//! Perf-regression gate: diffs freshly produced `BENCH_*.json`
//! artifacts against the checked-in baselines and writes a
//! deterministic `PERF_report.json` (schema `rmodp-perf-report/1`,
//! documented in `EXPERIMENTS.md` §E12). Exits non-zero when any metric
//! drifts outside its tolerance band or disappears, so an injected
//! slowdown fails the CI build.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin perf_gate -- \
//!     --baselines tests/baselines --out target/PERF_report.json \
//!     target/BENCH_workload.json target/BENCH_chaos.json ...
//! ```
//!
//! Each artifact is matched to the baseline with the same file name
//! under the baselines directory.

use rmodp_bench::perf;

fn main() {
    let mut baselines = "tests/baselines".to_owned();
    let mut out_path = "target/PERF_report.json".to_owned();
    let mut artifacts: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baselines" => baselines = args.next().expect("--baselines needs a directory"),
            "--out" => out_path = args.next().expect("--out needs a path"),
            path => artifacts.push(path.to_owned()),
        }
    }
    assert!(
        !artifacts.is_empty(),
        "usage: perf_gate [--baselines DIR] [--out PATH] BENCH_*.json..."
    );

    let bands = perf::default_bands();
    let mut reports = Vec::new();
    for artifact in &artifacts {
        let name = std::path::Path::new(artifact)
            .file_name()
            .and_then(|n| n.to_str())
            .expect("artifact path has a file name")
            .to_owned();
        let base_path = format!("{baselines}/{name}");
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let cur = std::fs::read_to_string(artifact)
            .unwrap_or_else(|e| panic!("read artifact {artifact}: {e}"));
        let report = perf::compare(&name, &base, &cur, &bands)
            .unwrap_or_else(|e| panic!("compare {name}: {e}"));
        for diff in &report.diffs {
            println!(
                "{name}: {} {} baseline={:?} current={:?} (band {})",
                diff.status, diff.path, diff.baseline, diff.current, diff.band
            );
        }
        println!(
            "{name}: {} ({} metrics checked)",
            if report.pass { "PASS" } else { "FAIL" },
            report.checked
        );
        reports.push(report);
    }

    let rendered = perf::render_report(&reports);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &rendered).expect("write PERF_report.json");
    println!("wrote {out_path}");

    if reports.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}
