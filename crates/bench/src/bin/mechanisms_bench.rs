//! Mechanisms benchmark: measures the unified kernel and the
//! allocation-light invocation path, emitting `BENCH_mechanisms.json`
//! (schema `rmodp-bench-mechanisms/1`, documented in `EXPERIMENTS.md`).
//! The suite itself lives in [`rmodp_bench::mechanisms`] so the
//! determinism test can run it in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin mechanisms_bench [output-path]
//! ```
//!
//! The default output path is `target/BENCH_mechanisms.json`. Every
//! figure in the file derives from virtual time or metered counters —
//! wall-clock rates go to stdout only — so the file is byte-identical
//! across runs: CI runs the binary twice and compares.

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/BENCH_mechanisms.json".to_owned());

    let json = rmodp_bench::mechanisms::run_suite();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
