//! Mechanisms benchmark: measures the unified kernel and the
//! allocation-light invocation path, emitting `BENCH_mechanisms.json`
//! (schema `rmodp-bench-mechanisms/1`, documented in `EXPERIMENTS.md`).
//! The suite itself lives in [`rmodp_bench::mechanisms`] so the
//! determinism test can run it in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin mechanisms_bench -- [--seed N] [output-path]
//! ```
//!
//! The default output path is `target/BENCH_mechanisms.json`. Every
//! figure in the file derives from virtual time or metered counters —
//! wall-clock rates go to stdout only — so the same seed produces a
//! byte-identical file: CI runs the binary twice and compares.

fn main() {
    let args = rmodp_bench::cli::parse(
        rmodp_bench::mechanisms::DEFAULT_SEED,
        "target/BENCH_mechanisms.json",
        &[],
    );
    args.single_shard("mechanisms_bench");
    let json = rmodp_bench::mechanisms::run_suite(args.seed);
    rmodp_bench::cli::write_output(&args.out, &json);
}
