//! Failover benchmark: drives quorum-replicated bank and trader groups
//! through rolling leader-kill and partition-during-commit schedules
//! and emits `BENCH_failover.json` — availability, failover-MTTR
//! distribution, fenced-write/quorum-loss counters, and the group
//! consistency oracle's verdict (schema `rmodp-bench-failover/1`,
//! documented in `EXPERIMENTS.md` §E14). The suite itself lives in
//! [`rmodp_bench::failover_suite`] so the integration tests can run it
//! in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin failover_bench -- [--seed N] [output-path]
//! ```
//!
//! Everything runs on virtual time with seeded RNGs, so the same seed
//! produces a byte-identical file — CI runs the binary twice and
//! compares.

fn main() {
    let args = rmodp_bench::cli::parse(4_242, "target/BENCH_failover.json", &[]);
    args.single_shard("failover_bench");
    let json = rmodp_bench::failover_suite::run_suite(args.seed);
    rmodp_bench::cli::write_output(&args.out, &json);
}
