//! Chaos benchmark: drives workloads and protocols through seeded fault
//! plans and emits `BENCH_chaos.json` — per-fault MTTR and availability,
//! exactly-once counters, 2PC safety under partitions and crashes, and
//! the circuit-breaker lifecycle (schema `rmodp-bench-chaos/1`,
//! documented in `EXPERIMENTS.md`). The suite itself lives in
//! [`rmodp_bench::chaos_suite`] so the golden test can run it
//! in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin chaos_bench [--seed N] [output-path]
//! ```
//!
//! Everything runs on virtual time with seeded RNGs, so the same seed
//! produces a byte-identical file — CI runs the binary twice and
//! compares.

fn main() {
    let mut seed = 4_242u64;
    let mut out_path = "target/BENCH_chaos.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--seed" {
            seed = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--seed needs an integer");
        } else {
            out_path = arg;
        }
    }

    let json = rmodp_bench::chaos_suite::run_suite(seed);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
