//! Chaos benchmark: drives workloads and protocols through seeded fault
//! plans and emits `BENCH_chaos.json` — per-fault MTTR and availability,
//! exactly-once counters, 2PC safety under partitions and crashes, and
//! the circuit-breaker lifecycle (schema `rmodp-bench-chaos/1`,
//! documented in `EXPERIMENTS.md`). The suite itself lives in
//! [`rmodp_bench::chaos_suite`] so the golden test can run it
//! in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin chaos_bench -- [--seed N] [output-path]
//! ```
//!
//! Everything runs on virtual time with seeded RNGs, so the same seed
//! produces a byte-identical file — CI runs the binary twice and
//! compares.

fn main() {
    let args = rmodp_bench::cli::parse(4_242, "target/BENCH_chaos.json", &[]);
    args.single_shard("chaos_bench");
    let json = rmodp_bench::chaos_suite::run_suite(args.seed);
    rmodp_bench::cli::write_output(&args.out, &json);
}
