//! Workload benchmark: runs the standard scenario suite and emits
//! `BENCH_workload.json` — per-scenario throughput and latency quantiles
//! plus the SLO verdicts (schema documented in `EXPERIMENTS.md`). The
//! suite itself lives in [`rmodp_bench::workload_suite`] so the golden
//! test can run it in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin workload_bench [output-path]
//! ```
//!
//! The default output path is `target/BENCH_workload.json`. Everything
//! runs on virtual time with fixed seeds, so the file is byte-identical
//! across runs — CI runs the binary twice and compares.

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/BENCH_workload.json".to_owned());

    let json = rmodp_bench::workload_suite::run_suite();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
