//! Workload benchmark: runs the standard scenario suite and emits
//! `BENCH_workload.json` — per-scenario throughput and latency quantiles
//! plus the SLO verdicts (schema documented in `EXPERIMENTS.md`). The
//! suite itself lives in [`rmodp_bench::workload_suite`] so the golden
//! test can run it in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin workload_bench -- [--seed N] [output-path]
//! ```
//!
//! The default output path is `target/BENCH_workload.json` and the
//! default seed `1000` (each scenario runs at a fixed offset from the
//! base). Everything runs on virtual time, so the same seed produces a
//! byte-identical file — CI runs the binary twice and compares.

fn main() {
    let args = rmodp_bench::cli::parse(
        rmodp_bench::workload_suite::DEFAULT_SEED,
        "target/BENCH_workload.json",
        &[],
    );
    args.single_shard("workload_bench");
    let json = rmodp_bench::workload_suite::run_suite(args.seed);
    rmodp_bench::cli::write_output(&args.out, &json);
}
