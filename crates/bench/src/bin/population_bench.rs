//! Population benchmark: drives 1M+ client capsules through the
//! bank-branch and trader-desk scenarios on the sharded kernel and emits
//! `BENCH_population.json` (schema `rmodp-bench-population/1`, documented
//! in `EXPERIMENTS.md` §E15).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin population_bench -- \
//!     [--seed N] [--shards N] [--scale S] [--measure 1] [output-path]
//! ```
//!
//! Without `--shards` the suite runs the full matrix {1, 2, 4} and
//! asserts the results are identical; with `--shards N` it runs only at
//! `N` — and still produces the same checksums, which is the point.
//! `--scale 0` is the reduced CI configuration; the default (full) scale
//! simulates over a million capsules. `--measure 1` adds wall-clock
//! events/sec to the artifact (breaking cross-host byte-identity; CI
//! never passes it — wall-clock always goes to stdout regardless).

use rmodp_bench::population_suite::{run_suite, PopulationBenchConfig, DEFAULT_SEED};

fn main() {
    let args = rmodp_bench::cli::parse(
        DEFAULT_SEED,
        "target/BENCH_population.json",
        &["--scale", "--measure"],
    );
    let cfg = PopulationBenchConfig {
        seed: args.seed,
        shards: args.shards.map(|n| n as usize),
        scale: args.extra[0].map_or(1, |s| s.min(1) as u8),
        measure: args.extra[1].is_some_and(|m| m != 0),
    };
    let json = run_suite(cfg);
    rmodp_bench::cli::write_output(&args.out, &json);
}
