//! OO7-class persistent-object benchmark over the durable store,
//! emitting `BENCH_oo7.json` (schema `rmodp-bench-oo7/1`, documented in
//! `EXPERIMENTS.md` §E13). The suite itself lives in
//! [`rmodp_bench::oo7_suite`] so the determinism test can run it
//! in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin oo7_bench -- \
//!     [--seed N] [--scale 0|1|2] [--updates N] [output-path]
//! ```
//!
//! `--scale` picks the library size: 0 = small (~1.2k objects, the CI
//! smoke scale), 1 = medium (~100k), 2 = full (~1M, the default). Every
//! figure in the file derives from deterministic counts and a virtual
//! cost model — wall-clock rates go to stdout only — so the file is
//! byte-identical across same-seed runs: CI runs the binary twice at
//! the small scale and compares bytes.

use rmodp_bench::oo7_suite::{run_suite, Oo7BenchConfig};

fn main() {
    let mut cfg = Oo7BenchConfig::default();
    let args =
        rmodp_bench::cli::parse(cfg.seed, "target/BENCH_oo7.json", &["--scale", "--updates"]);
    args.single_shard("oo7_bench");
    cfg.seed = args.seed;
    if let Some(scale) = args.extra[0] {
        cfg.scale = scale.min(2) as u8;
    }
    if let Some(updates) = args.extra[1] {
        cfg.update_batches = updates;
    }
    let json = run_suite(cfg);
    rmodp_bench::cli::write_output(&args.out, &json);
}
