//! Trading-at-scale benchmark: indexed matching vs the naive scan over
//! a million-offer repository, emitting `BENCH_trader.json` (schema
//! `rmodp-bench-trader/1`, documented in `EXPERIMENTS.md` §E11). The
//! suite itself lives in [`rmodp_bench::trader_suite`] so the
//! determinism test can run it in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin trader_bench -- \
//!     [--seed N] [--offers N] [--imports N] [output-path]
//! ```
//!
//! The default output path is `target/BENCH_trader.json`, the default
//! corpus 1,000,000 offers. Every figure in the file derives from
//! virtual time and the trader's own counters — wall-clock rates go to
//! stdout only — so the file is byte-identical across runs: CI runs the
//! binary twice at a reduced offer count and compares.

use rmodp_bench::trader_suite::{run_suite, TraderBenchConfig};

fn main() {
    let mut cfg = TraderBenchConfig::default();
    let args = rmodp_bench::cli::parse(
        cfg.seed,
        "target/BENCH_trader.json",
        &["--offers", "--imports"],
    );
    args.single_shard("trader_bench");
    cfg.seed = args.seed;
    if let Some(offers) = args.extra[0] {
        cfg.offers = offers as usize;
    }
    if let Some(imports) = args.extra[1] {
        cfg.imports = imports as usize;
    }
    let json = run_suite(cfg);
    rmodp_bench::cli::write_output(&args.out, &json);
}
