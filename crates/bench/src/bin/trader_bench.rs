//! Trading-at-scale benchmark: indexed matching vs the naive scan over
//! a million-offer repository, emitting `BENCH_trader.json` (schema
//! `rmodp-bench-trader/1`, documented in `EXPERIMENTS.md` §E11). The
//! suite itself lives in [`rmodp_bench::trader_suite`] so the
//! determinism test can run it in-process.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rmodp-bench --bin trader_bench -- \
//!     [output-path] [--offers N] [--imports N] [--seed N]
//! ```
//!
//! The default output path is `target/BENCH_trader.json`, the default
//! corpus 1,000,000 offers. Every figure in the file derives from
//! virtual time and the trader's own counters — wall-clock rates go to
//! stdout only — so the file is byte-identical across runs: CI runs the
//! binary twice at a reduced offer count and compares.

use rmodp_bench::trader_suite::{run_suite, TraderBenchConfig};

fn main() {
    let mut out_path = "target/BENCH_trader.json".to_owned();
    let mut cfg = TraderBenchConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match arg.as_str() {
            "--offers" => cfg.offers = numeric("--offers") as usize,
            "--imports" => cfg.imports = numeric("--imports") as usize,
            "--seed" => cfg.seed = numeric("--seed"),
            path => out_path = path.to_owned(),
        }
    }

    let json = run_suite(cfg);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
