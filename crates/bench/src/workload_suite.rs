//! The standard workload scenario suite behind `workload_bench`.
//!
//! [`run_suite`] runs every scenario and returns the full
//! `BENCH_workload.json` document (schema `rmodp-bench-workload/1`,
//! documented in `EXPERIMENTS.md`). Everything runs on virtual time with
//! fixed seeds, so the returned string is byte-identical across runs —
//! the golden test in `tests/golden.rs` compares it against the
//! committed fixture, and CI runs the binary twice and compares.

use std::time::Duration;

use rmodp_core::codec::SyntaxId;
use rmodp_core::contract::QosRequirement;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::nucleus::AdmissionConfig;
use rmodp_netsim::time::SimDuration;
use rmodp_observe::{bus, oracle};
use rmodp_workload::prelude::*;

use crate::{add_one, counter_rig, open};

/// One suite entry: an optional admission configuration for the server
/// node, and the scenario to drive.
struct Case {
    admission: Option<AdmissionConfig>,
    scenario: Scenario,
}

fn add_mix() -> OperationMix {
    OperationMix::new().with("Add", add_one(), 1)
}

fn suite(seed: u64) -> Vec<Case> {
    vec![
        // Uncontended open loop: the baseline the contract should pass.
        Case {
            admission: None,
            scenario: Scenario::new(
                "steady_open_poisson",
                seed + 1,
                LoadModel::Open {
                    arrivals: ArrivalProcess::Poisson {
                        rate_per_sec: 300.0,
                    },
                },
            )
            .lasting(SimDuration::from_secs(2))
            .with_warmup(SimDuration::from_millis(200))
            .with_mix(add_mix())
            .with_contract(
                QosRequirement::none()
                    .with_max_latency(Duration::from_millis(20))
                    .with_min_availability(0.999)
                    .reliable(),
            ),
        },
        // Offered load is twice the service capacity (1 per ms): the
        // bounded queue must overflow and the Reject policy must shed.
        Case {
            admission: Some(AdmissionConfig::reject(8, SimDuration::from_millis(1))),
            scenario: Scenario::new(
                "overload_reject",
                seed + 2,
                LoadModel::Open {
                    arrivals: ArrivalProcess::Poisson {
                        rate_per_sec: 2_000.0,
                    },
                },
            )
            .lasting(SimDuration::from_secs(1))
            .with_mix(add_mix())
            .with_contract(
                QosRequirement::none()
                    .with_max_latency(Duration::from_millis(50))
                    .with_min_availability(0.9),
            ),
        },
        // Bursts above capacity with quiet valleys: ShedOldest evicts
        // the stale backlog during each burst.
        Case {
            admission: Some(AdmissionConfig::shed_oldest(
                16,
                SimDuration::from_micros(800),
            )),
            scenario: Scenario::new(
                "bursty_shed_oldest",
                seed + 3,
                LoadModel::Open {
                    arrivals: ArrivalProcess::BurstyOnOff {
                        on_rate_per_sec: 3_000.0,
                        off_rate_per_sec: 50.0,
                        mean_on: SimDuration::from_millis(50),
                        mean_off: SimDuration::from_millis(150),
                    },
                },
            )
            .lasting(SimDuration::from_secs(2))
            .with_mix(add_mix())
            .with_contract(QosRequirement::none().with_min_availability(0.5)),
        },
        // Closed loop: throughput self-limits, so even a tight latency
        // bound holds while the population is modest.
        Case {
            admission: None,
            scenario: Scenario::new(
                "closed_population",
                seed + 4,
                LoadModel::Closed {
                    population: 12,
                    think_time: SimDuration::from_millis(2),
                },
            )
            .lasting(SimDuration::from_secs(1))
            .with_mix(add_mix())
            .with_contract(
                QosRequirement::none()
                    .with_max_latency(Duration::from_millis(10))
                    .reliable(),
            ),
        },
    ]
}

fn run_case(case: &Case) -> (SloReport, usize) {
    // A fresh rig per case: Engine::new resets the observe bus, so each
    // scenario gets its own event stream and metrics.
    let mut rig = counter_rig(case.scenario.seed, SyntaxId::Text);
    if let Some(admission) = case.admission {
        rig.engine
            .set_admission(rig.server, admission)
            .expect("server node exists");
    }
    let channel = open(&mut rig, ChannelConfig::default());
    let (_stats, report) = run_scenario(&mut rig.engine, channel, &case.scenario);
    let violations = oracle::verify_causality(&bus::snapshot_events()).len();
    (report, violations)
}

/// The base seed CI and the golden fixture use; each scenario runs at a
/// fixed offset from the base (`seed + 1` .. `seed + 4`).
pub const DEFAULT_SEED: u64 = 1_000;

/// Runs the whole suite at the given base seed and returns the
/// `BENCH_workload.json` document. Per-scenario reports go to stdout as
/// they complete.
///
/// # Panics
///
/// If any scenario violates causality, or no scenario trips admission
/// control (the suite must exercise shedding).
pub fn run_suite(seed: u64) -> String {
    let mut entries = Vec::new();
    let mut tripped_admission = false;
    for case in suite(seed) {
        let (report, violations) = run_case(&case);
        println!("{}", report.render());
        assert_eq!(
            violations, 0,
            "scenario {} violated causality",
            report.scenario
        );
        if report.admission_shed > 0 {
            tripped_admission = true;
        }
        entries.push(format!(
            "{{\"causality_violations\":{violations},\"report\":{}}}",
            report.to_json()
        ));
    }
    assert!(
        tripped_admission,
        "the suite must contain at least one scenario that trips admission control"
    );

    format!(
        "{{\"schema\":\"rmodp-bench-workload/1\",\"scenarios\":[{}]}}\n",
        entries.join(",")
    )
}
