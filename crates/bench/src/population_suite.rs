//! The population-scale sharded-kernel suite behind `population_bench`.
//!
//! [`run_suite`] drives the bank-branch and trader-desk population
//! scenarios (the full scale simulates **1,245,184 client capsules**:
//! 1,048,576 bank + 196,608 trader) through the sharded kernel at a
//! matrix of shard counts, asserting after every scenario that the
//! canonical export checksum, the audited server-state checksum, the
//! event count and the SLO verdict are **identical at every shard
//! count** — the sharded kernel's core determinism contract.
//!
//! Everything in the emitted `BENCH_population.json` (schema
//! `rmodp-bench-population/1`, documented in `EXPERIMENTS.md` §E15)
//! derives from virtual time and deterministic counts, so the file is
//! byte-identical across same-seed reruns at any `--shards` setting on
//! any host. Wall-clock throughput (events per second, per shard count)
//! always goes to stdout; it enters the artifact only under
//! `--measure 1`, which CI never passes.
//!
//! Cross-shard payloads ride the kernel's `Arc`-backed
//! [`Payload`](rmodp_kernel::payload::Payload): depositing a message
//! into another shard's queue clones the `Arc`, never the bytes, so the
//! exchange stays copy-free however many shards the run spans.

use std::time::Instant;

use rmodp_workload::population::{
    run_population, PopulationConfig, PopulationOutcome, PopulationScenario,
};

/// Suite parameters (`--seed`, `--shards`, `--scale`, `--measure` on the
/// binary).
#[derive(Debug, Clone, Copy)]
pub struct PopulationBenchConfig {
    /// Base seed shared by every run in the matrix.
    pub seed: u64,
    /// `None` runs the full matrix {1, 2, 4}; `Some(n)` runs only `n`.
    pub shards: Option<usize>,
    /// 0 = CI scale (thousands of capsules), 1 = full scale (1M+).
    pub scale: u8,
    /// Include wall-clock figures in the artifact (breaks byte-identity
    /// across hosts; stdout always gets them).
    pub measure: bool,
}

impl Default for PopulationBenchConfig {
    fn default() -> Self {
        Self {
            seed: 4242,
            shards: None,
            scale: 1,
            measure: false,
        }
    }
}

/// The default seed `population_bench` runs with.
pub const DEFAULT_SEED: u64 = 4242;

/// The shard counts the full matrix exercises.
pub const MATRIX: [usize; 3] = [1, 2, 4];

fn scenario_config(
    scenario: PopulationScenario,
    cfg: &PopulationBenchConfig,
    shards: usize,
) -> PopulationConfig {
    if cfg.scale == 0 {
        let mut config = PopulationConfig::new(scenario, cfg.seed, shards);
        match scenario {
            PopulationScenario::Bank => {
                config.regions = 8;
                config.capsules_per_region = 256;
                config.ops_per_capsule = 1;
            }
            PopulationScenario::Trader => {
                config.regions = 6;
                config.capsules_per_region = 128;
                config.ops_per_capsule = 2;
            }
        }
        config.arrival_window = rmodp_netsim::time::SimDuration::from_millis(100);
        config
    } else {
        PopulationConfig::full_scale(scenario, cfg.seed, shards)
    }
}

struct MeasuredRun {
    outcome: PopulationOutcome,
    wall_ms: u64,
    events_per_sec: f64,
}

fn render_run(run: &MeasuredRun, measure: bool) -> String {
    let o = &run.outcome;
    let (p50, p95, p99) = (o.report.p50_us, o.report.p95_us, o.report.p99_us);
    let mut json = format!(
        "{{\"shards\":{},\"events\":{},\"epochs\":{},\"cross_shard_messages\":{},\
         \"offered\":{},\"completed\":{},\"lost\":{},\"finished_virtual_us\":{},\
         \"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\
         \"export_checksum\":{},\"state_checksum\":{},\"slo_pass\":{}}}",
        o.shards,
        o.events,
        o.epochs,
        o.cross_shard_messages,
        o.stats.offered,
        o.stats.completed,
        o.stats.lost,
        o.finished_us,
        o.export_checksum,
        o.state_checksum,
        o.report.pass,
    );
    if measure {
        json.pop();
        json.push_str(&format!(
            ",\"measured\":{{\"wall_ms\":{},\"events_per_sec\":{:.0}}}}}",
            run.wall_ms, run.events_per_sec
        ));
    }
    json
}

/// Runs the suite and renders `BENCH_population.json`.
///
/// # Panics
///
/// If any scenario's export checksum, state checksum, event count or SLO
/// verdict differs between shard counts — that would mean the sharded
/// kernel broke its determinism contract.
pub fn run_suite(cfg: PopulationBenchConfig) -> String {
    let shard_counts: Vec<usize> = match cfg.shards {
        Some(n) => vec![n],
        None => MATRIX.to_vec(),
    };
    let scale_name = if cfg.scale == 0 { "ci" } else { "full" };

    let mut scenario_blocks = Vec::new();
    let mut total_capsules = 0u64;
    for scenario in [PopulationScenario::Bank, PopulationScenario::Trader] {
        let mut runs: Vec<MeasuredRun> = Vec::new();
        for &shards in &shard_counts {
            let config = scenario_config(scenario, &cfg, shards);
            let start = Instant::now();
            let outcome = run_population(&config);
            let wall = start.elapsed();
            let wall_ms = wall.as_millis() as u64;
            let events_per_sec = outcome.events as f64 / wall.as_secs_f64().max(1e-9);
            println!(
                "population {} shards={} capsules={} events={} wall_ms={} events/sec={:.0}",
                scenario.name(),
                shards,
                outcome.capsules,
                outcome.events,
                wall_ms,
                events_per_sec,
            );
            runs.push(MeasuredRun {
                outcome,
                wall_ms,
                events_per_sec,
            });
        }

        let base = &runs[0].outcome;
        for run in &runs[1..] {
            let o = &run.outcome;
            assert_eq!(
                o.export_checksum,
                base.export_checksum,
                "{} export checksum differs between {} and {} shards",
                scenario.name(),
                base.shards,
                o.shards
            );
            assert_eq!(o.state_checksum, base.state_checksum);
            assert_eq!(o.events, base.events);
            assert_eq!(o.report, base.report);
        }
        total_capsules += base.capsules;

        let config = scenario_config(scenario, &cfg, shard_counts[0]);
        let rendered: Vec<String> = runs.iter().map(|r| render_run(r, cfg.measure)).collect();
        scenario_blocks.push(format!(
            "\"{}\":{{\"capsules\":{},\"regions\":{},\"capsules_per_region\":{},\
             \"ops_per_capsule\":{},\"arrival_window_us\":{},\"runs\":[{}],\
             \"invariant\":{{\"export_checksum\":{},\"state_checksum\":{},\
             \"identical_across_shard_counts\":true}}}}",
            scenario.name(),
            base.capsules,
            config.regions,
            config.capsules_per_region,
            config.ops_per_capsule,
            config.arrival_window.as_micros(),
            rendered.join(","),
            base.export_checksum,
            base.state_checksum,
        ));
    }

    let shard_list = shard_counts
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"schema\":\"rmodp-bench-population/1\",\"config\":{{\"seed\":{},\
         \"scale\":\"{scale_name}\",\"shard_counts\":[{shard_list}],\
         \"lookahead_us\":{},\"total_capsules\":{total_capsules}}},\
         \"scenarios\":{{{}}}}}\n",
        cfg.seed,
        rmodp_workload::population::CROSS_LATENCY.as_micros(),
        scenario_blocks.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_scale_suite_is_deterministic_and_invariant() {
        let cfg = PopulationBenchConfig {
            seed: 99,
            shards: None,
            scale: 0,
            measure: false,
        };
        let a = run_suite(cfg);
        let b = run_suite(cfg);
        assert_eq!(a, b, "same seed, same bytes");
        assert!(a.contains("\"schema\":\"rmodp-bench-population/1\""));
        assert!(a.contains("\"identical_across_shard_counts\":true"));
        assert!(
            !a.contains("\"measured\""),
            "wall-clock stays out of the artifact"
        );
    }

    #[test]
    fn restricting_the_matrix_keeps_the_same_checksums() {
        let full = run_suite(PopulationBenchConfig {
            seed: 99,
            shards: None,
            scale: 0,
            measure: false,
        });
        let single = run_suite(PopulationBenchConfig {
            seed: 99,
            shards: Some(4),
            scale: 0,
            measure: false,
        });
        // The invariant blocks (checksums) must agree between a matrix
        // run and a single-shard-count run of the same seed.
        let pick = |s: &str| {
            s.split("\"invariant\":")
                .skip(1)
                .map(|tail| tail.split('}').next().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(&full), pick(&single));
    }
}
