//! The kernel/invocation mechanisms suite behind `mechanisms_bench`.
//!
//! [`run_suite`] measures the machinery PR 5 unified: throughput of the
//! one deterministic event queue, and the allocation profile of the
//! invocation hot path now that payloads are shared buffers. It returns
//! the full `BENCH_mechanisms.json` document (schema
//! `rmodp-bench-mechanisms/1`, documented in `EXPERIMENTS.md`).
//!
//! Every number in the document is derived from virtual time, event
//! counts, or the metered payload counters — never from wall-clock — so
//! the document is byte-identical across reruns; wall-clock rates are
//! printed to stdout only. Alongside each measured counter the document
//! records the *naive* cost model of the pre-kernel code (marshal once
//! per attempt, deep-copy once per delivery, encode once per replica),
//! so the before/after saving is part of the artifact.

use std::time::Instant;

use rmodp_core::codec::SyntaxId;
use rmodp_core::value::Value;
use rmodp_engineering::channel::{ChannelConfig, RetryPolicy};
use rmodp_functions::group::ReplicationPolicy;
use rmodp_kernel::{EventQueue, KernelRng, SimTime, PAYLOAD_ALLOCS, PAYLOAD_COPIES};
use rmodp_netsim::topology::LinkConfig;
use rmodp_transparency::proxy::OdpInfra;
use rmodp_transparency::replication::replicated_counters;

use crate::capture::capture_metrics;
use crate::{add_one, counter_rig, open};

/// Part 1: raw throughput of the kernel's event queue. `N` entries at
/// seeded pseudo-random timestamps go in; they must come out in total
/// `(time, seq)` order. The order checksum (a fold over the pop
/// sequence) lands in the document; the events/sec wall-clock rate goes
/// to stdout.
fn kernel_queue(seed: u64) -> String {
    use rand::Rng;

    const EVENTS: u64 = 200_000;
    let mut rng = KernelRng::seeded(seed);
    let mut queue = EventQueue::new();
    let started = Instant::now();
    for i in 0..EVENTS {
        // Timestamps collide often (modulus far below N) so the FIFO
        // tie-break is exercised, not just the time ordering.
        let at = SimTime::from_micros(rng.gen_range(0..EVENTS / 4));
        queue.schedule(at, i);
    }
    let mut last = SimTime::ZERO;
    let mut popped = 0u64;
    let mut checksum = 0u64;
    while let Some((at, item)) = queue.pop() {
        assert!(at >= last, "event queue went backwards");
        last = at;
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(at.as_micros())
            .wrapping_add(item);
        popped += 1;
    }
    let elapsed = started.elapsed();
    assert_eq!(popped, EVENTS);
    let rate = (EVENTS * 2) as f64 / elapsed.as_secs_f64();
    println!(
        "kernel-queue: {EVENTS} schedule+pop pairs in {elapsed:?} ({rate:.0} ops/sec wall-clock)"
    );

    format!("{{\"events\":{EVENTS},\"order_checksum\":{checksum}}}")
}

/// Part 2: the uncontended invocation path. Under the old code every
/// delivered envelope was parsed with a deep payload copy; now parsing
/// slices the delivered frame, so the copy counter must read zero.
fn invocation(seed: u64) -> String {
    const CALLS: u64 = 500;
    let ((), registry) = capture_metrics(|| {
        let mut rig = counter_rig(seed, SyntaxId::Text);
        let channel = open(&mut rig, ChannelConfig::default());
        for _ in 0..CALLS {
            let t = rig
                .engine
                .call(channel, "Add", &add_one())
                .expect("clean network");
            assert!(t.is_ok());
        }
    });
    let calls = registry.counter("engineering.calls");
    let sent = registry.counter("netsim.sent");
    let delivered = registry.counter("netsim.delivered");
    let allocs = registry.counter(PAYLOAD_ALLOCS);
    let copies = registry.counter(PAYLOAD_COPIES);
    assert_eq!(calls, CALLS);
    assert_eq!(copies, 0, "invocation hot path must not deep-copy payloads");
    println!(
        "invocation: calls={calls} sent={sent} delivered={delivered} payload_allocs={allocs} payload_copies={copies}"
    );

    // The pre-kernel parse path copied every delivered payload.
    format!(
        "{{\"calls\":{calls},\"messages_sent\":{sent},\"messages_delivered\":{delivered},\"payload_allocs\":{allocs},\"payload_copies\":{copies},\"naive_parse_copies\":{delivered}}}"
    )
}

/// Part 3: retransmission under loss. Reliable calls over a lossy link
/// retransmit; each retransmission reuses the marshalled frame (an
/// `Arc` clone), so payload allocations must not scale with retries —
/// where the old code re-marshalled once per attempt.
fn retransmission(seed: u64) -> String {
    const CALLS: u64 = 200;
    let ((), registry) = capture_metrics(|| {
        let mut rig = counter_rig(seed, SyntaxId::Text);
        let client = rig.engine.sim_node(rig.client).expect("client exists");
        let server = rig.engine.sim_node(rig.server).expect("server exists");
        let before = rig.engine.sim().topology().link(client, server);
        let lossy = LinkConfig {
            loss: 0.3,
            ..before
        };
        let topo = rig.engine.sim_mut().topology_mut();
        topo.set_link(client, server, lossy);
        topo.set_link(server, client, lossy);
        let channel = open(
            &mut rig,
            ChannelConfig {
                retry: Some(RetryPolicy::reliable()),
                ..ChannelConfig::default()
            },
        );
        for _ in 0..CALLS {
            let t = rig
                .engine
                .call(channel, "Add", &add_one())
                .expect("reliable channel");
            assert!(t.is_ok());
        }
    });
    let calls = registry.counter("engineering.calls");
    let retries = registry.counter("engineering.retries");
    let dedup_hits = registry.counter("engineering.dedup.hits");
    let duplicate_dispatches = registry.counter("engineering.dedup.duplicate_dispatches");
    let frames_sent = registry.counter("netsim.sent");
    let allocs = registry.counter(PAYLOAD_ALLOCS);
    let copies = registry.counter(PAYLOAD_COPIES);
    assert_eq!(calls, CALLS);
    assert!(retries > 0, "30% loss must force retransmissions");
    assert_eq!(
        copies, 0,
        "retransmissions must share the frame, not copy it"
    );
    assert_eq!(
        duplicate_dispatches, 0,
        "dedup must absorb duplicate arrivals"
    );
    // Frame reuse: the old path marshalled once per attempt, so its
    // marshal count was calls + retries. The shared-frame path allocates
    // independently of the retry count — with fewer total allocations
    // than the naive model's marshal ops alone would cost.
    let naive_marshal_ops = calls + retries;
    println!(
        "retransmission: calls={calls} retries={retries} dedup_hits={dedup_hits} frames_sent={frames_sent} payload_allocs={allocs} payload_copies={copies}"
    );

    format!(
        "{{\"calls\":{calls},\"retries\":{retries},\"dedup_hits\":{dedup_hits},\"duplicate_dispatches\":{duplicate_dispatches},\"frames_sent\":{frames_sent},\"payload_allocs\":{allocs},\"payload_copies\":{copies},\"naive_marshal_ops\":{naive_marshal_ops}}}"
    )
}

/// Part 4: replication fan-out. One update to an actively replicated
/// group marshals the invocation once and shares it across every
/// replica — the old path re-encoded the arguments per replica.
fn replication(seed: u64) -> String {
    const REPLICAS: usize = 5;
    const UPDATES: u64 = 20;
    let ((), registry) = capture_metrics(|| {
        let mut engine = rmodp_engineering::engine::Engine::new(seed);
        engine.behaviours_mut().register(
            "counter",
            rmodp_engineering::behaviour::CounterBehaviour::default,
        );
        let client = engine.add_node(SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        let (mut svc, _) = replicated_counters(
            &mut engine,
            &mut infra,
            client,
            ReplicationPolicy::Active,
            REPLICAS,
        )
        .expect("fresh replicas");
        for _ in 0..UPDATES {
            svc.update(&mut engine, &mut infra, "Add", &add_one())
                .expect("all replicas live");
        }
        let all = svc
            .read_all(
                &mut engine,
                &mut infra,
                "Get",
                &Value::record::<&str, _>([]),
            )
            .expect("all replicas live");
        for t in all {
            assert_eq!(t.results.field("n"), Some(&Value::Int(UPDATES as i64)));
        }
    });
    let updates = registry.counter("transparency.replica_updates");
    let calls = registry.counter("engineering.calls");
    let allocs = registry.counter(PAYLOAD_ALLOCS);
    let copies = registry.counter(PAYLOAD_COPIES);
    assert_eq!(updates, UPDATES);
    assert_eq!(copies, 0, "fan-out must share the prepared invocation");
    // Old path: arguments encoded once per replica per update. New path:
    // once per update, shared across the group.
    let naive_encodes = UPDATES * REPLICAS as u64;
    println!(
        "replication: updates={updates} replicas={REPLICAS} calls={calls} payload_allocs={allocs} payload_copies={copies}"
    );

    format!(
        "{{\"replicas\":{REPLICAS},\"updates\":{updates},\"calls\":{calls},\"payload_allocs\":{allocs},\"payload_copies\":{copies},\"invocation_encodes\":{updates},\"naive_invocation_encodes\":{naive_encodes}}}"
    )
}

/// The base seed CI uses; the parts derive their rig seeds from it.
pub const DEFAULT_SEED: u64 = 70;

/// Runs all four parts at the given base seed and returns the
/// `BENCH_mechanisms.json` document. Wall-clock rates go to stdout only, so the document is
/// byte-identical across reruns.
///
/// # Panics
///
/// If the queue misorders events or any payload deep-copy is observed
/// on a hot path.
pub fn run_suite(seed: u64) -> String {
    let kernel = kernel_queue(seed);
    let invocation = invocation(seed.wrapping_mul(100) + 1);
    let retransmission = retransmission(seed.wrapping_mul(100) + 2);
    let replication = replication(seed.wrapping_mul(100) + 3);

    format!(
        "{{\"schema\":\"rmodp-bench-mechanisms/1\",\"kernel\":{kernel},\"invocation\":{invocation},\"retransmission\":{retransmission},\"replication\":{replication}}}\n"
    )
}
