//! The OO7-class persistent-object suite behind `oo7_bench`.
//!
//! [`run_suite`] loads the full OO7 design library (~1M typed
//! information objects at the default scale) through the durable
//! [`StoreEngine`], runs the classic traversal/update/query mix, and
//! then breaks things on purpose twice:
//!
//! - **power loss**: the stable medium crashes in the middle of an
//!   uncommitted update batch; reopening replays the WAL and must
//!   reproduce the committed state checksum exactly (the uncommitted
//!   batch vanishes whole);
//! - **capsule kill**: a chaos [`FaultPlan`] kills a guarded cluster's
//!   capsule and crashes its node mid-update-stream; the
//!   [`DurableGuard`] recovers onto a backup from its store-backed
//!   checkpoint + write-ahead op log, and the suite asserts *zero*
//!   committed updates were lost while measuring the recovery MTTR on
//!   virtual time.
//!
//! Every figure in the emitted `BENCH_oo7.json` (schema
//! `rmodp-bench-oo7/1`, documented in `EXPERIMENTS.md` §E13) derives
//! from deterministic counts and a virtual cost model — wall-clock
//! rates go to stdout only — so the file is byte-identical across
//! same-seed reruns. CI runs the binary twice and diffs the bytes.

use std::time::Instant;

use rmodp_chaos::prelude::{FaultInjector, FaultKind, FaultPlan};
use rmodp_core::codec::SyntaxId;
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::engine::Engine;
use rmodp_kernel::{EventQueue, SimTime};
use rmodp_netsim::time::SimDuration;
use rmodp_observe::bus;
use rmodp_store::{
    state_checksum, MemMedia, Oo7Config, Oo7Workload, StableMedia, StoreConfig, StoreEngine,
};
use rmodp_transparency::durable::DurableGuard;
use rmodp_transparency::{OdpInfra, Transparency, TransparencySet, TransparentProxy};
use rmodp_workload::arrival::ArrivalProcess;

/// Suite parameters (`--scale`, `--updates`, `--seed` on the binary).
#[derive(Debug, Clone, Copy)]
pub struct Oo7BenchConfig {
    /// Library scale: 0 = small (~1.2k objects), 1 = medium (~100k),
    /// 2 = full (~1M).
    pub scale: u8,
    /// Update batches driven after the traversals.
    pub update_batches: u64,
    /// Seed for the library attributes and the arrival process.
    pub seed: u64,
}

impl Default for Oo7BenchConfig {
    fn default() -> Self {
        Self {
            scale: 2,
            update_batches: 24,
            seed: 4242,
        }
    }
}

/// Composite lanes touched per update batch (`id % STRIDE` selects).
const STRIDE: u32 = 16;

fn shape(scale: u8) -> (Oo7Config, &'static str) {
    match scale {
        0 => (Oo7Config::small(), "small"),
        1 => (Oo7Config::medium(), "medium"),
        _ => (Oo7Config::full(), "full"),
    }
}

/// Auto-compaction threshold per scale: low enough that every scale
/// actually exercises snapshot + WAL-reset under load.
fn compact_threshold(scale: u8) -> usize {
    match scale {
        0 => 64 << 10,
        1 => 8 << 20,
        _ => 48 << 20,
    }
}

/// Virtual service cost of recovery-by-replay: fixed reopen cost plus
/// per-record scan and snapshot-read terms.
fn reopen_cost_us(records_scanned: usize, snapshot_bytes: usize) -> u64 {
    100 + 2 * records_scanned as u64 + (snapshot_bytes as u64) / 4096
}

/// The update phase driven on the kernel clock: batches arrive as a
/// Poisson process, each costing `10 + 2*updates` virtual µs.
struct UpdateRun {
    batches: u64,
    updated: u64,
    busy_us: u64,
    makespan_us: u64,
}

fn run_updates(
    wl: &Oo7Workload,
    engine: &mut StoreEngine<MemMedia>,
    cfg: Oo7BenchConfig,
) -> UpdateRun {
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut arrivals = ArrivalProcess::Poisson { rate_per_sec: 50.0 }.stream(cfg.seed ^ 0x007);
    for b in 0..cfg.update_batches {
        let offset = arrivals.next().expect("stream is infinite");
        queue.schedule(SimTime::ZERO + offset, b);
    }
    let mut run = UpdateRun {
        batches: 0,
        updated: 0,
        busy_us: 0,
        makespan_us: 0,
    };
    let mut clock = 0u64;
    while let Some((at, b)) = queue.pop() {
        let updated = wl
            .update_batch(engine, b, STRIDE)
            .expect("engine is healthy");
        let service = 10 + 2 * updated;
        clock = clock.max(at.as_micros()) + service;
        run.batches += 1;
        run.updated += updated;
        run.busy_us += service;
    }
    run.makespan_us = clock;
    run
}

/// Power loss mid-batch: stage half an update batch uncommitted, crash
/// the medium, reopen, and demand the committed checksum back.
struct PowerLoss {
    records_scanned: usize,
    writes_replayed: usize,
    snapshot_loaded: bool,
    reopen_us: u64,
    staged_then_lost: u64,
}

fn power_loss_recovery(
    wl: &Oo7Workload,
    engine: StoreEngine<MemMedia>,
    cfg: Oo7BenchConfig,
) -> (StoreEngine<MemMedia>, PowerLoss) {
    let committed = state_checksum(&engine);
    let mut engine = engine;
    // Stage the next lane's batch but never commit it.
    let lane = (cfg.update_batches % u64::from(STRIDE)) as u32;
    engine.begin().expect("no batch is open");
    let mut staged = 0u64;
    for composite in (0..wl.config().composites).filter(|c| c % STRIDE == lane) {
        let key = format!("oo7/atomic/{composite}/0");
        let mut state = engine.get(&key).expect("loaded atomic exists").clone();
        if let Some(Value::Int(v)) = state.field_mut("x") {
            *v += 1_000;
        }
        engine.put(&key, state).expect("batch is open");
        staged += 1;
    }
    // Power fails before the commit: only synced bytes survive.
    let mut media = engine.into_media();
    media.crash();
    let engine = StoreEngine::open(
        media,
        StoreConfig {
            compact_wal_bytes: compact_threshold(cfg.scale),
        },
    )
    .expect("WAL replay succeeds");
    assert_eq!(
        state_checksum(&engine),
        committed,
        "recovery must reproduce exactly the committed state"
    );
    let report = engine.recovery_report().clone();
    let loss = PowerLoss {
        records_scanned: report.records_scanned,
        writes_replayed: report.writes_replayed,
        snapshot_loaded: report.snapshot_loaded,
        reopen_us: reopen_cost_us(report.records_scanned, engine.snapshot_bytes()),
        staged_then_lost: staged,
    };
    (engine, loss)
}

/// The capsule-kill scenario: a guarded counter cluster takes a logged
/// update stream; a chaos plan kills its capsule and crashes its node
/// mid-stream; the [`DurableGuard`] recovers onto the backup and the
/// stream resumes. Returns the JSON section.
///
/// The plan's windows are far beyond any `apply_until` target and
/// `finish` is never called, so the injector's own stale reactivation
/// never masks the guard's recovery.
fn capsule_kill_section(seed: u64) -> String {
    let mut engine = Engine::new(seed);
    engine
        .behaviours_mut()
        .register("counter", CounterBehaviour::default);
    let home = engine.add_node(SyntaxId::Binary);
    let backup = engine.add_node(SyntaxId::Binary);
    let client = engine.add_node(SyntaxId::Binary);
    let home_capsule = engine.add_capsule(home).expect("fresh node");
    let backup_capsule = engine.add_capsule(backup).expect("fresh node");
    let cluster = engine
        .add_cluster(home, home_capsule)
        .expect("fresh capsule");
    let (_, refs) = engine
        .create_object(
            home,
            home_capsule,
            cluster,
            "part",
            "counter",
            CounterBehaviour::initial_state(),
            1,
        )
        .expect("fresh cluster");
    let interface = refs[0].interface;
    let mut infra = OdpInfra::new();
    infra
        .publish(&engine, interface)
        .expect("interface is live");
    let mut guard = DurableGuard::new(
        "oo7",
        (home, home_capsule, cluster),
        (backup, backup_capsule),
        vec![interface],
    );
    let mut store =
        StoreEngine::open(MemMedia::new(), StoreConfig::default()).expect("fresh medium");
    let mut proxy = TransparentProxy::new(
        client,
        interface,
        TransparencySet::none().with(Transparency::Relocation),
    );

    bus::set_enabled(true);
    let epoch = engine.sim().now();
    let kill_at = SimDuration::from_millis(40);
    let beyond_horizon = SimDuration::from_secs(300);
    let home_idx = engine.sim_node(home).expect("home is simulated");
    let plan = FaultPlan::new()
        .with(
            kill_at,
            FaultKind::CapsuleKill {
                node: home,
                capsule: home_capsule,
                cluster,
                down_for: beyond_horizon,
            },
        )
        .with(
            kill_at,
            FaultKind::CrashRestart {
                node: home_idx,
                down_for: beyond_horizon,
            },
        );
    let mut injector = FaultInjector::new(plan, epoch);

    const OPS: u64 = 24;
    let mut expected = 0i64;
    let mut failed_at_op = None;
    let mut mttr_us = 0u64;
    let mut replayed = 0u64;
    for i in 0..OPS {
        injector.apply_until(&mut engine, epoch + SimDuration::from_millis(3 * (i + 1)));
        let k = i as i64 + 1;
        let args = Value::record([("k", Value::Int(k))]);
        // Write-ahead: the op is in the durable log before it is issued,
        // so a kill at any later instant cannot lose it.
        guard.log_op(&mut store, interface, "Add", &args);
        expected += k;
        let call = proxy.call(&mut engine, &mut infra, "Add", &args);
        if i == 4 {
            // Checkpoint early: everything after this instant is covered
            // only by the write-ahead op log.
            guard
                .checkpoint_now(&mut engine, &mut store)
                .expect("home is still alive");
        }
        if call.is_err() {
            assert!(failed_at_op.is_none(), "one kill, one detection");
            failed_at_op = Some(i);
            let killed_at = injector.applied()[0].injected_at;
            guard
                .recover(&mut engine, &mut infra, &mut store)
                .expect("durable recovery succeeds");
            mttr_us = engine.sim().now().as_micros() - killed_at.as_micros();
            replayed = guard.replayed();
            // The interrupted op was replayed from the log; the stream
            // resumes against the backup on the next iteration.
        }
    }
    let failed_at_op = failed_at_op.expect("the kill interrupts the stream");
    let t = proxy
        .call(
            &mut engine,
            &mut infra,
            "Get",
            &Value::record::<&str, _>([]),
        )
        .expect("recovered service answers");
    let observed = t
        .results
        .field("n")
        .and_then(Value::as_int)
        .expect("counter state is typed");
    assert_eq!(
        observed, expected,
        "zero committed updates lost across the capsule kill"
    );
    let lost = bus::counter("failure.lost_updates");
    assert_eq!(lost, 0, "durable recovery records a zero loss window");
    assert!(mttr_us > 0, "recovery consumed virtual time");
    bus::set_enabled(false);
    println!(
        "capsule kill at op {failed_at_op}: recovered in {mttr_us}us virtual, \
         {replayed} ops replayed, sum {observed} (expected {expected})"
    );
    format!(
        "{{\"ops\":{OPS},\"killed_at_op\":{failed_at_op},\"mttr_virtual_us\":{mttr_us},\
         \"replayed_ops\":{replayed},\"recoveries\":{},\"lost_updates\":{lost},\
         \"sum_expected\":{expected},\"sum_observed\":{observed}}}",
        guard.recoveries()
    )
}

/// Runs the full suite and returns the `BENCH_oo7.json` document.
///
/// # Panics
///
/// If recovery loses a committed update (checksum or counter mismatch),
/// or if any stored object fails schema validation after recovery.
pub fn run_suite(cfg: Oo7BenchConfig) -> String {
    // A million object writes would otherwise accumulate a million
    // events; this suite is about the store, not the bus.
    bus::reset();
    let was_enabled = bus::is_enabled();
    bus::set_enabled(false);

    let (lib, scale_name) = shape(cfg.scale);
    let store_cfg = StoreConfig {
        compact_wal_bytes: compact_threshold(cfg.scale),
    };
    let mut engine = StoreEngine::open(MemMedia::new(), store_cfg).expect("fresh medium");
    let mut wl = Oo7Workload::new(lib, cfg.seed);

    let started = Instant::now();
    let load = wl.load(&mut engine).expect("engine is healthy");
    let load_us = 2 * load.objects + 50 * load.batches;
    let load_goodput = load.objects as f64 * 1e6 / load_us.max(1) as f64;
    println!(
        "loaded {} objects ({scale_name}) in {} batches, {:?} wall, {} compactions",
        load.objects,
        load.batches,
        started.elapsed(),
        engine.stats().compactions
    );
    let load_compactions = engine.stats().compactions;
    let load_log_bytes = engine.log_bytes();
    let load_snapshot_bytes = engine.snapshot_bytes();

    let started = Instant::now();
    let t1 = wl.traverse_dense(&engine);
    let t6 = wl.traverse_sparse(&engine);
    let t1_us = 1 + t1.visited / 8;
    let t6_us = 1 + t6.visited / 8;
    println!(
        "T1 dense visited {} / T6 sparse visited {} in {:?} wall",
        t1.visited,
        t6.visited,
        started.elapsed()
    );

    let started = Instant::now();
    let updates = run_updates(&wl, &mut engine, cfg);
    let update_goodput = updates.updated as f64 * 1e6 / updates.busy_us.max(1) as f64;
    println!(
        "{} update batches ({} objects) in {:?} wall",
        updates.batches,
        updates.updated,
        started.elapsed()
    );

    let exact_id = wl.config().composites / 3;
    let exact_checksum = wl.query_exact(&engine, exact_id);
    let (lo, hi) = (
        1000 + i64::from(wl.config().date_range) / 4,
        1000 + i64::from(wl.config().date_range) / 2,
    );
    let (range_matches, range_checksum) = wl.query_range(&engine, lo, hi);

    let started = Instant::now();
    let pre_crash_stats = engine.stats();
    let (mut engine, power) = power_loss_recovery(&wl, engine, cfg);
    // Re-run the interrupted lane as a proper committed batch, then
    // revalidate every object against its information-viewpoint schema.
    let redone = wl
        .update_batch(&mut engine, cfg.update_batches, STRIDE)
        .expect("engine is healthy after recovery");
    let validated = wl.validate_all(&engine);
    assert_eq!(
        validated,
        wl.config().total_objects(),
        "every object survives recovery schema-valid"
    );
    println!(
        "power loss: {} staged writes discarded, {} committed writes replayed, \
         {} redone, {:?} wall",
        power.staged_then_lost,
        power.writes_replayed,
        redone,
        started.elapsed()
    );

    let capsule = capsule_kill_section(cfg.seed);

    let stats = engine.stats();
    let final_checksum = state_checksum(&engine);
    let dense_checksum = wl.traverse_dense(&engine).checksum;

    // Publish the store gauges/counters once with the bus recording, so
    // the exporter's health block reflects this run.
    bus::set_enabled(true);
    bus::gauge_set("store.log_bytes", engine.log_bytes() as i64);
    bus::gauge_set("store.snapshot_bytes", engine.snapshot_bytes() as i64);
    bus::counter_add(
        "store.compactions",
        pre_crash_stats.compactions + stats.compactions,
    );
    bus::counter_add("store.recovery_replayed", power.writes_replayed as u64);
    print!(
        "{}",
        rmodp_observe::export::store_summary(&bus::snapshot_metrics())
    );
    bus::set_enabled(was_enabled);

    format!(
        "{{\"schema\":\"rmodp-bench-oo7/1\",\"config\":{{\"scale\":\"{scale_name}\",\"objects\":{},\"assemblies\":{},\"composites\":{},\"atomics_per_composite\":{},\"update_batches\":{},\"seed\":{},\"compact_wal_bytes\":{},\"arrival\":\"poisson 50/s\",\"cost_model\":\"load 2us/object + 50us/commit; traverse visited/8 us; update 10us + 2us/write; reopen 100us + 2us/record + snap_bytes/4096 us\"}},\"load\":{{\"objects\":{},\"batches\":{},\"virtual_us\":{load_us},\"goodput_objects_per_virtual_sec\":{load_goodput:.1},\"log_bytes\":{load_log_bytes},\"snapshot_bytes\":{load_snapshot_bytes},\"compactions\":{load_compactions}}},\"traversals\":{{\"t1_dense\":{{\"visited\":{},\"checksum\":{},\"virtual_us\":{t1_us}}},\"t6_sparse\":{{\"visited\":{},\"checksum\":{},\"virtual_us\":{t6_us}}}}},\"updates\":{{\"batches\":{},\"objects_updated\":{},\"busy_virtual_us\":{},\"makespan_virtual_us\":{},\"goodput_updates_per_virtual_sec\":{update_goodput:.1}}},\"queries\":{{\"exact\":{{\"id\":{exact_id},\"checksum\":{exact_checksum}}},\"range\":{{\"lo\":{lo},\"hi\":{hi},\"matches\":{range_matches},\"checksum\":{range_checksum}}}}},\"recovery\":{{\"power_loss\":{{\"staged_then_lost\":{},\"records_scanned\":{},\"writes_replayed\":{},\"snapshot_loaded\":{},\"mttr_virtual_us\":{},\"lost_committed_updates\":0}},\"capsule_kill\":{capsule}}},\"store\":{{\"log_bytes\":{},\"snapshot_bytes\":{},\"compactions\":{},\"commits\":{},\"recovery_replayed\":{}}},\"determinism\":{{\"state_checksum\":{final_checksum},\"dense_checksum\":{dense_checksum},\"objects_validated\":{validated}}}}}\n",
        wl.config().total_objects(),
        wl.config().assemblies(),
        wl.config().composites,
        wl.config().atomics_per_composite,
        cfg.update_batches,
        cfg.seed,
        compact_threshold(cfg.scale),
        load.objects,
        load.batches,
        t1.visited,
        t1.checksum,
        t6.visited,
        t6.checksum,
        updates.batches,
        updates.updated,
        updates.busy_us,
        updates.makespan_us,
        power.staged_then_lost,
        power.records_scanned,
        power.writes_replayed,
        power.snapshot_loaded,
        power.reopen_us,
        engine.log_bytes(),
        engine.snapshot_bytes(),
        pre_crash_stats.compactions + stats.compactions,
        pre_crash_stats.commits + stats.commits,
        stats.recovery_replayed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Oo7BenchConfig {
        Oo7BenchConfig {
            scale: 0,
            update_batches: 12,
            seed: 7,
        }
    }

    #[test]
    fn suite_is_deterministic_and_loses_nothing() {
        let a = run_suite(small());
        let b = run_suite(small());
        assert_eq!(a, b, "suite must be byte-identical across reruns");
        assert!(a.contains("\"schema\":\"rmodp-bench-oo7/1\""));
        assert!(a.contains("\"lost_committed_updates\":0"));
        assert!(a.contains("\"lost_updates\":0"));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn different_seeds_change_the_checksums() {
        let a = run_suite(small());
        let b = run_suite(Oo7BenchConfig { seed: 8, ..small() });
        assert_ne!(a, b);
    }

    #[test]
    fn capsule_kill_recovers_with_finite_mttr() {
        bus::reset();
        let section = capsule_kill_section(11);
        assert!(section.contains("\"lost_updates\":0"), "{section}");
        assert!(section.contains("\"recoveries\":1"), "{section}");
        assert!(!section.contains("\"mttr_virtual_us\":0"), "{section}");
    }
}
