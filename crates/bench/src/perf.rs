//! The performance-regression gate behind `perf_gate`.
//!
//! CI produces five deterministic benchmark artifacts (`BENCH_*.json`).
//! This module diffs each one against a checked-in baseline under
//! `tests/baselines/` at the workspace root, applying per-metric
//! tolerance bands, and renders a deterministic `PERF_report.json`
//! (schema `rmodp-perf-report/1`, documented in `EXPERIMENTS.md` §E12).
//! An out-of-tolerance metric — or one that vanished from the artifact —
//! fails the gate, so an injected slowdown fails the build instead of
//! drifting silently.
//!
//! Everything here is hand-rolled on the standard library (the build is
//! offline): a minimal JSON reader, a path flattener, and a `*`-glob
//! matcher for the tolerance rules. The reader handles exactly the JSON
//! the benchmark suites emit — objects, arrays, strings, numbers,
//! booleans, null — and rejects anything else.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order irrelevant —
/// flattened metric paths are sorted before comparison anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; benchmarks emit integers and decimal fractions only.
    Num(f64),
    /// A string (schema tags, scenario names, fault labels).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

/// Parses a JSON document.
///
/// # Errors
///
/// Malformed input, with a byte offset in the message.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes
                    .get(*pos)
                    .copied()
                    .ok_or("unterminated escape".to_owned())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            other => {
                // Multi-byte UTF-8 sequences pass through byte by byte.
                let start = *pos - 1;
                let len = utf8_len(other);
                let chunk = bytes
                    .get(start..start + len)
                    .ok_or("truncated UTF-8".to_owned())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

/// Flattens the numeric and boolean leaves of a document to sorted
/// `dotted.path[i]` → value pairs. Booleans compare as 0/1 (so a
/// flipped SLO verdict is a metric regression); strings and nulls are
/// identity, not performance, and are skipped.
pub fn flatten(doc: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(doc, String::new(), &mut out);
    out
}

fn walk(node: &Json, path: String, out: &mut BTreeMap<String, f64>) {
    match node {
        Json::Num(v) => {
            out.insert(path, *v);
        }
        Json::Bool(v) => {
            out.insert(path, if *v { 1.0 } else { 0.0 });
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, format!("{path}[{i}]"), out);
            }
        }
        Json::Obj(fields) => {
            for (key, value) in fields {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(value, sub, out);
            }
        }
        Json::Str(_) | Json::Null => {}
    }
}

/// One tolerance rule: the first band whose `*`-glob matches a metric
/// path decides how far the current value may drift from the baseline.
/// A value passes when `|current - baseline| <= max(abs, rel * |baseline|)`.
#[derive(Debug, Clone, Copy)]
pub struct Band {
    /// `*`-glob over the flattened metric path.
    pub pattern: &'static str,
    /// Relative tolerance (fraction of the baseline magnitude).
    pub rel: f64,
    /// Absolute slack, so near-zero baselines aren't impossibly strict.
    pub abs: f64,
}

/// The default bands, checked in order. Invariants (causality
/// violations, duplicate dispatches, order checksums, payload copies,
/// SLO verdicts, and the durable store's recovery-loss counters) get
/// zero tolerance; latency-shaped figures get a wide band because
/// queueing amplifies small scheduling shifts; counts get a modest one.
pub fn default_bands() -> Vec<Band> {
    vec![
        Band {
            pattern: "*violations*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*duplicate_dispatches*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*checksum*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*payload_copies*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*pass*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*lost_updates*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*lost_committed*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*split_brain*",
            rel: 0.0,
            abs: 0.0,
        },
        Band {
            pattern: "*availability*",
            rel: 0.05,
            abs: 0.01,
        },
        Band {
            pattern: "*_us*",
            rel: 0.25,
            abs: 50.0,
        },
        Band {
            pattern: "*latency*",
            rel: 0.25,
            abs: 50.0,
        },
        Band {
            pattern: "*mttr*",
            rel: 0.25,
            abs: 50.0,
        },
        Band {
            pattern: "*mean*",
            rel: 0.25,
            abs: 50.0,
        },
        Band {
            pattern: "*",
            rel: 0.10,
            abs: 2.0,
        },
    ]
}

/// `*`-glob match (no `?`, no classes — the bands don't need them).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'*') => (0..=t.len()).any(|skip| inner(&p[1..], &t[skip..])),
            Some(&c) => t.first() == Some(&c) && inner(&p[1..], &t[1..]),
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

// The zero-tolerance fallback when no band matches (unreachable with
// the default set, whose last rule is `*`).
const STRICT: Band = Band {
    pattern: "*",
    rel: 0.0,
    abs: 0.0,
};

fn band_for<'a>(bands: &'a [Band], path: &str) -> &'a Band {
    bands
        .iter()
        .find(|b| glob_match(b.pattern, path))
        .unwrap_or(&STRICT)
}

/// One compared metric that did not simply pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// Flattened metric path.
    pub path: String,
    /// Baseline value, if the baseline has the metric.
    pub baseline: Option<f64>,
    /// Current value, if the artifact has the metric.
    pub current: Option<f64>,
    /// The tolerance band pattern that decided this metric.
    pub band: &'static str,
    /// `"fail"`, `"missing"` (both fail the gate) or `"added"` (a note).
    pub status: &'static str,
}

/// The comparison result for one artifact.
#[derive(Debug, Clone)]
pub struct ArtifactReport {
    /// Artifact file name, e.g. `BENCH_workload.json`.
    pub name: String,
    /// Metrics present in both documents and compared.
    pub checked: usize,
    /// Everything that wasn't a clean pass, sorted by path.
    pub diffs: Vec<MetricDiff>,
    /// False if any diff has a failing status.
    pub pass: bool,
}

/// Compares one artifact against its baseline under the given bands.
///
/// # Errors
///
/// Either document fails to parse.
pub fn compare(
    name: &str,
    baseline: &str,
    current: &str,
    bands: &[Band],
) -> Result<ArtifactReport, String> {
    let base = flatten(&parse(baseline).map_err(|e| format!("{name} baseline: {e}"))?);
    let cur = flatten(&parse(current).map_err(|e| format!("{name} artifact: {e}"))?);

    let mut diffs = Vec::new();
    let mut checked = 0usize;
    for (path, &b) in &base {
        let band = band_for(bands, path);
        match cur.get(path) {
            None => diffs.push(MetricDiff {
                path: path.clone(),
                baseline: Some(b),
                current: None,
                band: band.pattern,
                status: "missing",
            }),
            Some(&c) => {
                checked += 1;
                let allowed = band.abs.max(band.rel * b.abs());
                if (c - b).abs() > allowed {
                    diffs.push(MetricDiff {
                        path: path.clone(),
                        baseline: Some(b),
                        current: Some(c),
                        band: band.pattern,
                        status: "fail",
                    });
                }
            }
        }
    }
    for (path, &c) in &cur {
        if !base.contains_key(path) {
            diffs.push(MetricDiff {
                path: path.clone(),
                baseline: None,
                current: Some(c),
                band: band_for(bands, path).pattern,
                status: "added",
            });
        }
    }
    diffs.sort_by(|a, z| a.path.cmp(&z.path));
    let pass = diffs.iter().all(|d| d.status == "added");
    Ok(ArtifactReport {
        name: name.to_owned(),
        checked,
        diffs,
        pass,
    })
}

/// Formats a value the way the report writes numbers: integers bare,
/// fractions via the shortest round-trip `Display` form. Deterministic
/// for a given input.
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), fmt_num)
}

/// Renders the deterministic `PERF_report.json` document (schema
/// `rmodp-perf-report/1`) over all artifact reports.
pub fn render_report(artifacts: &[ArtifactReport]) -> String {
    let pass = artifacts.iter().all(|a| a.pass);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"rmodp-perf-report/1\",\"pass\":{pass},\"artifacts\":["
    );
    for (i, a) in artifacts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let failed = a.diffs.iter().filter(|d| d.status == "fail").count();
        let missing = a.diffs.iter().filter(|d| d.status == "missing").count();
        let added = a.diffs.iter().filter(|d| d.status == "added").count();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"pass\":{},\"checked\":{},\"failed\":{failed},\"missing\":{missing},\"added\":{added},\"diffs\":[",
            a.name, a.pass, a.checked
        );
        for (j, d) in a.diffs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"status\":\"{}\",\"baseline\":{},\"current\":{},\"band\":\"{}\"}}",
                d.path,
                d.status,
                fmt_opt(d.baseline),
                fmt_opt(d.current),
                d.band
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"schema":"s/1","latency_us":{"p50":1000,"p99":4000},
        "completed":1200,"causality_violations":0,"pass":true}"#;

    #[test]
    fn parser_round_trips_the_shapes_benchmarks_emit() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x","d":true,"e":null}}"#).unwrap();
        let flat = flatten(&doc);
        assert_eq!(flat.get("a[0]"), Some(&1.0));
        assert_eq!(flat.get("a[2]"), Some(&-300.0));
        assert_eq!(flat.get("b.d"), Some(&1.0));
        assert!(!flat.contains_key("b.c"), "strings are not metrics");
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2] trailing").is_err());
    }

    #[test]
    fn identical_documents_pass() {
        let report = compare("BENCH_x.json", BASE, BASE, &default_bands()).unwrap();
        assert!(report.pass);
        assert_eq!(report.checked, 5);
        assert!(report.diffs.is_empty());
    }

    #[test]
    fn drift_within_band_passes_and_beyond_band_fails() {
        // +20% latency: inside the 25% latency band.
        let ok = BASE.replace("\"p99\":4000", "\"p99\":4800");
        assert!(compare("x", BASE, &ok, &default_bands()).unwrap().pass);
        // +100% latency: an injected slowdown must fail the gate.
        let slow = BASE.replace("\"p99\":4000", "\"p99\":8000");
        let report = compare("x", BASE, &slow, &default_bands()).unwrap();
        assert!(!report.pass);
        assert_eq!(report.diffs.len(), 1);
        assert_eq!(report.diffs[0].path, "latency_us.p99");
        assert_eq!(report.diffs[0].status, "fail");
    }

    #[test]
    fn invariants_have_zero_tolerance() {
        let bad = BASE.replace("\"causality_violations\":0", "\"causality_violations\":1");
        assert!(!compare("x", BASE, &bad, &default_bands()).unwrap().pass);
        let flipped = BASE.replace("\"pass\":true", "\"pass\":false");
        assert!(!compare("x", BASE, &flipped, &default_bands()).unwrap().pass);
    }

    #[test]
    fn missing_metric_fails_added_metric_is_a_note() {
        let missing = BASE.replace("\"completed\":1200,", "");
        let report = compare("x", BASE, &missing, &default_bands()).unwrap();
        assert!(!report.pass);
        assert_eq!(report.diffs[0].status, "missing");

        let added = BASE.replace("\"completed\":1200", "\"completed\":1200,\"extra\":7");
        let report = compare("x", BASE, &added, &default_bands()).unwrap();
        assert!(report.pass, "new metrics don't fail the gate");
        assert_eq!(report.diffs[0].status, "added");
    }

    #[test]
    fn report_is_deterministic_and_flags_failures() {
        let slow = BASE.replace("\"p99\":4000", "\"p99\":9999");
        let a = compare("BENCH_x.json", BASE, &slow, &default_bands()).unwrap();
        let b = compare("BENCH_x.json", BASE, &slow, &default_bands()).unwrap();
        let ra = render_report(&[a]);
        let rb = render_report(&[b]);
        assert_eq!(ra, rb, "report must be byte-identical across reruns");
        assert!(ra.starts_with("{\"schema\":\"rmodp-perf-report/1\",\"pass\":false"));
        assert!(ra.contains("\"path\":\"latency_us.p99\""));
        assert!(ra.contains("\"baseline\":4000,\"current\":9999"));
        // The report itself parses with the same reader.
        assert!(parse(ra.trim_end()).is_ok());
    }

    #[test]
    fn glob_bands_match_expected_paths() {
        assert!(glob_match("*_us*", "scenarios[0].report.latency_us.p50"));
        assert!(glob_match(
            "*violations*",
            "scenarios[3].causality_violations"
        ));
        assert!(glob_match("*", "anything"));
        assert!(!glob_match("*mttr*", "latency_us.p50"));
        let bands = default_bands();
        let band = band_for(&bands, "kernel.order_checksum");
        assert_eq!(band.pattern, "*checksum*");
        assert_eq!(band.rel, 0.0);
        // The durable store's recovery invariants are zero-tolerance:
        // any drift in a loss counter is a correctness bug, not noise.
        let band = band_for(&bands, "recovery.capsule_kill.lost_updates");
        assert_eq!(band.pattern, "*lost_updates*");
        assert_eq!(band.abs, 0.0);
        let band = band_for(&bands, "recovery.power_loss.lost_committed_updates");
        assert_eq!(band.pattern, "*lost_committed*");
        assert_eq!(band.rel, 0.0);
    }
}
