//! The chaos benchmark suite behind `chaos_bench`.
//!
//! [`run_suite`] drives workloads and protocols through seeded fault
//! plans and returns the full `BENCH_chaos.json` document — per-fault
//! MTTR and availability, exactly-once counters, 2PC safety under
//! partitions and crashes, and the circuit-breaker lifecycle (schema
//! `rmodp-bench-chaos/1`, documented in `EXPERIMENTS.md`). Everything
//! runs on virtual time with seeded RNGs, so the same seed produces a
//! byte-identical document — the golden test in `tests/golden.rs`
//! compares it against the committed fixture, and CI runs the binary
//! twice and compares.

use rmodp_chaos::prelude::*;
use rmodp_core::codec::SyntaxId;
use rmodp_core::contract::QosRequirement;
use rmodp_core::id::TxId;
use rmodp_core::value::Value;
use rmodp_engineering::channel::{BreakerConfig, ChannelConfig, RetryPolicy};
use rmodp_engineering::engine::CallError;
use rmodp_netsim::sim::{Addr, Sim};
use rmodp_netsim::time::SimDuration;
use rmodp_observe::{bus, oracle};
use rmodp_transactions::twopc::{Coordinator, Participant, TxOutcome, TxRequest};
use rmodp_workload::prelude::*;

use crate::{add_one, counter_rig, open};

/// Part 1: an open-loop workload riding through a generated plan with a
/// crash+restart, a partition+heal, a loss burst, and a latency spike.
/// The recovery oracle must see every fault recover.
fn workload_under_faults(seed: u64) -> String {
    let mut rig = counter_rig(seed, SyntaxId::Text);
    let channel = open(&mut rig, ChannelConfig::default());
    let server_idx = rig.engine.sim_node(rig.server).expect("server exists");
    let client_idx = rig.engine.sim_node(rig.client).expect("client exists");

    let scenario = Scenario::new(
        "chaos_open_poisson",
        seed,
        LoadModel::Open {
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 250.0,
            },
        },
    )
    .lasting(SimDuration::from_secs(2))
    .with_mix(OperationMix::new().with("Add", add_one(), 1))
    .with_contract(QosRequirement::none().with_min_availability(0.5));

    let plan = FaultPlan::generate(
        seed,
        &ChaosProfile {
            servers: vec![server_idx],
            client: client_idx,
            duration: SimDuration::from_secs(2),
            crashes: 1,
            partitions: 1,
            loss_bursts: 1,
            latency_spikes: 1,
            mean_downtime: SimDuration::from_millis(80),
        },
    );
    assert_eq!(plan.len(), 4, "profile draws one fault of each kind");

    let outcome = run_scenario_under_faults(&mut rig.engine, rig.client, channel, &scenario, plan)
        .expect("client node exists");
    println!("{}", outcome.report.render());
    println!("{}", outcome.recovery.render());

    let violations = oracle::verify_causality(&bus::snapshot_events()).len();
    assert_eq!(violations, 0, "chaos workload violated causality");
    assert_eq!(outcome.faults.len(), 4, "all four faults were injected");
    assert!(
        outcome.faults.iter().all(|f| f.cleared_at.is_some()),
        "every fault window closed"
    );
    assert!(
        outcome.recovery.clean(),
        "recovery oracle unclean:\n{}",
        outcome.recovery.render()
    );
    assert!(outcome.report.pass, "{}", outcome.report.render());

    format!(
        "{{\"causality_violations\":{violations},\"recovery\":{},\"report\":{}}}",
        outcome.recovery.to_json(),
        outcome.report.to_json()
    )
}

/// Part 2: synchronous reliable calls through a loss burst and a
/// crash+restart. Retransmissions may deliver the same request twice;
/// the server dedup cache must execute each call at most once.
fn exactly_once_under_loss(seed: u64) -> String {
    let mut rig = counter_rig(seed.wrapping_add(1), SyntaxId::Binary);
    let server_idx = rig.engine.sim_node(rig.server).expect("server exists");
    let client_idx = rig.engine.sim_node(rig.client).expect("client exists");
    // A short total deadline keeps one doomed call (against the crashed
    // server) from blocking the injector long enough to swallow the
    // later fault windows.
    let channel = open(
        &mut rig,
        ChannelConfig {
            retry: Some(RetryPolicy::reliable().with_deadline(SimDuration::from_millis(150))),
            ..ChannelConfig::default()
        },
    );

    let plan = FaultPlan::new()
        .with(
            SimDuration::from_millis(5),
            FaultKind::LossBurst {
                a: client_idx,
                b: server_idx,
                loss: 0.4,
                window: SimDuration::from_millis(250),
            },
        )
        .with(
            SimDuration::from_millis(300),
            FaultKind::CrashRestart {
                node: server_idx,
                down_for: SimDuration::from_millis(40),
            },
        )
        .with(
            // Loss on the reply direction only: requests keep arriving
            // and executing while their replies drop, so every
            // retransmission reaches the server as a genuine duplicate
            // that the dedup cache must absorb.
            SimDuration::from_millis(500),
            FaultKind::OneWayLoss {
                from: server_idx,
                to: client_idx,
                loss: 0.6,
                window: SimDuration::from_millis(300),
            },
        );
    let mut injector = FaultInjector::new(plan, rig.engine.sim().now());

    let total = 40u64;
    let mut ok = 0u64;
    let mut errors = 0u64;
    let t0 = rig.engine.sim().now();
    for i in 0..total {
        // Pace one call every 25ms so the call stream spans every fault
        // window; the injector performs whatever fell due on the way.
        // Calls themselves also consume virtual time through timeouts
        // and backoff, so a paced instant may already be in the past —
        // pace to "now" instead then, so overdue clears still apply.
        let due = t0 + SimDuration::from_millis(25 * i);
        let target = due.max(rig.engine.sim().now());
        injector.apply_until(&mut rig.engine, target);
        match rig.engine.call(channel, "Add", &add_one()) {
            Ok(t) if t.is_ok() => ok += 1,
            _ => errors += 1,
        }
    }
    injector.finish(&mut rig.engine);

    // Read the counter through a fresh call: the network is healed by
    // now, so this must succeed.
    let got = rig
        .engine
        .call(channel, "Get", &Value::record::<&str, _>([]))
        .expect("network is healed");
    let n = got.results.field("n").and_then(Value::as_int).unwrap_or(-1) as u64;

    let dedup_hits = bus::counter("engineering.dedup.hits");
    let duplicate_dispatches = bus::counter("engineering.dedup.duplicate_dispatches");
    let retries = bus::counter("engineering.retries");
    println!(
        "exactly-once: ok={ok} errors={errors} n={n} dedup_hits={dedup_hits} duplicate_dispatches={duplicate_dispatches} retries={retries}"
    );

    // At-most-once execution: the counter may exceed `ok` (a timed-out
    // call can have executed with its reply lost) but never `total`,
    // and nothing may be dispatched twice.
    assert!(
        n >= ok,
        "every acknowledged Add must be applied: n={n} ok={ok}"
    );
    assert!(n <= total, "no Add may execute twice: n={n} total={total}");
    assert_eq!(
        duplicate_dispatches, 0,
        "dedup cache let a duplicate through"
    );
    assert!(
        dedup_hits > 0,
        "reply-path loss must force duplicate arrivals for the cache to absorb"
    );

    format!(
        "{{\"calls\":{total},\"ok\":{ok},\"errors\":{errors},\"applied\":{n},\"dedup_hits\":{dedup_hits},\"duplicate_dispatches\":{duplicate_dispatches},\"retries\":{retries}}}"
    )
}

/// Part 3: 2PC safety under chaos. A committed transaction survives a
/// participant crash+restart; a partition during prepare forces abort
/// (the coordinator must never report commit).
fn twopc_under_partition_and_crash(seed: u64) -> String {
    use rmodp_netsim::topology::{LinkConfig, Topology};

    let link = LinkConfig::with_latency(SimDuration::from_millis(1));
    let mut sim = Sim::with_topology(seed.wrapping_add(2), Topology::full_mesh(link));
    let coord_node = sim.add_node();
    let coord = Addr::new(coord_node, 0);
    let mut parts = Vec::new();
    for i in 0..2 {
        let node = sim.add_node();
        let addr = Addr::new(node, 0);
        sim.attach(addr, Participant::new(format!("rm{i}")));
        parts.push(addr);
    }
    sim.attach(
        coord,
        Coordinator::new(parts.clone(), SimDuration::from_millis(20), 5),
    );

    let submit = |sim: &mut Sim, tx: u64, writes: Vec<(usize, &str, i64)>| {
        let request = TxRequest {
            writes: writes
                .into_iter()
                .map(|(p, item, v)| (p, item.to_owned(), Value::Int(v)))
                .collect(),
        };
        sim.send_from(
            Addr::EXTERNAL,
            coord,
            Coordinator::submit_payload(TxId::new(tx), &request),
        );
    };
    let outcome = |sim: &Sim, tx: u64| {
        sim.inspect::<Coordinator>(coord)
            .unwrap()
            .outcome(TxId::new(tx))
            .unwrap_or(TxOutcome::Pending)
    };
    let committed = |sim: &Sim, p: usize, item: &str| {
        sim.inspect::<Participant>(parts[p])
            .unwrap()
            .rm
            .read_committed(item)
    };

    // Transaction 1 commits cleanly.
    submit(&mut sim, 1, vec![(0, "x", 10), (1, "y", 20)]);
    sim.run_until_idle();
    assert_eq!(outcome(&sim, 1), TxOutcome::Committed);

    // Participant 1 crashes (node down, volatile state lost) and
    // restarts; the committed write must survive via the stable log.
    let p1 = parts[1];
    sim.topology_mut().crash(p1.node);
    {
        let part = sim.inspect_mut::<Participant>(p1).unwrap();
        part.rm.crash();
        part.rm.recover();
    }
    sim.topology_mut().restart(p1.node);
    let lost_commits = u64::from(committed(&sim, 1, "y") != Some(Value::Int(20)));

    // Transaction 2 starts while participant 1 is partitioned from the
    // coordinator: prepares cannot reach it, so presumed abort must win.
    sim.topology_mut().partition(coord.node, p1.node);
    submit(&mut sim, 2, vec![(0, "x", 99), (1, "y", 99)]);
    sim.run_until_idle();
    let o2 = outcome(&sim, 2);
    assert_ne!(
        o2,
        TxOutcome::Committed,
        "coordinator must not report commit across a partition during prepare"
    );
    let premature_commits = u64::from(o2 == TxOutcome::Committed);
    // The reachable participant must not expose tx 2's write either.
    assert_ne!(committed(&sim, 0, "x"), Some(Value::Int(99)));

    sim.topology_mut().heal(coord.node, p1.node);
    sim.run_until_idle();
    // After healing, a fresh transaction goes through.
    submit(&mut sim, 3, vec![(0, "x", 30), (1, "y", 31)]);
    sim.run_until_idle();
    assert_eq!(outcome(&sim, 3), TxOutcome::Committed);
    assert_eq!(committed(&sim, 1, "y"), Some(Value::Int(31)));

    println!(
        "2pc: lost_commits={lost_commits} premature_commits={premature_commits} outcome2={o2:?}"
    );
    assert_eq!(lost_commits, 0, "a committed transaction was lost");

    format!(
        "{{\"lost_commits\":{lost_commits},\"premature_commits\":{premature_commits},\"post_heal_commit\":true}}"
    )
}

/// Part 4: the circuit-breaker lifecycle. A dead server opens the
/// breaker (fail-fast), a restart plus cooldown lets a probe close it.
fn breaker_lifecycle(seed: u64) -> String {
    use rmodp_engineering::channel::BreakerPhase;

    let mut rig = counter_rig(seed.wrapping_add(3), SyntaxId::Binary);
    let server_idx = rig.engine.sim_node(rig.server).expect("server exists");
    let breaker = BreakerConfig::default();
    let cooldown = breaker.cooldown;
    let channel = open(
        &mut rig,
        ChannelConfig {
            retry: Some(RetryPolicy::one_shot()),
            breaker: Some(breaker),
            ..ChannelConfig::default()
        },
    );

    rig.engine.sim_mut().topology_mut().crash(server_idx);
    let mut timeouts = 0u64;
    let mut fast_fails = 0u64;
    for _ in 0..5 {
        match rig.engine.call(channel, "Add", &add_one()) {
            Err(CallError::Timeout { .. }) => timeouts += 1,
            Err(CallError::CircuitOpen { .. }) => fast_fails += 1,
            other => panic!("dead server produced {other:?}"),
        }
    }
    assert_eq!(
        rig.engine.breaker_phase(channel),
        Some(BreakerPhase::Open),
        "three consecutive timeouts open the breaker"
    );
    assert!(fast_fails >= 1, "open breaker fails fast");

    rig.engine.sim_mut().topology_mut().restart(server_idx);
    let resume = rig.engine.sim().now() + cooldown + SimDuration::from_millis(1);
    rig.engine.sim_mut().run_until(resume);
    let probe = rig.engine.call(channel, "Add", &add_one());
    assert!(
        probe.is_ok(),
        "probe after cooldown reaches the live server"
    );
    assert_eq!(
        rig.engine.breaker_phase(channel),
        Some(BreakerPhase::Closed)
    );

    let transitions = bus::counter("engineering.breaker.transitions");
    let counted_fast_fails = bus::counter("engineering.breaker.fast_fails");
    println!("breaker: timeouts={timeouts} fast_fails={fast_fails} transitions={transitions}");
    assert!(
        transitions >= 3,
        "closed->open, open->half-open, half-open->closed all observed"
    );

    format!(
        "{{\"timeouts\":{timeouts},\"fast_fails\":{counted_fast_fails},\"transitions\":{transitions},\"closed_after_probe\":true}}"
    )
}

/// Runs all four parts against `seed` and returns the
/// `BENCH_chaos.json` document. Per-part summaries go to stdout.
///
/// # Panics
///
/// If any recovery, exactly-once, 2PC-safety, or breaker-lifecycle
/// invariant fails.
pub fn run_suite(seed: u64) -> String {
    let workload = workload_under_faults(seed);
    let exactly_once = exactly_once_under_loss(seed);
    let twopc = twopc_under_partition_and_crash(seed);
    let breaker = breaker_lifecycle(seed);

    format!(
        "{{\"schema\":\"rmodp-bench-chaos/1\",\"seed\":{seed},\"workload\":{workload},\"exactly_once\":{exactly_once},\"twopc\":{twopc},\"breaker\":{breaker}}}\n"
    )
}
