//! Golden artifact tests: the benchmark suites must reproduce the
//! committed fixtures byte-for-byte.
//!
//! The fixtures under `tests/fixtures/` at the workspace root pin the
//! scheduling, RNG streams, and payload sharing to exact behaviour:
//! same seed → same events in the same order → the same JSON document,
//! byte for byte. They were regenerated when the profiling PR landed —
//! log-bucketed histograms changed quantile values, and the admission /
//! call-span instrumentation added events to the streams the oracles
//! count.

fn fixture(name: &str) -> String {
    let path = format!("{}/../../tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn workload_suite_reproduces_committed_artifact() {
    let golden = fixture("BENCH_workload.json");
    let produced =
        rmodp_bench::workload_suite::run_suite(rmodp_bench::workload_suite::DEFAULT_SEED);
    assert_eq!(
        produced, golden,
        "BENCH_workload.json drifted from the committed fixture"
    );
}

#[test]
fn chaos_suite_reproduces_committed_artifact() {
    let golden = fixture("BENCH_chaos.json");
    let produced = rmodp_bench::chaos_suite::run_suite(4_242);
    assert_eq!(
        produced, golden,
        "BENCH_chaos.json drifted from the committed fixture"
    );
}

#[test]
fn failover_suite_reproduces_committed_artifact() {
    let golden = fixture("BENCH_failover.json");
    let produced = rmodp_bench::failover_suite::run_suite(4_242);
    assert_eq!(
        produced, golden,
        "BENCH_failover.json drifted from the committed fixture"
    );
}

#[test]
fn mechanisms_suite_is_deterministic() {
    let first = rmodp_bench::mechanisms::run_suite(rmodp_bench::mechanisms::DEFAULT_SEED);
    let second = rmodp_bench::mechanisms::run_suite(rmodp_bench::mechanisms::DEFAULT_SEED);
    assert_eq!(first, second, "mechanisms suite must be byte-identical");
    assert!(first.starts_with("{\"schema\":\"rmodp-bench-mechanisms/1\""));
}
