//! Benchmarks for the ODP functions (EXPERIMENTS.md rows E1–E4): policy
//! engine, schema checking, trader scaling, transactions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rmodp_bank as bank;
use rmodp_bench::populated_trader;
use rmodp_core::id::InterfaceId;
use rmodp_core::value::Value;
use rmodp_enterprise::prelude::*;
use rmodp_netsim::sim::{Addr, Sim};
use rmodp_netsim::time::SimDuration;
use rmodp_netsim::topology::{LinkConfig, Topology};
use rmodp_trader::{Federation, ImportRequest};
use rmodp_transactions::rm::{ResourceManager, TxProfile};
use rmodp_transactions::twopc::{Coordinator, Participant, TxRequest};

/// E1 — policy decisions as the policy set grows.
fn e1_policy_engine(c: &mut Criterion) {
    // Timed loops run with the observability bus off (see rmodp_bench::capture).
    rmodp_observe::bus::set_enabled(false);
    let mut group = c.benchmark_group("e1_policy_engine");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(40);
    for policies in [5usize, 50, 200] {
        let roster = bank::enterprise::BranchRoster::default();
        let community = bank::enterprise::branch_community(&roster);
        let mut engine = bank::enterprise::branch_policies();
        for i in 0..policies.saturating_sub(5) {
            engine
                .adopt(Policy::permission(
                    format!("extra-{i}"),
                    "auditor",
                    format!("audit-{i}"),
                ))
                .unwrap();
        }
        let request =
            ActionRequest::new(roster.customers[0], "withdraw").with_context(Value::record([
                ("amount", Value::Int(100)),
                ("withdrawn_today", Value::Int(100)),
            ]));
        group.bench_with_input(BenchmarkId::new("decide", policies), &policies, |b, _| {
            b.iter(|| engine.decide(&community, &request).unwrap());
        });
    }
    group.finish();
}

/// E2 — dynamic schema application constrained by invariants (the §4
/// mechanism on the hot path of every bank operation).
fn e2_schema_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_schema_checking");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(40);
    let withdraw = bank::information::withdraw_schema();
    let invariants = bank::information::account_invariants();
    let state = bank::information::account_schema(100_000).initial().clone();
    let args = Value::record([("x", Value::Int(50))]);
    group.bench_function("withdraw_checked", |b| {
        b.iter(|| withdraw.apply_checked(&state, &args, &invariants).unwrap());
    });
    group.bench_function("withdraw_unchecked", |b| {
        b.iter(|| withdraw.apply(&state, &args).unwrap());
    });
    // The rejected path (invariant violation) costs the same work.
    let maxed = Value::record([
        ("balance", Value::Int(100_000)),
        ("withdrawn_today", Value::Int(500)),
    ]);
    group.bench_function("withdraw_rejected", |b| {
        b.iter(|| {
            withdraw
                .apply_checked(&maxed, &args, &invariants)
                .unwrap_err()
        });
    });
    group.finish();
}

/// E3 — trader import latency vs offer count, constraint complexity and
/// federation hops.
fn e3_trader_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_trader_scaling");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    for offers in [10usize, 100, 1_000, 10_000] {
        let mut trader = populated_trader(offers);
        let request = ImportRequest::new("Printer")
            .constraint("ppm >= 50 and floor <= 6")
            .unwrap()
            .prefer_min("queue_len")
            .unwrap();
        group.bench_with_input(BenchmarkId::new("import", offers), &offers, |b, _| {
            b.iter(|| trader.import(&request, None));
        });
    }
    // Constraint complexity at a fixed corpus.
    let mut trader = populated_trader(1_000);
    for (name, constraint) in [
        ("simple", "ppm >= 50"),
        ("medium", "ppm >= 50 and floor <= 6 and colour"),
        (
            "complex",
            "(ppm >= 50 or queue_len <= 3) and floor <= 6 and not (colour and ppm < 60)",
        ),
    ] {
        let request = ImportRequest::new("Printer")
            .constraint(constraint)
            .unwrap();
        group.bench_function(BenchmarkId::new("constraint", name), |b| {
            b.iter(|| trader.import(&request, None));
        });
    }
    // Federation hops.
    for hops in [0usize, 2, 4] {
        let mut federation = Federation::new();
        for i in 0..5 {
            federation.add_trader(format!("t{i}")).unwrap();
            for j in 0..200 {
                federation
                    .trader_mut(&format!("t{i}"))
                    .unwrap()
                    .export(
                        "Printer",
                        InterfaceId::new((i * 200 + j) as u64 + 1),
                        Value::record([("ppm", Value::Int((j % 90) as i64 + 10))]),
                    )
                    .unwrap();
            }
            if i > 0 {
                federation
                    .link(&format!("t{}", i - 1), &format!("t{i}"))
                    .unwrap();
            }
        }
        let request = ImportRequest::new("Printer")
            .constraint("ppm >= 70")
            .unwrap();
        group.bench_with_input(BenchmarkId::new("federated", hops), &hops, |b, &hops| {
            b.iter(|| {
                federation
                    .import_federated("t0", &request, None, hops)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// E4 — transactions: local commit throughput vs conflict rate, and
/// distributed 2PC latency vs participant count.
fn e4_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_transactions");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);

    // Local: N sequential transactions over a keyspace whose size sets the
    // conflict (and deadlock-retry) probability when interleaved pairwise.
    for keys in [1_000usize, 10] {
        group.bench_with_input(
            BenchmarkId::new("local_commits", format!("keyspace_{keys}")),
            &keys,
            |b, &keys| {
                b.iter(|| {
                    let mut rm = ResourceManager::new("bench", TxProfile::acid());
                    for i in 0..100u64 {
                        let tx = rm.begin();
                        let k1 = format!("k{}", i as usize % keys);
                        let k2 = format!("k{}", (i as usize + 1) % keys);
                        rm.write(tx, &k1, Value::Int(i as i64)).unwrap();
                        if k1 != k2 {
                            rm.write(tx, &k2, Value::Int(i as i64)).unwrap();
                        }
                        rm.commit(tx).unwrap();
                    }
                    rm
                });
            },
        );
    }

    // Distributed: one 2PC round trip, by participant count.
    for participants in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("two_phase_commit", participants),
            &participants,
            |b, &n| {
                b.iter(|| {
                    let link = LinkConfig::with_latency(SimDuration::from_millis(1));
                    let mut sim = Sim::with_topology(9, Topology::full_mesh(link));
                    let coord_node = sim.add_node();
                    let coord = Addr::new(coord_node, 0);
                    let mut parts = Vec::new();
                    for i in 0..n {
                        let node = sim.add_node();
                        let addr = Addr::new(node, 0);
                        sim.attach(addr, Participant::new(format!("rm{i}")));
                        parts.push(addr);
                    }
                    sim.attach(
                        coord,
                        Coordinator::new(parts, SimDuration::from_millis(50), 3),
                    );
                    let request = TxRequest {
                        writes: (0..n).map(|p| (p, "x".to_owned(), Value::Int(1))).collect(),
                    };
                    let payload =
                        Coordinator::submit_payload(rmodp_core::id::TxId::new(1), &request);
                    sim.send_from(Addr::EXTERNAL, coord, payload);
                    sim.run_until_idle();
                    sim.now()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    functions,
    e1_policy_engine,
    e2_schema_checking,
    e3_trader_scaling,
    e4_transactions
);
criterion_main!(functions);
