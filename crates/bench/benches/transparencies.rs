//! Benchmarks for the transparency layer (EXPERIMENTS.md rows E5–E6):
//! per-transparency invocation overhead, relocation recovery cost,
//! replication fan-out, and stream throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rmodp_bench::capture::{capture_metrics, mechanism_report};
use rmodp_bench::{add_one, counter_rig, open};
use rmodp_core::codec::SyntaxId;
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::engine::Engine;
use rmodp_functions::group::ReplicationPolicy;
use rmodp_transparency::proxy::{migrate_transparently, OdpInfra};
use rmodp_transparency::replication::replicated_counters;
use rmodp_transparency::{Transparency, TransparencySet, TransparentProxy};

/// E5a — invocation cost through the proxy as transparencies accrue, vs
/// the bare channel baseline.
fn e5_transparency_ablation(c: &mut Criterion) {
    // Timed loops run with the observability bus off; the E5d pass below
    // re-enables it for the per-mechanism metric capture.
    rmodp_observe::bus::set_enabled(false);
    let mut group = c.benchmark_group("e5_transparency_ablation");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);

    // Baseline: a raw channel, no proxy.
    let mut rig = counter_rig(10, SyntaxId::Binary);
    let ch = open(&mut rig, ChannelConfig::default());
    group.bench_function("bare_channel", |b| {
        b.iter(|| rig.engine.call(ch, "Add", &add_one()).unwrap());
    });

    let selections: [(&str, TransparencySet); 3] = [
        (
            "access_only",
            TransparencySet::none().with(Transparency::Access),
        ),
        (
            "plus_relocation",
            TransparencySet::none().with(Transparency::Relocation),
        ),
        ("all_eight", TransparencySet::all()),
    ];
    for (name, selection) in selections {
        let mut rig = counter_rig(11, SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        infra.publish(&rig.engine, rig.interface).unwrap();
        let mut proxy = TransparentProxy::new(rig.client, rig.interface, selection);
        group.bench_function(BenchmarkId::new("proxy", name), |b| {
            b.iter(|| {
                proxy
                    .call(&mut rig.engine, &mut infra, "Add", &add_one())
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// E5b — the §9.2 relocation recovery path: a migration followed by one
/// masked call (stale detection + relocator requery + reconnect +
/// replay), vs a steady-state call.
fn e5_relocation_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_relocation_recovery");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(20);
    group.bench_function("migrate_then_masked_call", |b| {
        b.iter(|| {
            let mut rig = counter_rig(12, SyntaxId::Binary);
            let mut infra = OdpInfra::new();
            infra.publish(&rig.engine, rig.interface).unwrap();
            let mut proxy = TransparentProxy::new(
                rig.client,
                rig.interface,
                TransparencySet::none().with(Transparency::Relocation),
            );
            proxy
                .call(&mut rig.engine, &mut infra, "Add", &add_one())
                .unwrap();
            let new_node = rig.engine.add_node(SyntaxId::Binary);
            let new_capsule = rig.engine.add_capsule(new_node).unwrap();
            migrate_transparently(
                &mut rig.engine,
                &mut infra,
                rig.home,
                (new_node, new_capsule),
                &[rig.interface],
            )
            .unwrap();
            proxy
                .call(&mut rig.engine, &mut infra, "Add", &add_one())
                .unwrap()
        });
    });
    group.bench_function("steady_state_call", |b| {
        let mut rig = counter_rig(13, SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        infra.publish(&rig.engine, rig.interface).unwrap();
        let mut proxy = TransparentProxy::new(
            rig.client,
            rig.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        b.iter(|| {
            proxy
                .call(&mut rig.engine, &mut infra, "Add", &add_one())
                .unwrap()
        });
    });
    group.finish();
}

/// E5c — replication fan-out: update cost vs replica count under active
/// and primary-copy policies (the DESIGN.md ablation #5).
fn e5_replication_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_replication_fanout");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    for (policy_name, policy) in [
        ("active", ReplicationPolicy::Active),
        ("primary_copy", ReplicationPolicy::PrimaryCopy),
    ] {
        for replicas in [1usize, 3, 5] {
            let mut engine = Engine::new(14);
            engine
                .behaviours_mut()
                .register("counter", CounterBehaviour::default);
            let client = engine.add_node(SyntaxId::Binary);
            let mut infra = OdpInfra::new();
            let (mut svc, _) =
                replicated_counters(&mut engine, &mut infra, client, policy, replicas).unwrap();
            group.bench_function(
                BenchmarkId::new(format!("update_{policy_name}"), replicas),
                |b| {
                    b.iter(|| {
                        svc.update(&mut engine, &mut infra, "Add", &add_one())
                            .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

/// E6 — stream throughput: flow items delivered per unit of virtual time
/// vs payload size (§5.1's multimedia motivation).
fn e6_stream_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_stream_throughput");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    for payload in [16usize, 160, 1_600] {
        group.bench_with_input(
            BenchmarkId::new("frames_1000", payload),
            &payload,
            |b, &payload| {
                b.iter(|| {
                    let mut rig = counter_rig(15, SyntaxId::Binary);
                    let ch = open(&mut rig, ChannelConfig::default());
                    let item = Value::Blob(vec![0u8; payload]);
                    for _ in 0..1_000 {
                        rig.engine.send_flow(ch, "increments", &item).unwrap();
                    }
                    rig.engine.run_until_idle();
                    rig.engine.sim().metrics().bytes_delivered
                });
            },
        );
    }
    group.finish();
}

/// E5d — per-mechanism metric capture: one instrumented pass of each E5
/// workload with the observability bus on, reporting which mechanisms
/// fired (calls, marshals, channel hops, retries, migrations, replica
/// fan-out) and their sim-time latency quantiles, next to the wall-clock
/// numbers the timed groups produce.
fn e5_mechanism_metrics(_c: &mut Criterion) {
    let (_, registry) = capture_metrics(|| {
        let mut rig = counter_rig(11, SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        infra.publish(&rig.engine, rig.interface).unwrap();
        let mut proxy = TransparentProxy::new(rig.client, rig.interface, TransparencySet::all());
        for _ in 0..100 {
            proxy
                .call(&mut rig.engine, &mut infra, "Add", &add_one())
                .unwrap();
        }
    });
    println!(
        "{}",
        mechanism_report("proxy_all_eight_100_calls", &registry)
    );

    let (_, registry) = capture_metrics(|| {
        let mut rig = counter_rig(12, SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        infra.publish(&rig.engine, rig.interface).unwrap();
        let mut proxy = TransparentProxy::new(
            rig.client,
            rig.interface,
            TransparencySet::none().with(Transparency::Relocation),
        );
        proxy
            .call(&mut rig.engine, &mut infra, "Add", &add_one())
            .unwrap();
        let new_node = rig.engine.add_node(SyntaxId::Binary);
        let new_capsule = rig.engine.add_capsule(new_node).unwrap();
        migrate_transparently(
            &mut rig.engine,
            &mut infra,
            rig.home,
            (new_node, new_capsule),
            &[rig.interface],
        )
        .unwrap();
        proxy
            .call(&mut rig.engine, &mut infra, "Add", &add_one())
            .unwrap();
    });
    println!(
        "{}",
        mechanism_report("migrate_then_masked_call", &registry)
    );

    let (_, registry) = capture_metrics(|| {
        let mut engine = Engine::new(14);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let client = engine.add_node(SyntaxId::Binary);
        let mut infra = OdpInfra::new();
        let (mut svc, _) = replicated_counters(
            &mut engine,
            &mut infra,
            client,
            ReplicationPolicy::Active,
            5,
        )
        .unwrap();
        for _ in 0..20 {
            svc.update(&mut engine, &mut infra, "Add", &add_one())
                .unwrap();
        }
    });
    println!(
        "{}",
        mechanism_report("active_replication_5x20_updates", &registry)
    );
}

criterion_group!(
    transparencies,
    e5_transparency_ablation,
    e5_relocation_recovery,
    e5_replication_fanout,
    e6_stream_throughput,
    e5_mechanism_metrics
);
criterion_main!(transparencies);
