//! Benchmarks regenerating the paper's five figures as measured
//! workloads (see EXPERIMENTS.md, rows F1–F5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use rmodp_bank as bank;
use rmodp_bench::{add_one, counter_rig, open, wide_signature};
use rmodp_computational::signature::InterfaceSignature;
use rmodp_computational::subtype::is_operational_subtype;
use rmodp_core::codec::SyntaxId;
use rmodp_core::value::Value;
use rmodp_engineering::behaviour::CounterBehaviour;
use rmodp_engineering::channel::ChannelConfig;
use rmodp_engineering::engine::Engine;
use rmodp_enterprise::prelude::*;
use rmodp_typerepo::TypeRepository;

/// F1 — Figure 1: the five-viewpoint specification pipeline for the bank,
/// from requirements (enterprise) to implementation (technology), as one
/// measured unit of work.
fn fig1_viewpoint_pipeline(c: &mut Criterion) {
    // Timed loops run with the observability bus off (see rmodp_bench::capture).
    rmodp_observe::bus::set_enabled(false);
    let mut group = c.benchmark_group("fig1_viewpoint_pipeline");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("bank_five_viewpoints", |b| {
        b.iter(|| {
            // Enterprise: community + policies + one decision.
            let roster = bank::enterprise::BranchRoster::default();
            let community = bank::enterprise::branch_community(&roster);
            let mut policies = bank::enterprise::branch_policies();
            let request =
                ActionRequest::new(roster.customers[0], "withdraw").with_context(Value::record([
                    ("amount", Value::Int(100)),
                    ("withdrawn_today", Value::Int(0)),
                ]));
            let decision = policies.decide(&community, &request).unwrap();
            assert!(decision.is_allowed());
            // Information: schema transition under invariants.
            let mut account = bank::information::new_account(1, 1_000);
            account
                .apply(
                    &bank::information::withdraw_schema(),
                    Value::record([("x", Value::Int(100))]),
                )
                .unwrap();
            // Computational: the Figure 3 subtype check.
            is_operational_subtype(
                &bank::computational::bank_manager(),
                &bank::computational::bank_teller(),
            )
            .unwrap();
            // Engineering + technology: deploy and invoke once.
            let mut engine = Engine::new(1);
            let dep = bank::deploy_branch(&mut engine, SyntaxId::Binary).unwrap();
            let client = engine.add_node(SyntaxId::Text);
            let ch = engine
                .open_channel(client, dep.manager.interface, ChannelConfig::default())
                .unwrap();
            let t = engine
                .call(
                    ch,
                    "CreateAccount",
                    &Value::record([("c", Value::Int(1)), ("opening", Value::Int(1))]),
                )
                .unwrap();
            assert!(t.is_ok());
        });
    });
    group.finish();
}

/// F2 — Figure 2: operation invocation through the branch's interfaces —
/// remote (cross-node, marshalled) vs local (same node, no network).
fn fig2_operation_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_operation_invocation");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);

    let mut rig = counter_rig(2, SyntaxId::Text);
    let ch = open(&mut rig, ChannelConfig::default());
    group.bench_function("remote_marshalled", |b| {
        b.iter(|| rig.engine.call(ch, "Add", &add_one()).unwrap());
    });

    let mut rig2 = counter_rig(3, SyntaxId::Binary);
    let ch2 = open(&mut rig2, ChannelConfig::default());
    group.bench_function("remote_same_syntax", |b| {
        b.iter(|| rig2.engine.call(ch2, "Add", &add_one()).unwrap());
    });

    let mut rig3 = counter_rig(4, SyntaxId::Binary);
    group.bench_function("local_bypass", |b| {
        b.iter(|| {
            rig3.engine
                .invoke_local(rig3.server, rig3.interface, "Add", &add_one())
                .unwrap()
        });
    });
    group.finish();
}

/// F3 — Figure 3: structural subtype checking and lattice derivation as
/// the signatures widen.
fn fig3_subtype_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_subtype_checking");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    for ops in [4usize, 16, 64] {
        let sup = wide_signature("Sup", ops, 4);
        let mut sub = wide_signature("Sub", ops, 4);
        sub = sub.announcement("extra", [("x", rmodp_core::dtype::DataType::Int)]);
        group.bench_with_input(BenchmarkId::new("check", ops), &ops, |b, _| {
            b.iter(|| is_operational_subtype(&sub, &sup).unwrap());
        });
    }
    for types in [4usize, 12] {
        group.bench_with_input(
            BenchmarkId::new("repository_fixpoint", types),
            &types,
            |b, &types| {
                b.iter(|| {
                    let mut repo = TypeRepository::new();
                    for i in 0..types {
                        repo.register(InterfaceSignature::Operational(wide_signature(
                            &format!("T{i}"),
                            i + 1,
                            2,
                        )))
                        .unwrap();
                    }
                    repo
                });
            },
        );
    }
    group.finish();
}

/// F4 — Figure 4: channel composition ablation — what each stub/binder
/// layer costs per invocation.
fn fig4_channel_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_channel_ablation");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    let configs: [(&str, ChannelConfig); 4] = [
        ("bare", ChannelConfig::default()),
        (
            "marshalling",
            ChannelConfig {
                wire_syntax: SyntaxId::Text,
                ..ChannelConfig::default()
            },
        ),
        (
            "marshalling+sequence",
            ChannelConfig {
                wire_syntax: SyntaxId::Text,
                sequence: true,
                ..ChannelConfig::default()
            },
        ),
        (
            "marshalling+sequence+audit",
            ChannelConfig {
                wire_syntax: SyntaxId::Text,
                sequence: true,
                audit: true,
                ..ChannelConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        let mut rig = counter_rig(5, SyntaxId::Binary);
        let ch = open(&mut rig, config);
        group.bench_function(name, |b| {
            b.iter(|| rig.engine.call(ch, "Add", &add_one()).unwrap());
        });
    }
    group.finish();
}

/// F5 — Figure 5: node population (capsules → clusters → objects) and the
/// structuring-rule validator at scale.
fn fig5_node_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_node_structure");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    for objects in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("populate", objects), &objects, |b, &n| {
            b.iter(|| {
                let mut engine = Engine::new(6);
                engine
                    .behaviours_mut()
                    .register("counter", CounterBehaviour::default);
                let node = engine.add_node(SyntaxId::Binary);
                let capsule = engine.add_capsule(node).unwrap();
                for _ in 0..(n / 10).max(1) {
                    let cluster = engine.add_cluster(node, capsule).unwrap();
                    for _ in 0..10.min(n) {
                        engine
                            .create_object(
                                node,
                                capsule,
                                cluster,
                                "o",
                                "counter",
                                CounterBehaviour::initial_state(),
                                1,
                            )
                            .unwrap();
                    }
                }
                engine
            });
        });
        // Validation cost over a populated node.
        let mut engine = Engine::new(7);
        engine
            .behaviours_mut()
            .register("counter", CounterBehaviour::default);
        let node = engine.add_node(SyntaxId::Binary);
        let capsule = engine.add_capsule(node).unwrap();
        for _ in 0..(objects / 10).max(1) {
            let cluster = engine.add_cluster(node, capsule).unwrap();
            for _ in 0..10.min(objects) {
                engine
                    .create_object(
                        node,
                        capsule,
                        cluster,
                        "o",
                        "counter",
                        CounterBehaviour::initial_state(),
                        1,
                    )
                    .unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("validate", objects), &objects, |b, _| {
            b.iter(|| {
                let v = engine.validate_node(node).unwrap();
                assert!(v.is_empty());
            });
        });
    }
    group.finish();
}

/// F5b — the §6.2 structuring ablation: migration cost as the cluster
/// grows (clusters are the unit of migration, so one-object clusters
/// migrate cheaply but need more migrations; many-object clusters
/// amortise bookkeeping but move more state).
fn fig5_migration_vs_cluster_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_migration_vs_cluster_size");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    for objects in [1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("migrate_cluster", objects),
            &objects,
            |b, &n| {
                b.iter(|| {
                    let mut engine = Engine::new(8);
                    engine
                        .behaviours_mut()
                        .register("counter", CounterBehaviour::default);
                    let node = engine.add_node(SyntaxId::Binary);
                    let capsule = engine.add_capsule(node).unwrap();
                    let cluster = engine.add_cluster(node, capsule).unwrap();
                    for _ in 0..n {
                        engine
                            .create_object(
                                node,
                                capsule,
                                cluster,
                                "o",
                                "counter",
                                CounterBehaviour::initial_state(),
                                1,
                            )
                            .unwrap();
                    }
                    let target = engine.add_node(SyntaxId::Binary);
                    let target_capsule = engine.add_capsule(target).unwrap();
                    engine
                        .migrate_cluster(node, capsule, cluster, target, target_capsule)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    figures,
    fig1_viewpoint_pipeline,
    fig2_operation_invocation,
    fig3_subtype_checking,
    fig4_channel_ablation,
    fig5_node_structure,
    fig5_migration_vs_cluster_size
);
criterion_main!(figures);
