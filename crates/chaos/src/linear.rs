//! Group-consistency oracle: auditing quorum replication from the
//! event stream.
//!
//! The quorum machinery (`rmodp-functions` views + elections,
//! `rmodp-transparency` replication) *claims* three safety properties:
//! at most one leader per epoch, no committed update ever lost across a
//! view change, and reads that only ever observe committed state. The
//! [`GroupOracle`] checks those claims **independently** — it never
//! inspects replica state, only the observe event stream the layers
//! already emit (`view_change`, `quorum_commit`, `fenced_write`,
//! `replica_read`), replayed in virtual-time order per group:
//!
//! - **epochs strictly increase** — a `view_change` that does not raise
//!   the group's epoch is an `epoch_regression`;
//! - **≤ 1 leader per epoch** — two `view_change`s naming different
//!   leaders for one `(group, epoch)`, or a `quorum_commit` stamped
//!   with an epoch older than the installed one (a deposed leader that
//!   still managed to commit), count as `split_brain`;
//! - **committed updates survive** — every view change carries the new
//!   leader's commit watermark; a watermark below the highest commit
//!   previously observed for the group means a committed update was
//!   dropped by the failover (`lost_committed`);
//! - **reads are committed-only** — a `replica_read` reporting a commit
//!   watermark above anything ever committed is a `dirty_read`.
//!
//! Fenced writes are *counted*, not flagged: a fenced write is the
//! mechanism working (a stale front was refused), and chaos scenarios
//! assert the count is non-zero under partition-during-commit.

use std::collections::BTreeMap;

use rmodp_observe::{bus, Event, EventKind};

/// Extracts the integer after `key=` in a `k=v`-style detail string.
fn field(detail: &str, key: &str) -> Option<u64> {
    detail.split_whitespace().find_map(|tok| {
        tok.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .and_then(|v| v.parse().ok())
    })
}

/// Per-group audit of the replicated-group safety invariants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupConsistency {
    /// The audited group id.
    pub group: u64,
    /// View changes observed.
    pub view_changes: u64,
    /// Highest epoch installed.
    pub max_epoch: u64,
    /// Quorum commits observed.
    pub commits: u64,
    /// Highest committed sequence number (from commits or watermarks).
    pub max_committed: u64,
    /// Stale-epoch writes and reads refused by replica fencing.
    pub fenced_writes: u64,
    /// Linearizable reads served.
    pub reads: u64,
    /// View changes that failed to raise the epoch.
    pub epoch_regressions: u64,
    /// Evidence of two leaders in one epoch (conflicting `view_change`
    /// leaders, or a commit under a deposed epoch). Must be zero.
    pub split_brain: u64,
    /// View changes whose watermark dropped below a prior commit. Must
    /// be zero.
    pub lost_committed: u64,
    /// Reads that returned state beyond anything committed. Must be
    /// zero.
    pub dirty_reads: u64,
}

impl GroupConsistency {
    /// Whether every safety invariant held for this group.
    pub fn clean(&self) -> bool {
        self.epoch_regressions == 0
            && self.split_brain == 0
            && self.lost_committed == 0
            && self.dirty_reads == 0
    }
}

/// Replays the observe event stream and audits every replicated group
/// found in it. See the module docs for the invariants.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupOracle;

impl GroupOracle {
    /// Audits `events` (in stream order, which is virtual-time order)
    /// and returns one verdict per group, in group-id order.
    pub fn analyse(events: &[Event]) -> ConsistencyReport {
        #[derive(Default)]
        struct Track {
            verdict: GroupConsistency,
            leaders_by_epoch: BTreeMap<u64, u64>,
        }
        let mut tracks: BTreeMap<u64, Track> = BTreeMap::new();
        for e in events {
            let Some(group) = field(&e.detail, "group") else {
                continue;
            };
            match e.kind {
                EventKind::ViewChange => {
                    let t = tracks.entry(group).or_default();
                    t.verdict.group = group;
                    t.verdict.view_changes += 1;
                    let epoch = field(&e.detail, "epoch").unwrap_or(0);
                    let leader = field(&e.detail, "leader").unwrap_or(0);
                    let watermark = field(&e.detail, "watermark").unwrap_or(0);
                    if epoch <= t.verdict.max_epoch && t.verdict.view_changes > 1 {
                        t.verdict.epoch_regressions += 1;
                    }
                    match t.leaders_by_epoch.get(&epoch) {
                        Some(&known) if known != leader => t.verdict.split_brain += 1,
                        _ => {
                            t.leaders_by_epoch.insert(epoch, leader);
                        }
                    }
                    if watermark < t.verdict.max_committed {
                        t.verdict.lost_committed += 1;
                    }
                    t.verdict.max_epoch = t.verdict.max_epoch.max(epoch);
                    t.verdict.max_committed = t.verdict.max_committed.max(watermark);
                }
                EventKind::QuorumCommit => {
                    let t = tracks.entry(group).or_default();
                    t.verdict.group = group;
                    t.verdict.commits += 1;
                    let epoch = field(&e.detail, "epoch").unwrap_or(0);
                    let seq = field(&e.detail, "seq").unwrap_or(0);
                    // A commit under an epoch older than the installed
                    // one means a deposed leader assembled a quorum —
                    // exactly the split-brain the fencing must prevent.
                    if epoch < t.verdict.max_epoch {
                        t.verdict.split_brain += 1;
                    }
                    t.verdict.max_committed = t.verdict.max_committed.max(seq);
                }
                EventKind::FencedWrite => {
                    let t = tracks.entry(group).or_default();
                    t.verdict.group = group;
                    t.verdict.fenced_writes += 1;
                }
                EventKind::ReplicaRead => {
                    let t = tracks.entry(group).or_default();
                    t.verdict.group = group;
                    t.verdict.reads += 1;
                    if let Some(commit) = field(&e.detail, "commit") {
                        if commit > t.verdict.max_committed {
                            t.verdict.dirty_reads += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        ConsistencyReport {
            groups: tracks.into_values().map(|t| t.verdict).collect(),
        }
    }
}

/// The full consistency verdict for a run: one entry per replicated
/// group observed in the event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Per-group verdicts, in group-id order.
    pub groups: Vec<GroupConsistency>,
}

impl ConsistencyReport {
    /// Audits the current observe event stream.
    pub fn gather() -> Self {
        GroupOracle::analyse(&bus::snapshot_events())
    }

    /// Whether every group satisfied every safety invariant.
    pub fn clean(&self) -> bool {
        self.groups.iter().all(GroupConsistency::clean)
    }

    /// Total split-brain observations across groups (must be zero).
    pub fn split_brain(&self) -> u64 {
        self.groups.iter().map(|g| g.split_brain).sum()
    }

    /// Total lost-committed observations across groups (must be zero).
    pub fn lost_committed(&self) -> u64 {
        self.groups.iter().map(|g| g.lost_committed).sum()
    }

    /// Total fenced stale writes/reads across groups.
    pub fn fenced_writes(&self) -> u64 {
        self.groups.iter().map(|g| g.fenced_writes).sum()
    }

    /// Deterministic text rendering: one line per group plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for g in &self.groups {
            out.push_str(&format!(
                "group {} views={} max_epoch={} commits={} max_committed={} fenced={} reads={} \
                 split_brain={} lost_committed={} epoch_regressions={} dirty_reads={}\n",
                g.group,
                g.view_changes,
                g.max_epoch,
                g.commits,
                g.max_committed,
                g.fenced_writes,
                g.reads,
                g.split_brain,
                g.lost_committed,
                g.epoch_regressions,
                g.dirty_reads,
            ));
        }
        out.push_str(&format!(
            "consistency={}\n",
            if self.clean() { "clean" } else { "VIOLATED" }
        ));
        out
    }

    /// Deterministic JSON rendering with a fixed field order.
    pub fn to_json(&self) -> String {
        let groups: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                format!(
                    "{{\"group\":{},\"view_changes\":{},\"max_epoch\":{},\"commits\":{},\"max_committed\":{},\"fenced_writes\":{},\"reads\":{},\"split_brain\":{},\"lost_committed\":{},\"epoch_regressions\":{},\"dirty_reads\":{}}}",
                    g.group,
                    g.view_changes,
                    g.max_epoch,
                    g.commits,
                    g.max_committed,
                    g.fenced_writes,
                    g.reads,
                    g.split_brain,
                    g.lost_committed,
                    g.epoch_regressions,
                    g.dirty_reads,
                )
            })
            .collect();
        format!(
            "{{\"groups\":[{}],\"clean\":{},\"split_brain\":{},\"lost_committed\":{},\"fenced_writes\":{}}}",
            groups.join(","),
            self.clean(),
            self.split_brain(),
            self.lost_committed(),
            self.fenced_writes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_observe::Layer;

    fn ev(layer: Layer, kind: EventKind, t_us: u64, detail: &str) -> Event {
        Event {
            seq: 0,
            t_us,
            layer,
            kind,
            span: None,
            parent: None,
            node: None,
            port: None,
            channel: None,
            capsule: None,
            detail: detail.to_string(),
        }
    }

    fn view(t: u64, detail: &str) -> Event {
        ev(Layer::Functions, EventKind::ViewChange, t, detail)
    }

    fn commit(t: u64, detail: &str) -> Event {
        ev(Layer::Transparency, EventKind::QuorumCommit, t, detail)
    }

    #[test]
    fn clean_history_passes() {
        let events = vec![
            view(10, "group=1 epoch=1 leader=4 members=3 acks=2 watermark=0"),
            commit(20, "group=1 epoch=1 seq=1 acks=3"),
            commit(30, "group=1 epoch=1 seq=2 acks=2"),
            ev(
                Layer::Transparency,
                EventKind::ReplicaRead,
                35,
                "group=1 epoch=1 commit=2 n=7 replica=4",
            ),
            view(40, "group=1 epoch=2 leader=5 members=3 acks=2 watermark=2"),
            ev(
                Layer::Transparency,
                EventKind::FencedWrite,
                50,
                "group=1 epoch=1 newer=2 seq=3",
            ),
            commit(60, "group=1 epoch=2 seq=3 acks=2"),
        ];
        let report = GroupOracle::analyse(&events);
        assert_eq!(report.groups.len(), 1);
        let g = &report.groups[0];
        assert!(g.clean(), "{}", report.render());
        assert_eq!(g.max_epoch, 2);
        assert_eq!(g.max_committed, 3);
        assert_eq!(g.fenced_writes, 1);
        assert_eq!(g.reads, 1);
        assert_eq!(report.fenced_writes(), 1);
        assert!(report.to_json().contains("\"clean\":true"));
    }

    #[test]
    fn commit_under_deposed_epoch_is_split_brain() {
        let events = vec![
            view(10, "group=1 epoch=1 leader=4 members=3 acks=2 watermark=0"),
            view(20, "group=1 epoch=2 leader=5 members=3 acks=2 watermark=0"),
            // The old leader somehow still commits under epoch 1.
            commit(30, "group=1 epoch=1 seq=1 acks=2"),
        ];
        let report = GroupOracle::analyse(&events);
        assert_eq!(report.split_brain(), 1);
        assert!(!report.clean());
    }

    #[test]
    fn two_leaders_in_one_epoch_is_split_brain() {
        let events = vec![
            view(10, "group=1 epoch=1 leader=4 members=3 acks=2 watermark=0"),
            view(20, "group=1 epoch=1 leader=9 members=3 acks=2 watermark=0"),
        ];
        let report = GroupOracle::analyse(&events);
        assert_eq!(report.split_brain(), 1);
        // The non-raising second install is also an epoch regression.
        assert_eq!(report.groups[0].epoch_regressions, 1);
    }

    #[test]
    fn watermark_regression_is_lost_committed() {
        let events = vec![
            view(10, "group=1 epoch=1 leader=4 members=3 acks=2 watermark=0"),
            commit(20, "group=1 epoch=1 seq=5 acks=2"),
            // New view elected a leader that never saw seq 5.
            view(30, "group=1 epoch=2 leader=5 members=3 acks=2 watermark=3"),
        ];
        let report = GroupOracle::analyse(&events);
        assert_eq!(report.lost_committed(), 1);
        assert!(!report.clean());
    }

    #[test]
    fn read_beyond_commit_is_dirty() {
        let events = vec![
            view(10, "group=1 epoch=1 leader=4 members=3 acks=2 watermark=0"),
            commit(20, "group=1 epoch=1 seq=1 acks=2"),
            ev(
                Layer::Transparency,
                EventKind::ReplicaRead,
                25,
                "group=1 epoch=1 commit=4 n=9 replica=4",
            ),
        ];
        let report = GroupOracle::analyse(&events);
        assert_eq!(report.groups[0].dirty_reads, 1);
        assert!(!report.clean());
    }

    #[test]
    fn groups_are_audited_independently() {
        let events = vec![
            view(10, "group=1 epoch=1 leader=4 members=3 acks=2 watermark=0"),
            view(20, "group=2 epoch=1 leader=7 members=3 acks=2 watermark=0"),
            commit(30, "group=2 epoch=1 seq=1 acks=2"),
            view(40, "group=2 epoch=1 leader=8 members=3 acks=2 watermark=1"),
        ];
        let report = GroupOracle::analyse(&events);
        assert_eq!(report.groups.len(), 2);
        assert!(report.groups[0].clean());
        assert_eq!(report.groups[1].split_brain, 1);
        assert!(!report.clean());
    }
}
