//! Recovery oracles: judging whether the system actually recovered.
//!
//! The [`RecoveryOracle`] reads the observe bus's event stream — the
//! same stream every layer already emits into — and computes, per
//! applied fault:
//!
//! - **MTTR**: virtual time from fault injection to the first reply
//!   delivered to the client afterwards (the client-visible moment
//!   service resumed);
//! - **availability**: the goodput ratio during the fault window —
//!   replies delivered to the client over requests it sent while the
//!   fault held.
//!
//! Safety invariants (no lost committed transactions, no duplicate
//! side-effects) are judged by the callers that know the application
//! semantics; this module supplies the counter-based half
//! ([`RecoveryReport::gather`] snapshots the dedup and breaker
//! counters, whose invariant `duplicate_dispatches == 0` is the
//! at-most-once execution guarantee).

use rmodp_engineering::nucleus::DRIVER_PORT;
use rmodp_observe::{bus, Event, EventKind, Layer};

use crate::inject::AppliedFault;

/// Formats a float with three decimals (deterministic, locale-free).
fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Per-fault recovery verdict.
#[derive(Debug, Clone)]
pub struct FaultRecovery {
    /// Fault type label.
    pub label: String,
    /// Fault parameters.
    pub detail: String,
    /// Injection time (virtual microseconds).
    pub injected_us: u64,
    /// Clear time, if the fault window closed.
    pub cleared_us: Option<u64>,
    /// Whether the client saw any reply after injection.
    pub recovered: bool,
    /// Time from injection to first post-injection client delivery; if
    /// service never resumed, time from injection to the end of the
    /// observed trace.
    pub mttr_us: u64,
    /// Client requests sent during the fault window.
    pub sent_in_window: u64,
    /// Replies delivered to the client during the fault window.
    pub delivered_in_window: u64,
    /// `delivered_in_window / sent_in_window`, capped at 1.0 (and 1.0
    /// when nothing was sent): the goodput ratio while the fault held.
    pub availability: f64,
}

/// Judges client-visible recovery from the observe event stream.
///
/// The measurement basis: netsim emits `Send` events located at the
/// source address and `Deliver` events located at the destination, so
/// the client's outbound requests are `Send` at `(client, DRIVER_PORT)`
/// and the replies it actually received are `Deliver` at the same
/// coordinates.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOracle {
    /// Netsim node index of the client, as recorded in event metadata.
    pub client_node: u64,
}

impl RecoveryOracle {
    /// An oracle watching the given client sim-node index.
    pub fn new(client_node: u64) -> Self {
        Self { client_node }
    }

    fn is_client_send(&self, e: &Event) -> bool {
        e.layer == Layer::Netsim
            && e.kind == EventKind::Send
            && e.node == Some(self.client_node)
            && e.port == Some(DRIVER_PORT as u64)
    }

    fn is_client_deliver(&self, e: &Event) -> bool {
        e.layer == Layer::Netsim
            && e.kind == EventKind::Deliver
            && e.node == Some(self.client_node)
            && e.port == Some(DRIVER_PORT as u64)
    }

    /// Analyses the event stream against the applied faults.
    pub fn analyse(&self, events: &[Event], faults: &[AppliedFault]) -> Vec<FaultRecovery> {
        let trace_end = events.iter().map(|e| e.t_us).max().unwrap_or(0);
        let send_times: Vec<u64> = events
            .iter()
            .filter(|e| self.is_client_send(e))
            .map(|e| e.t_us)
            .collect();
        let deliver_times: Vec<u64> = events
            .iter()
            .filter(|e| self.is_client_deliver(e))
            .map(|e| e.t_us)
            .collect();
        faults
            .iter()
            .map(|f| {
                let injected = f.injected_at.as_micros();
                let cleared = f.cleared_at.map(|t| t.as_micros());
                let window_end = cleared.unwrap_or(trace_end);
                // Request/reply payloads are opaque at this layer, so
                // availability is the window's goodput ratio: replies
                // delivered during the window over requests sent during
                // it. A healthy window has roughly one delivery per
                // send; a dead server yields sends with no deliveries.
                let sent_in_window = send_times
                    .iter()
                    .filter(|&&t| t >= injected && t < window_end)
                    .count() as u64;
                let delivered_in_window = deliver_times
                    .iter()
                    .filter(|&&t| t >= injected && t < window_end)
                    .count() as u64;
                let first_recovery = deliver_times.iter().find(|&&d| d >= injected).copied();
                let (recovered, mttr_us) = match first_recovery {
                    Some(d) => (true, d - injected),
                    None => (false, trace_end.saturating_sub(injected)),
                };
                let availability = if sent_in_window == 0 {
                    1.0
                } else {
                    (delivered_in_window as f64 / sent_in_window as f64).min(1.0)
                };
                FaultRecovery {
                    label: f.label.to_string(),
                    detail: f.detail.clone(),
                    injected_us: injected,
                    cleared_us: cleared,
                    recovered,
                    mttr_us,
                    sent_in_window,
                    delivered_in_window,
                    availability,
                }
            })
            .collect()
    }
}

/// The full recovery verdict for a chaos run: per-fault recoveries plus
/// the hardened-path counters whose values are the safety half of the
/// chaos invariants.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Per-fault verdicts, in injection order.
    pub faults: Vec<FaultRecovery>,
    /// Duplicate requests suppressed by the server dedup cache.
    pub dedup_hits: u64,
    /// Requests dispatched to a behaviour more than once. The
    /// at-most-once invariant: this must be zero.
    pub duplicate_dispatches: u64,
    /// Circuit-breaker state transitions observed.
    pub breaker_transitions: u64,
    /// Mean MTTR across recovered faults (microseconds; 0 when none).
    pub mean_mttr_us: u64,
}

impl RecoveryReport {
    /// Builds the report: analyses the current observe event stream
    /// against the applied faults and snapshots the hardened-path
    /// counters.
    pub fn gather(oracle: &RecoveryOracle, faults: &[AppliedFault]) -> Self {
        let events = bus::snapshot_events();
        let verdicts = oracle.analyse(&events, faults);
        let recovered: Vec<&FaultRecovery> = verdicts.iter().filter(|v| v.recovered).collect();
        let mean_mttr_us = if recovered.is_empty() {
            0
        } else {
            recovered.iter().map(|v| v.mttr_us).sum::<u64>() / recovered.len() as u64
        };
        Self {
            faults: verdicts,
            dedup_hits: bus::counter("engineering.dedup.hits"),
            duplicate_dispatches: bus::counter("engineering.dedup.duplicate_dispatches"),
            breaker_transitions: bus::counter("engineering.breaker.transitions"),
            mean_mttr_us,
        }
    }

    /// Whether every fault recovered and no duplicate side-effects were
    /// observed.
    pub fn clean(&self) -> bool {
        self.duplicate_dispatches == 0 && self.faults.iter().all(|f| f.recovered)
    }

    /// Deterministic text rendering: one line per fault plus a counter
    /// summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            let cleared = match f.cleared_us {
                Some(t) => format!("{t}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<14} inject={}us clear={}us recovered={} mttr={}us avail={} ({}/{})\n",
                f.label,
                f.injected_us,
                cleared,
                f.recovered,
                f.mttr_us,
                f3(f.availability),
                f.delivered_in_window,
                f.sent_in_window,
            ));
        }
        out.push_str(&format!(
            "dedup_hits={} duplicate_dispatches={} breaker_transitions={} mean_mttr={}us\n",
            self.dedup_hits, self.duplicate_dispatches, self.breaker_transitions, self.mean_mttr_us
        ));
        out
    }

    /// Deterministic JSON rendering with a fixed field order.
    pub fn to_json(&self) -> String {
        let faults: Vec<String> = self
            .faults
            .iter()
            .map(|f| {
                let cleared = match f.cleared_us {
                    Some(t) => t.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"fault\":\"{}\",\"detail\":\"{}\",\"injected_us\":{},\"cleared_us\":{},\"recovered\":{},\"mttr_us\":{},\"sent_in_window\":{},\"delivered_in_window\":{},\"availability\":{}}}",
                    f.label,
                    f.detail.replace('"', "'"),
                    f.injected_us,
                    cleared,
                    f.recovered,
                    f.mttr_us,
                    f.sent_in_window,
                    f.delivered_in_window,
                    f3(f.availability),
                )
            })
            .collect();
        format!(
            "{{\"faults\":[{}],\"dedup_hits\":{},\"duplicate_dispatches\":{},\"breaker_transitions\":{},\"mean_mttr_us\":{}}}",
            faults.join(","),
            self.dedup_hits,
            self.duplicate_dispatches,
            self.breaker_transitions,
            self.mean_mttr_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_netsim::time::SimTime;

    fn ev(kind: EventKind, t_us: u64, node: u64, port: u64) -> Event {
        Event {
            seq: 0,
            t_us,
            layer: Layer::Netsim,
            kind,
            span: None,
            parent: None,
            node: Some(node),
            port: Some(port),
            channel: None,
            capsule: None,
            detail: String::new(),
        }
    }

    fn fault(injected_us: u64, cleared_us: u64) -> AppliedFault {
        AppliedFault {
            index: 0,
            label: "crash_restart",
            detail: "crash n0".into(),
            injected_at: SimTime::from_micros(injected_us),
            cleared_at: Some(SimTime::from_micros(cleared_us)),
        }
    }

    #[test]
    fn mttr_is_first_delivery_after_injection() {
        let events = vec![
            ev(EventKind::Send, 900, 2, 1),
            ev(EventKind::Deliver, 950, 2, 1),
            ev(EventKind::Send, 1_100, 2, 1),
            ev(EventKind::Deliver, 1_700, 2, 1),
        ];
        let oracle = RecoveryOracle::new(2);
        let out = oracle.analyse(&events, &[fault(1_000, 1_500)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].recovered);
        assert_eq!(out[0].mttr_us, 700);
        assert_eq!(out[0].sent_in_window, 1);
        // The only deliveries fall outside the window: availability 0.
        assert_eq!(out[0].delivered_in_window, 0);
        assert!(out[0].availability.abs() < 1e-9);
    }

    #[test]
    fn unanswered_sends_lower_availability() {
        let events = vec![
            ev(EventKind::Send, 1_100, 2, 1),
            ev(EventKind::Send, 1_200, 2, 1),
            ev(EventKind::Deliver, 1_150, 2, 1),
        ];
        let oracle = RecoveryOracle::new(2);
        let out = oracle.analyse(&events, &[fault(1_000, 1_500)]);
        assert_eq!(out[0].sent_in_window, 2);
        assert_eq!(out[0].delivered_in_window, 1);
        assert!((out[0].availability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_delivery_means_not_recovered() {
        let events = vec![ev(EventKind::Send, 1_100, 2, 1)];
        let oracle = RecoveryOracle::new(2);
        let out = oracle.analyse(&events, &[fault(1_000, 1_500)]);
        assert!(!out[0].recovered);
        assert_eq!(out[0].mttr_us, 100);
    }

    #[test]
    fn other_nodes_do_not_count() {
        let events = vec![
            ev(EventKind::Send, 1_100, 7, 1),
            ev(EventKind::Deliver, 1_200, 7, 1),
        ];
        let oracle = RecoveryOracle::new(2);
        let out = oracle.analyse(&events, &[fault(1_000, 1_500)]);
        assert_eq!(out[0].sent_in_window, 0);
        assert!((out[0].availability - 1.0).abs() < 1e-9);
    }
}
