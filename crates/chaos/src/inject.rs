//! Compiling a [`FaultPlan`] onto virtual time and applying it.
//!
//! The [`FaultInjector`] turns a plan into a sorted list of apply/clear
//! actions anchored at an epoch. It is a kernel [`Actor`]: registered on
//! the same [`Kernel`] as a load generator (ahead of it, so equal-time
//! ties resolve fault-first), its actions land at exact virtual instants
//! regardless of the load pattern. [`FaultInjector::apply_until`] and
//! [`FaultInjector::finish`] drive a private single-actor kernel for
//! callers that schedule faults without a workload.
//!
//! [`FaultPlan`]: crate::plan::FaultPlan

use std::collections::BTreeMap;

use rmodp_engineering::engine::Engine;
use rmodp_engineering::structure::ClusterCheckpoint;
use rmodp_kernel::{Actor, Kernel};
use rmodp_netsim::sim::NodeIdx;
use rmodp_netsim::time::SimTime;
use rmodp_netsim::topology::LinkConfig;
use rmodp_observe::{bus, event, EventKind, Layer};

use crate::plan::{FaultKind, FaultPlan};

/// Which half of a fault an action performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Apply,
    Clear,
}

/// One compiled action: at absolute virtual time `at`, apply or clear
/// fault `index` of the plan.
#[derive(Debug, Clone, Copy)]
struct Action {
    at: SimTime,
    index: usize,
    phase: Phase,
}

/// The record of one fault as it actually played out.
#[derive(Debug, Clone)]
pub struct AppliedFault {
    /// Index in the originating plan.
    pub index: usize,
    /// Fault type label (e.g. `crash_restart`).
    pub label: &'static str,
    /// Human-readable parameters.
    pub detail: String,
    /// Virtual time at which the fault was applied.
    pub injected_at: SimTime,
    /// Virtual time at which it was cleared, if it has been.
    pub cleared_at: Option<SimTime>,
}

/// Applies a compiled fault schedule to an [`Engine`], interleaved with
/// simulation progress.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Compiled actions, sorted by time (stable, so plan order breaks
    /// ties deterministically).
    actions: Vec<Action>,
    next: usize,
    /// Saved link configs for faults that perturb links, keyed by fault
    /// index: `(a→b, b→a)`.
    saved_links: BTreeMap<usize, (LinkConfig, LinkConfig)>,
    /// Checkpoints held while a killed capsule's cluster is down.
    checkpoints: BTreeMap<usize, ClusterCheckpoint>,
    /// What actually happened, in application order.
    applied: Vec<AppliedFault>,
}

impl FaultInjector {
    /// Compiles a plan against epoch `t0`: each fault applies at
    /// `t0 + at` and clears at `t0 + at + window`.
    pub fn new(plan: FaultPlan, t0: SimTime) -> Self {
        let mut actions = Vec::with_capacity(plan.events.len() * 2);
        for (index, ev) in plan.events.iter().enumerate() {
            let start = t0 + ev.at;
            actions.push(Action {
                at: start,
                index,
                phase: Phase::Apply,
            });
            actions.push(Action {
                at: start + ev.fault.window(),
                index,
                phase: Phase::Clear,
            });
        }
        actions.sort_by_key(|a| a.at);
        Self {
            plan,
            actions,
            next: 0,
            saved_links: BTreeMap::new(),
            checkpoints: BTreeMap::new(),
            applied: Vec::new(),
        }
    }

    /// The faults applied so far, with their injection/clear times.
    pub fn applied(&self) -> &[AppliedFault] {
        &self.applied
    }

    /// Consumes the injector, returning the applied-fault log.
    pub fn into_applied(self) -> Vec<AppliedFault> {
        self.applied
    }

    /// Whether every scheduled action has been performed.
    pub fn exhausted(&self) -> bool {
        self.next >= self.actions.len()
    }

    /// Advances the simulation to `target`, performing every fault
    /// action that falls due on the way. The simulator never runs past a
    /// pending action, so faults take effect at exact virtual instants.
    pub fn apply_until(&mut self, engine: &mut Engine, target: SimTime) {
        let mut kernel = Kernel::new();
        kernel.register(self);
        kernel.advance_to(engine, target);
    }

    /// Performs all remaining actions, advancing the clock between them,
    /// then drains the simulator to quiescence.
    pub fn finish(&mut self, engine: &mut Engine) {
        let mut kernel = Kernel::new();
        kernel.register(self);
        kernel.finish(engine);
    }

    fn perform(&mut self, engine: &mut Engine, action: Action) {
        let fault = self.plan.events[action.index].fault.clone();
        match action.phase {
            Phase::Apply => {
                self.apply_fault(engine, action.index, &fault);
                let now = engine.sim().now();
                bus::counter_add("chaos.faults_injected", 1);
                event(Layer::Application, EventKind::FaultInject)
                    .detail(fault.describe())
                    .emit();
                self.applied.push(AppliedFault {
                    index: action.index,
                    label: fault.label(),
                    detail: fault.describe(),
                    injected_at: now,
                    cleared_at: None,
                });
            }
            Phase::Clear => {
                self.clear_fault(engine, action.index, &fault);
                let now = engine.sim().now();
                bus::counter_add("chaos.faults_cleared", 1);
                event(Layer::Application, EventKind::FaultClear)
                    .detail(fault.describe())
                    .emit();
                if let Some(rec) = self.applied.iter_mut().find(|r| r.index == action.index) {
                    rec.cleared_at = Some(now);
                }
            }
        }
    }

    fn stash_links(&mut self, engine: &Engine, index: usize, a: NodeIdx, b: NodeIdx) {
        let topo = engine.sim().topology();
        self.saved_links
            .insert(index, (topo.link(a, b), topo.link(b, a)));
    }

    fn restore_links(&mut self, engine: &mut Engine, index: usize, a: NodeIdx, b: NodeIdx) {
        if let Some((ab, ba)) = self.saved_links.remove(&index) {
            let topo = engine.sim_mut().topology_mut();
            topo.set_link(a, b, ab);
            topo.set_link(b, a, ba);
        }
    }

    fn apply_fault(&mut self, engine: &mut Engine, index: usize, fault: &FaultKind) {
        match *fault {
            FaultKind::CrashRestart { node, .. } => {
                engine.sim_mut().topology_mut().crash(node);
            }
            FaultKind::Partition { a, b, .. } => {
                engine.sim_mut().topology_mut().partition(a, b);
            }
            FaultKind::LossBurst { a, b, loss, .. } => {
                self.stash_links(engine, index, a, b);
                let (ab, ba) = self.saved_links[&index];
                let topo = engine.sim_mut().topology_mut();
                topo.set_link(a, b, LinkConfig { loss, ..ab });
                topo.set_link(b, a, LinkConfig { loss, ..ba });
            }
            FaultKind::OneWayLoss { from, to, loss, .. } => {
                // Only the from→to direction is perturbed; the stash
                // still records both so the clear path is shared.
                self.stash_links(engine, index, from, to);
                let (ft, _) = self.saved_links[&index];
                engine
                    .sim_mut()
                    .topology_mut()
                    .set_link(from, to, LinkConfig { loss, ..ft });
            }
            FaultKind::LatencySpike { a, b, extra, .. } => {
                self.stash_links(engine, index, a, b);
                let (ab, ba) = self.saved_links[&index];
                let topo = engine.sim_mut().topology_mut();
                topo.set_link(
                    a,
                    b,
                    LinkConfig {
                        latency: ab.latency + extra,
                        ..ab
                    },
                );
                topo.set_link(
                    b,
                    a,
                    LinkConfig {
                        latency: ba.latency + extra,
                        ..ba
                    },
                );
            }
            FaultKind::CapsuleKill {
                node,
                capsule,
                cluster,
                ..
            } => {
                // Failure to deactivate (already gone) leaves nothing to
                // reactivate; the clear phase tolerates the missing
                // checkpoint.
                if let Ok(cp) = engine.deactivate_cluster(node, capsule, cluster) {
                    self.checkpoints.insert(index, cp);
                }
            }
        }
    }

    fn clear_fault(&mut self, engine: &mut Engine, index: usize, fault: &FaultKind) {
        match *fault {
            FaultKind::CrashRestart { node, .. } => {
                engine.sim_mut().topology_mut().restart(node);
            }
            FaultKind::Partition { a, b, .. } => {
                engine.sim_mut().topology_mut().heal(a, b);
            }
            FaultKind::LossBurst { a, b, .. } | FaultKind::LatencySpike { a, b, .. } => {
                self.restore_links(engine, index, a, b);
            }
            FaultKind::OneWayLoss { from, to, .. } => {
                self.restore_links(engine, index, from, to);
            }
            FaultKind::CapsuleKill { node, capsule, .. } => {
                if let Some(cp) = self.checkpoints.remove(&index) {
                    engine
                        .reactivate_cluster(node, capsule, &cp)
                        .expect("reactivation of a checkpoint taken from this engine");
                }
            }
        }
    }
}

/// One kernel tick performs one compiled action; equal-time actions fire
/// as consecutive ticks at the same instant, preserving plan order.
impl Actor<Engine> for FaultInjector {
    fn next_due(&self, _world: &Engine) -> Option<SimTime> {
        self.actions.get(self.next).map(|a| a.at)
    }

    fn tick(&mut self, world: &mut Engine, _at: SimTime) {
        let action = self.actions[self.next];
        self.next += 1;
        self.perform(world, action);
    }

    fn name(&self) -> &'static str {
        "fault_injector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::codec::SyntaxId;
    use rmodp_netsim::time::SimDuration;

    #[test]
    fn crash_restart_round_trips_topology_state() {
        let mut engine = Engine::new(11);
        let a = engine.add_node(SyntaxId::Binary);
        let _b = engine.add_node(SyntaxId::Binary);
        let na = engine.sim_node(a).unwrap();
        let plan = FaultPlan::new().with(
            SimDuration::from_millis(10),
            FaultKind::CrashRestart {
                node: na,
                down_for: SimDuration::from_millis(5),
            },
        );
        let mut inj = FaultInjector::new(plan, engine.sim().now());
        inj.apply_until(&mut engine, SimTime::from_micros(12_000));
        assert!(engine.sim().topology().is_crashed(na));
        inj.finish(&mut engine);
        assert!(!engine.sim().topology().is_crashed(na));
        let log = inj.into_applied();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].label, "crash_restart");
        assert_eq!(log[0].injected_at, SimTime::from_micros(10_000));
        assert_eq!(log[0].cleared_at, Some(SimTime::from_micros(15_000)));
    }

    #[test]
    fn loss_burst_restores_saved_link() {
        let mut engine = Engine::new(12);
        let a = engine.add_node(SyntaxId::Binary);
        let b = engine.add_node(SyntaxId::Binary);
        let (na, nb) = (engine.sim_node(a).unwrap(), engine.sim_node(b).unwrap());
        let before = engine.sim().topology().link(na, nb);
        let plan = FaultPlan::new().with(
            SimDuration::from_millis(1),
            FaultKind::LossBurst {
                a: na,
                b: nb,
                loss: 0.9,
                window: SimDuration::from_millis(2),
            },
        );
        let mut inj = FaultInjector::new(plan, engine.sim().now());
        inj.apply_until(&mut engine, SimTime::from_micros(1_500));
        assert!((engine.sim().topology().link(na, nb).loss - 0.9).abs() < 1e-9);
        inj.finish(&mut engine);
        assert_eq!(engine.sim().topology().link(na, nb), before);
    }
}
