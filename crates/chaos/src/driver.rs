//! Running workloads under fault plans.
//!
//! [`run_scenario_under_faults`] is the top-level chaos harness: it
//! compiles a [`FaultPlan`] onto the engine's current virtual time, runs
//! a `rmodp-workload` scenario with the injector registered as an actor
//! ahead of the load generator on the same kernel, and judges the result
//! with the [`RecoveryOracle`]. Same engine seed, scenario, and plan →
//! byte-identical traces and reports.

use rmodp_core::id::{ChannelId, NodeId};
use rmodp_engineering::engine::{EngError, Engine};
use rmodp_workload::driver::{execute_with, RunStats};
use rmodp_workload::scenario::Scenario;
use rmodp_workload::slo::{self, SloReport};

use crate::inject::{AppliedFault, FaultInjector};
use crate::oracle::{RecoveryOracle, RecoveryReport};
use crate::plan::FaultPlan;

/// Everything a chaos run produces.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Raw workload statistics.
    pub stats: RunStats,
    /// SLO verdict against the scenario's contract.
    pub report: SloReport,
    /// The faults as they actually played out.
    pub faults: Vec<AppliedFault>,
    /// Recovery verdicts and hardened-path counters.
    pub recovery: RecoveryReport,
}

/// Runs a scenario over `channel` while injecting `plan`, then evaluates
/// both the SLO contract and the recovery oracles.
///
/// `client` is the engineering node the channel was opened from; the
/// oracle needs its sim-node index to locate the client's sends and
/// deliveries in the event stream.
///
/// # Errors
///
/// Unknown `client` node.
pub fn run_scenario_under_faults(
    engine: &mut Engine,
    client: NodeId,
    channel: ChannelId,
    scenario: &Scenario,
    plan: FaultPlan,
) -> Result<ChaosOutcome, EngError> {
    let client_idx = engine.sim_node(client)?;
    let mut injector = FaultInjector::new(plan, engine.sim().now());
    let stats = execute_with(engine, channel, scenario, &mut [&mut injector]);
    let report = slo::evaluate(scenario, &stats);
    let faults = injector.into_applied();
    let oracle = RecoveryOracle::new(client_idx.0 as u64);
    let recovery = RecoveryReport::gather(&oracle, &faults);
    Ok(ChaosOutcome {
        stats,
        report,
        faults,
        recovery,
    })
}
