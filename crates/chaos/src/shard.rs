//! Fault injection for sharded runs: a [`FaultPlan`] compiled into an
//! epoch hook.
//!
//! Under the sharded kernel, faults cannot be injected by a simulator
//! process (a fault mutates the *topology*, and under sharding every
//! shard holds its own copy of the topology that must change in
//! lock-step). Instead, [`FaultPlanHook`] compiles a plan into a sorted
//! timeline of [`ShardAction`]s and hands it to
//! [`ShardedKernel::run_with_hook`], which pauses the epoch protocol at
//! each fault instant and applies the actions to **every** shard before
//! any event at or after that instant is processed. That barrier is what
//! keeps fault timing exact — and therefore shard-count invariant: a
//! message sent before the instant still dies at its crashed destination,
//! and one sent after dies at the source, exactly as in a single-shard
//! run.
//!
//! Only *topology-level* faults are expressible as shard actions; plans
//! that use loss bursts, latency spikes, or capsule kills are rejected at
//! compile time rather than silently dropped (loss would also reintroduce
//! per-shard RNG draws, breaking invariance).
//!
//! [`ShardedKernel::run_with_hook`]: rmodp_kernel::ShardedKernel::run_with_hook

use rmodp_kernel::EpochHook;
use rmodp_netsim::sim::ShardAction;
use rmodp_netsim::time::SimTime;

use crate::plan::{FaultKind, FaultPlan};

/// A fault plan compiled onto absolute virtual time as epoch-hook
/// actions. Instants are visited in ascending order; all actions sharing
/// an instant are applied in one firing (insertion order).
#[derive(Debug, Clone)]
pub struct FaultPlanHook {
    /// `(instant, actions)` ascending by instant.
    timeline: Vec<(SimTime, Vec<ShardAction>)>,
    cursor: usize,
}

impl FaultPlanHook {
    /// Compiles a plan. The plan epoch is the run origin (`t = 0`).
    ///
    /// # Errors
    ///
    /// A description of the first fault whose kind cannot be expressed
    /// as a topology-level shard action.
    pub fn compile(plan: &FaultPlan) -> Result<Self, String> {
        let mut actions: Vec<(SimTime, ShardAction)> = Vec::new();
        for (i, event) in plan.events.iter().enumerate() {
            let at = SimTime::ZERO + event.at;
            match &event.fault {
                FaultKind::CrashRestart { node, down_for } => {
                    actions.push((at, ShardAction::Crash(*node)));
                    actions.push((at + *down_for, ShardAction::Restart(*node)));
                }
                FaultKind::Partition { a, b, heal_after } => {
                    actions.push((at, ShardAction::Partition(*a, *b)));
                    actions.push((at + *heal_after, ShardAction::Heal(*a, *b)));
                }
                other => {
                    return Err(format!(
                        "event #{i}: {} faults are not supported under sharded \
                         execution (only crash/restart and partition/heal act on \
                         the replicated topology)",
                        other.label()
                    ));
                }
            }
        }
        actions.sort_by_key(|(at, _)| *at);
        let mut timeline: Vec<(SimTime, Vec<ShardAction>)> = Vec::new();
        for (at, action) in actions {
            match timeline.last_mut() {
                Some((t, group)) if *t == at => group.push(action),
                _ => timeline.push((at, vec![action])),
            }
        }
        Ok(Self {
            timeline,
            cursor: 0,
        })
    }

    /// Fault instants not yet fired.
    pub fn remaining(&self) -> usize {
        self.timeline.len() - self.cursor
    }
}

impl EpochHook<ShardAction> for FaultPlanHook {
    fn next_instant(&self) -> Option<SimTime> {
        self.timeline.get(self.cursor).map(|(at, _)| *at)
    }

    fn fire(&mut self, at: SimTime) -> Vec<ShardAction> {
        let (instant, actions) = &self.timeline[self.cursor];
        assert_eq!(*instant, at, "hook fired at the wrong instant");
        self.cursor += 1;
        actions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_netsim::sim::NodeIdx;
    use rmodp_netsim::time::SimDuration;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn plans_compile_to_an_ordered_timeline() {
        let plan = FaultPlan::new()
            .with(
                us(500),
                FaultKind::Partition {
                    a: NodeIdx(0),
                    b: NodeIdx(2),
                    heal_after: us(300),
                },
            )
            .with(
                us(100),
                FaultKind::CrashRestart {
                    node: NodeIdx(4),
                    down_for: us(400),
                },
            );
        let mut hook = FaultPlanHook::compile(&plan).expect("compilable plan");
        assert_eq!(
            hook.remaining(),
            3,
            "crash, then partition+restart, then heal"
        );
        assert_eq!(hook.next_instant(), Some(SimTime::ZERO + us(100)));
        assert_eq!(
            hook.fire(SimTime::ZERO + us(100)),
            vec![ShardAction::Crash(NodeIdx(4))]
        );
        // The restart (100 + 400) and the partition (500) share an
        // instant and fire together; the stable sort preserves plan
        // insertion order within an instant, and the partition event was
        // inserted first.
        assert_eq!(hook.next_instant(), Some(SimTime::ZERO + us(500)));
        assert_eq!(
            hook.fire(SimTime::ZERO + us(500)),
            vec![
                ShardAction::Partition(NodeIdx(0), NodeIdx(2)),
                ShardAction::Restart(NodeIdx(4)),
            ]
        );
        assert_eq!(
            hook.fire(SimTime::ZERO + us(800)),
            vec![ShardAction::Heal(NodeIdx(0), NodeIdx(2))]
        );
        assert_eq!(hook.next_instant(), None);
    }

    #[test]
    fn unsupported_fault_kinds_are_rejected() {
        let plan = FaultPlan::new().with(
            us(100),
            FaultKind::LossBurst {
                a: NodeIdx(0),
                b: NodeIdx(1),
                loss: 0.5,
                window: us(200),
            },
        );
        let err = FaultPlanHook::compile(&plan).unwrap_err();
        assert!(err.contains("loss_burst"), "{err}");
    }
}
