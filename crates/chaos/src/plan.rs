//! Fault plans: seeded, typed schedules of infrastructure failures.
//!
//! A [`FaultPlan`] is data, not behaviour: a list of `(offset, fault)`
//! pairs expressed on virtual time relative to an epoch chosen at
//! injection time. Plans can be written by hand with [`FaultPlan::with`]
//! or drawn from a seeded RNG with [`FaultPlan::generate`]; either way
//! the plan is a plain value that renders deterministically, so two runs
//! from the same seed produce byte-identical fault traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmodp_core::id::{CapsuleId, ClusterId, NodeId};
use rmodp_netsim::sim::NodeIdx;
use rmodp_netsim::time::SimDuration;

/// A typed fault. Node-level faults act on the netsim topology; capsule
/// kill acts on the engineering structure (deactivate + reactivate), so
/// recovery exercises checkpointing rather than mere reachability.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Crash a node, dropping everything in flight to or from it, then
    /// restart it after `down_for`.
    CrashRestart {
        /// The node to crash.
        node: NodeIdx,
        /// How long the node stays down.
        down_for: SimDuration,
    },
    /// Partition two nodes (both directions), healing after `heal_after`.
    Partition {
        /// One side of the cut.
        a: NodeIdx,
        /// The other side of the cut.
        b: NodeIdx,
        /// How long the partition lasts.
        heal_after: SimDuration,
    },
    /// Raise the loss probability on the `a`↔`b` links to `loss` for a
    /// window, then restore the previous link characteristics.
    LossBurst {
        /// One endpoint.
        a: NodeIdx,
        /// The other endpoint.
        b: NodeIdx,
        /// Loss probability in `[0, 1]` during the burst.
        loss: f64,
        /// Burst duration.
        window: SimDuration,
    },
    /// Raise the loss probability on the directed `from`→`to` link only
    /// for a window. With `from` the server and `to` the client this
    /// drops replies while requests keep arriving — every retransmission
    /// then reaches the server as a genuine duplicate, which is the
    /// sharpest probe of the request-dedup cache.
    OneWayLoss {
        /// Source of the lossy direction.
        from: NodeIdx,
        /// Destination of the lossy direction.
        to: NodeIdx,
        /// Loss probability in `[0, 1]` during the burst.
        loss: f64,
        /// Burst duration.
        window: SimDuration,
    },
    /// Add `extra` one-way latency on the `a`↔`b` links for a window.
    LatencySpike {
        /// One endpoint.
        a: NodeIdx,
        /// The other endpoint.
        b: NodeIdx,
        /// Additional latency during the spike.
        extra: SimDuration,
        /// Spike duration.
        window: SimDuration,
    },
    /// Kill a capsule's cluster (deactivate, discarding the running
    /// instance but keeping the checkpoint), reactivating after
    /// `down_for`.
    CapsuleKill {
        /// Engineering node hosting the capsule.
        node: NodeId,
        /// The capsule whose cluster dies.
        capsule: CapsuleId,
        /// The cluster to deactivate.
        cluster: ClusterId,
        /// How long until reactivation.
        down_for: SimDuration,
    },
}

impl FaultKind {
    /// Short machine-friendly label for the fault type.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::CrashRestart { .. } => "crash_restart",
            FaultKind::Partition { .. } => "partition",
            FaultKind::LossBurst { .. } => "loss_burst",
            FaultKind::OneWayLoss { .. } => "one_way_loss",
            FaultKind::LatencySpike { .. } => "latency_spike",
            FaultKind::CapsuleKill { .. } => "capsule_kill",
        }
    }

    /// Deterministic one-line description of the fault parameters.
    pub fn describe(&self) -> String {
        match self {
            FaultKind::CrashRestart { node, down_for } => {
                format!("crash {node} for {}us", down_for.as_micros())
            }
            FaultKind::Partition { a, b, heal_after } => {
                format!("partition {a}<->{b} for {}us", heal_after.as_micros())
            }
            FaultKind::LossBurst { a, b, loss, window } => format!(
                "loss burst {a}<->{b} p={loss:.2} for {}us",
                window.as_micros()
            ),
            FaultKind::OneWayLoss {
                from,
                to,
                loss,
                window,
            } => format!(
                "one-way loss {from}->{to} p={loss:.2} for {}us",
                window.as_micros()
            ),
            FaultKind::LatencySpike {
                a,
                b,
                extra,
                window,
            } => format!(
                "latency spike {a}<->{b} +{}us for {}us",
                extra.as_micros(),
                window.as_micros()
            ),
            FaultKind::CapsuleKill {
                node,
                capsule,
                cluster,
                down_for,
            } => format!(
                "kill capsule {capsule} cluster {cluster} at {node} for {}us",
                down_for.as_micros()
            ),
        }
    }

    /// The duration of the fault window (time until the clearing action).
    pub fn window(&self) -> SimDuration {
        match self {
            FaultKind::CrashRestart { down_for, .. } => *down_for,
            FaultKind::Partition { heal_after, .. } => *heal_after,
            FaultKind::LossBurst { window, .. } => *window,
            FaultKind::OneWayLoss { window, .. } => *window,
            FaultKind::LatencySpike { window, .. } => *window,
            FaultKind::CapsuleKill { down_for, .. } => *down_for,
        }
    }
}

/// A fault scheduled at an offset from the plan's epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Offset from the plan epoch at which the fault is injected.
    pub at: SimDuration,
    /// The fault to inject.
    pub fault: FaultKind,
}

/// An ordered schedule of faults. Events are kept in insertion order;
/// the injector stable-sorts by time when compiling, so ties resolve in
/// insertion order and the plan stays deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

/// Parameters for drawing a random [`FaultPlan`] from a seed.
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Server-side nodes eligible for crashes and partitions.
    pub servers: Vec<NodeIdx>,
    /// The client node (the other endpoint of partitions and link
    /// faults — faults that cannot be observed are not interesting).
    pub client: NodeIdx,
    /// Length of the experiment; fault injection times are drawn from
    /// the middle of this interval so every window can close before the
    /// run ends.
    pub duration: SimDuration,
    /// Number of crash+restart faults to draw.
    pub crashes: usize,
    /// Number of partition+heal faults to draw.
    pub partitions: usize,
    /// Number of loss bursts to draw.
    pub loss_bursts: usize,
    /// Number of latency spikes to draw.
    pub latency_spikes: usize,
    /// Mean fault window; actual windows are drawn uniformly from
    /// `[mean/2, 3*mean/2]`.
    pub mean_downtime: SimDuration,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: schedules a fault at an offset from the plan epoch.
    pub fn with(mut self, at: SimDuration, fault: FaultKind) -> Self {
        self.events.push(FaultEvent { at, fault });
        self
    }

    /// Checks the plan's static invariants: every fault window is
    /// non-zero (a zero-length fault would inject and clear at the same
    /// virtual instant, ordering-dependently), loss probabilities lie in
    /// `[0, 1]`, and two-endpoint faults name two *distinct* nodes (a
    /// self-partition is always a plan bug, never a scenario).
    ///
    /// # Errors
    ///
    /// The first violation found, as a human-readable description
    /// naming the offending event.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            let what = |msg: &str| {
                format!(
                    "event #{i} (+{}us, {}): {msg}",
                    e.at.as_micros(),
                    e.fault.label()
                )
            };
            if e.fault.window().as_micros() == 0 {
                return Err(what("zero-length fault window"));
            }
            match &e.fault {
                FaultKind::Partition { a, b, .. } | FaultKind::LatencySpike { a, b, .. } => {
                    if a == b {
                        return Err(what("both endpoints are the same node"));
                    }
                }
                FaultKind::LossBurst { a, b, loss, .. } => {
                    if a == b {
                        return Err(what("both endpoints are the same node"));
                    }
                    if !(0.0..=1.0).contains(loss) {
                        return Err(what("loss probability outside [0, 1]"));
                    }
                }
                FaultKind::OneWayLoss { from, to, loss, .. } => {
                    if from == to {
                        return Err(what("both endpoints are the same node"));
                    }
                    if !(0.0..=1.0).contains(loss) {
                        return Err(what("loss probability outside [0, 1]"));
                    }
                }
                FaultKind::CrashRestart { .. } | FaultKind::CapsuleKill { .. } => {}
            }
        }
        Ok(())
    }

    /// Draws a plan from a seed. The RNG is dedicated to the plan (it is
    /// not the simulator's RNG), and draws happen in a fixed order —
    /// crashes, then partitions, then loss bursts, then latency spikes —
    /// so the same seed and profile always yield the same plan. The
    /// drawn plan is [`validate`](Self::validate)d before being
    /// returned, so a profile that would produce degenerate faults
    /// (e.g. the client listed among the servers, making a
    /// self-partition possible) fails loudly instead of silently
    /// injecting a no-op.
    ///
    /// # Panics
    ///
    /// When the profile produces an invalid plan.
    pub fn generate(seed: u64, profile: &ChaosProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_57ed_c4a0_5eed);
        let mut plan = FaultPlan::new();
        let span = profile.duration.as_micros();
        // Inject within [10%, 85%] of the run so windows can open and
        // close while load is still being offered.
        let lo = span / 10;
        let hi = span * 85 / 100;
        let draw_at = |rng: &mut StdRng| SimDuration::from_micros(rng.gen_range(lo..=hi.max(lo)));
        let draw_window = |rng: &mut StdRng| {
            let mean = profile.mean_downtime.as_micros().max(2);
            SimDuration::from_micros(rng.gen_range(mean / 2..=mean * 3 / 2))
        };
        let pick_server = |rng: &mut StdRng| {
            profile.servers[rng.gen_range(0..profile.servers.len() as u64) as usize]
        };
        for _ in 0..profile.crashes {
            let at = draw_at(&mut rng);
            let node = pick_server(&mut rng);
            let down_for = draw_window(&mut rng);
            plan.events.push(FaultEvent {
                at,
                fault: FaultKind::CrashRestart { node, down_for },
            });
        }
        for _ in 0..profile.partitions {
            let at = draw_at(&mut rng);
            let b = pick_server(&mut rng);
            let heal_after = draw_window(&mut rng);
            plan.events.push(FaultEvent {
                at,
                fault: FaultKind::Partition {
                    a: profile.client,
                    b,
                    heal_after,
                },
            });
        }
        for _ in 0..profile.loss_bursts {
            let at = draw_at(&mut rng);
            let b = pick_server(&mut rng);
            let loss = 0.3 + 0.6 * rng.gen::<f64>();
            let window = draw_window(&mut rng);
            plan.events.push(FaultEvent {
                at,
                fault: FaultKind::LossBurst {
                    a: profile.client,
                    b,
                    loss,
                    window,
                },
            });
        }
        for _ in 0..profile.latency_spikes {
            let at = draw_at(&mut rng);
            let b = pick_server(&mut rng);
            let extra = SimDuration::from_micros(rng.gen_range(1_000u64..=20_000));
            let window = draw_window(&mut rng);
            plan.events.push(FaultEvent {
                at,
                fault: FaultKind::LatencySpike {
                    a: profile.client,
                    b,
                    extra,
                    window,
                },
            });
        }
        plan.validate()
            .unwrap_or_else(|why| panic!("generated plan is invalid: {why}"));
        plan
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Deterministic multi-line description of the plan, one fault per
    /// line in schedule order.
    pub fn describe(&self) -> String {
        let mut sorted: Vec<&FaultEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| e.at.as_micros());
        let mut out = String::new();
        for e in sorted {
            out.push_str(&format!("+{}us {}\n", e.at.as_micros(), e.fault.describe()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ChaosProfile {
        ChaosProfile {
            servers: vec![NodeIdx(0), NodeIdx(1)],
            client: NodeIdx(2),
            duration: SimDuration::from_secs(2),
            crashes: 2,
            partitions: 1,
            loss_bursts: 1,
            latency_spikes: 1,
            mean_downtime: SimDuration::from_millis(80),
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, &profile());
        let b = FaultPlan::generate(42, &profile());
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, &profile());
        let b = FaultPlan::generate(2, &profile());
        assert_ne!(a.describe(), b.describe());
    }

    #[test]
    fn generate_draws_requested_counts() {
        let p = FaultPlan::generate(7, &profile());
        assert_eq!(p.len(), 5);
        let crashes = p
            .events
            .iter()
            .filter(|e| matches!(e.fault, FaultKind::CrashRestart { .. }))
            .count();
        assert_eq!(crashes, 2);
    }

    #[test]
    fn validate_rejects_degenerate_plans() {
        // Self-partition.
        let p = FaultPlan::new().with(
            SimDuration::from_millis(1),
            FaultKind::Partition {
                a: NodeIdx(3),
                b: NodeIdx(3),
                heal_after: SimDuration::from_millis(5),
            },
        );
        let err = p.validate().unwrap_err();
        assert!(err.contains("same node"), "{err}");
        assert!(err.contains("partition"), "{err}");

        // Loss probability out of range.
        let p = FaultPlan::new().with(
            SimDuration::from_millis(1),
            FaultKind::OneWayLoss {
                from: NodeIdx(0),
                to: NodeIdx(1),
                loss: 1.5,
                window: SimDuration::from_millis(5),
            },
        );
        assert!(p.validate().unwrap_err().contains("[0, 1]"));

        // Zero-length window.
        let p = FaultPlan::new().with(
            SimDuration::from_millis(1),
            FaultKind::CrashRestart {
                node: NodeIdx(0),
                down_for: SimDuration::from_micros(0),
            },
        );
        assert!(p.validate().unwrap_err().contains("zero-length"));

        // A generated plan always validates.
        assert!(FaultPlan::generate(9, &profile()).validate().is_ok());
    }

    #[test]
    fn builder_preserves_order_and_describes() {
        let plan = FaultPlan::new()
            .with(
                SimDuration::from_millis(5),
                FaultKind::Partition {
                    a: NodeIdx(0),
                    b: NodeIdx(1),
                    heal_after: SimDuration::from_millis(10),
                },
            )
            .with(
                SimDuration::from_millis(1),
                FaultKind::CrashRestart {
                    node: NodeIdx(1),
                    down_for: SimDuration::from_millis(3),
                },
            );
        let d = plan.describe();
        assert!(d.starts_with("+1000us crash n1"), "{d}");
        assert!(d.contains("partition n0<->n1"), "{d}");
    }
}
