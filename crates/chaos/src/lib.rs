//! # rmodp-chaos — deterministic fault injection and recovery SLOs
//!
//! RM-ODP's failure transparency (§9) promises that "failure and
//! possible recovery of objects" is masked from applications — a
//! promise that can only be *tested* by making objects fail. This crate
//! supplies the failure half of that contract check: typed, seeded
//! fault schedules applied to the engineering model on virtual time,
//! plus oracles that judge whether the transparency machinery (retries,
//! circuit breakers, dedup, relocation, 2PC) actually delivered
//! recovery.
//!
//! The pieces, bottom-up:
//!
//! - [`plan`] — [`FaultPlan`]: a schedule of typed faults (node
//!   crash/restart, link partition/heal, loss bursts, latency spikes,
//!   capsule kill) written by hand or drawn from a seeded RNG;
//! - [`inject`] — [`FaultInjector`]: compiles a plan onto virtual time
//!   and applies it, interleaved with simulation progress; it is a
//!   kernel `Actor`, registered ahead of the load generator so faults
//!   land at exact virtual instants under load;
//! - [`shard`] — [`FaultPlanHook`]: the topology-level subset of a plan
//!   compiled for the sharded kernel's epoch hook, so faults land at
//!   exact instants on every shard's copy of the topology;
//! - [`oracle`] — [`RecoveryOracle`] / [`RecoveryReport`]: computes
//!   per-fault MTTR and in-window availability from the observe event
//!   stream, and snapshots the at-most-once counters
//!   (`duplicate_dispatches` must stay zero);
//! - [`linear`] — [`GroupOracle`] / [`ConsistencyReport`]: replays the
//!   event stream of quorum-replicated groups and audits the
//!   consensus-safety invariants (epochs strictly increase, at most one
//!   leader per epoch, committed updates survive view changes, reads
//!   observe committed state only);
//! - [`driver`] — [`run_scenario_under_faults`]: the one-call harness
//!   tying a workload scenario, a fault plan, and the oracles together.
//!
//! Everything runs on `rmodp-netsim` virtual time with dedicated seeded
//! RNGs: the same seed produces the same fault trace, the same observe
//! stream, and byte-identical reports.
//!
//! [`FaultPlan`]: plan::FaultPlan
//! [`FaultInjector`]: inject::FaultInjector
//! [`FaultPlanHook`]: shard::FaultPlanHook
//! [`RecoveryOracle`]: oracle::RecoveryOracle
//! [`RecoveryReport`]: oracle::RecoveryReport
//! [`GroupOracle`]: linear::GroupOracle
//! [`ConsistencyReport`]: linear::ConsistencyReport
//! [`run_scenario_under_faults`]: driver::run_scenario_under_faults

pub mod driver;
pub mod inject;
pub mod linear;
pub mod oracle;
pub mod plan;
pub mod shard;

/// Commonly used items.
pub mod prelude {
    pub use crate::driver::{run_scenario_under_faults, ChaosOutcome};
    pub use crate::inject::{AppliedFault, FaultInjector};
    pub use crate::linear::{ConsistencyReport, GroupConsistency, GroupOracle};
    pub use crate::oracle::{FaultRecovery, RecoveryOracle, RecoveryReport};
    pub use crate::plan::{ChaosProfile, FaultEvent, FaultKind, FaultPlan};
    pub use crate::shard::FaultPlanHook;
}
