//! The ODP data model: [`Value`].
//!
//! Every piece of data that crosses an interface in this realisation —
//! operation parameters and results, information-object state, trader
//! service properties, cluster checkpoints — is a [`Value`]. Keeping a single
//! closed data model is what makes the access-transparency stubs (§9.1) able
//! to marshal *any* interaction between heterogeneous representations.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically-typed ODP data value.
///
/// `Record` uses a `BTreeMap` so that values have a canonical field order:
/// equality, hashing of encodings, and the deterministic simulator all rely
/// on that stability.
///
/// # Example
///
/// ```
/// use rmodp_core::value::Value;
///
/// let v = Value::record([
///     ("balance", Value::Int(250)),
///     ("owner", Value::text("alice")),
/// ]);
/// assert_eq!(v.field("balance"), Some(&Value::Int(250)));
/// assert_eq!(v.path(&["owner"]).unwrap().as_text(), Some("alice"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// The absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
    /// A UTF-8 string.
    Text(String),
    /// An opaque byte string.
    Blob(Vec<u8>),
    /// An ordered sequence of values.
    Seq(Vec<Value>),
    /// A record of named fields in canonical (sorted) order.
    Record(BTreeMap<String, Value>),
    /// A reference to an interface (or other identified entity), carried as
    /// the raw identifier. References are resolved by the infrastructure,
    /// never dereferenced by value code.
    Ref(u64),
}

impl Value {
    /// Convenience constructor for a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Convenience constructor for a record from `(name, value)` pairs.
    ///
    /// Later duplicates overwrite earlier ones, mirroring map insertion.
    pub fn record<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(fields: I) -> Self {
        Value::Record(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for a sequence.
    pub fn seq<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Value::Seq(items.into_iter().collect())
    }

    /// Returns the boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float inside, widening an `Int` if necessary.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string inside, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the sequence inside, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the field map inside, if this is a `Record`.
    pub fn as_record(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Record(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the raw reference inside, if this is a `Ref`.
    pub fn as_ref_id(&self) -> Option<u64> {
        match self {
            Value::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// Looks up a field of a record value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.as_record().and_then(|r| r.get(name))
    }

    /// Mutable field lookup on a record value.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut Value> {
        match self {
            Value::Record(fields) => fields.get_mut(name),
            _ => None,
        }
    }

    /// Sets (or inserts) a field on a record value.
    ///
    /// Returns the previous value if the field existed.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a `Record`; mutating a non-record as a record
    /// is a logic error in the caller.
    pub fn set_field(&mut self, name: impl Into<String>, value: Value) -> Option<Value> {
        match self {
            Value::Record(fields) => fields.insert(name.into(), value),
            other => panic!("set_field on non-record value {other:?}"),
        }
    }

    /// Resolves a dotted path through nested records.
    pub fn path(&self, segments: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for seg in segments {
            cur = cur.field(seg)?;
        }
        Some(cur)
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Blob(_) => "blob",
            Value::Seq(_) => "seq",
            Value::Record(_) => "record",
            Value::Ref(_) => "ref",
        }
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Structural size: the number of leaf values contained, counting this
    /// value itself when it is a leaf. Useful for workload generators.
    pub fn size(&self) -> usize {
        match self {
            Value::Seq(items) => items.iter().map(Value::size).sum::<usize>().max(1),
            Value::Record(fields) => fields.values().map(Value::size).sum::<usize>().max(1),
            _ => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Blob(b) => write!(f, "blob[{}]", b.len()),
            Value::Seq(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Ref(id) => write!(f, "ref({id})"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Seq(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fields_are_canonically_ordered() {
        let a = Value::record([("b", Value::Int(2)), ("a", Value::Int(1))]);
        let b = Value::record([("a", Value::Int(1)), ("b", Value::Int(2))]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "{a: 1, b: 2}");
    }

    #[test]
    fn path_resolves_nested_records() {
        let v = Value::record([("account", Value::record([("balance", Value::Int(500))]))]);
        assert_eq!(v.path(&["account", "balance"]), Some(&Value::Int(500)));
        assert_eq!(v.path(&["account", "missing"]), None);
        assert_eq!(v.path(&["nope"]), None);
    }

    #[test]
    fn accessors_reject_wrong_shapes() {
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Null.as_text(), None);
        assert_eq!(Value::text("x").as_seq(), None);
    }

    #[test]
    fn as_float_widens_ints() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
    }

    #[test]
    fn set_field_replaces_and_inserts() {
        let mut v = Value::record([("x", Value::Int(1))]);
        assert_eq!(v.set_field("x", Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(v.set_field("y", Value::Int(3)), None);
        assert_eq!(v.field("x"), Some(&Value::Int(2)));
        assert_eq!(v.field("y"), Some(&Value::Int(3)));
    }

    #[test]
    #[should_panic(expected = "set_field on non-record")]
    fn set_field_on_non_record_panics() {
        let mut v = Value::Int(1);
        v.set_field("x", Value::Null);
    }

    #[test]
    fn size_counts_leaves() {
        assert_eq!(Value::Int(1).size(), 1);
        let v = Value::record([
            ("a", Value::seq([Value::Int(1), Value::Int(2)])),
            ("b", Value::text("x")),
        ]);
        assert_eq!(v.size(), 3);
        // Empty containers still count as one unit of structure.
        assert_eq!(Value::seq([]).size(), 1);
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Float(0.0),
            Value::text(""),
            Value::Blob(vec![]),
            Value::seq([]),
            Value::record::<&str, _>([]),
            Value::Ref(0),
        ] {
            assert!(!v.to_string().is_empty(), "{v:?}");
        }
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::text("hi"));
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::seq([Value::Int(1), Value::Int(2)])
        );
    }
}
