//! Lexer for the expression language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    True,
    False,
    Null,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    In,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Null => write!(f, "null"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Not => write!(f, "not"),
            Token::In => write!(f, "in"),
        }
    }
}

/// A token plus its byte offset in the source, for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises expression source text.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings, malformed numbers or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => push(&mut out, Token::LParen, start, &mut i),
            ')' => push(&mut out, Token::RParen, start, &mut i),
            '[' => push(&mut out, Token::LBracket, start, &mut i),
            ']' => push(&mut out, Token::RBracket, start, &mut i),
            ',' => push(&mut out, Token::Comma, start, &mut i),
            '.' => push(&mut out, Token::Dot, start, &mut i),
            '+' => push(&mut out, Token::Plus, start, &mut i),
            '-' => push(&mut out, Token::Minus, start, &mut i),
            '*' => push(&mut out, Token::Star, start, &mut i),
            '/' => push(&mut out, Token::Slash, start, &mut i),
            '%' => push(&mut out, Token::Percent, start, &mut i),
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::EqEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "expected '==' (single '=' is not assignment here)".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, Token::Not, start, &mut i);
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, Token::Lt, start, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    push(&mut out, Token::Gt, start, &mut i);
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Spanned {
                        token: Token::And,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Spanned {
                        token: Token::Or,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "expected '||'".into(),
                    });
                }
            }
            '"' => {
                let (s, next) = lex_string(src, i)?;
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(src, i)?;
                out.push(Spanned {
                    token: tok,
                    offset: start,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &src[i..j];
                let tok = match word {
                    "true" => Token::True,
                    "false" => Token::False,
                    "null" => Token::Null,
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    "in" => Token::In,
                    _ => Token::Ident(word.to_owned()),
                };
                out.push(Spanned {
                    token: tok,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn push(out: &mut Vec<Spanned>, token: Token, offset: usize, i: &mut usize) {
    out.push(Spanned { token, offset });
    *i += 1;
}

fn lex_string(src: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = src.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((s, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).ok_or_else(|| LexError {
                    offset: i,
                    message: "dangling escape".into(),
                })?;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    other => {
                        return Err(LexError {
                            offset: i,
                            message: format!("unknown escape '\\{}'", *other as char),
                        })
                    }
                }
                i += 2;
            }
            _ => {
                // Consume a full UTF-8 scalar, not just a byte.
                let ch = src[i..].chars().next().expect("valid utf-8");
                s.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(LexError {
        offset: start,
        message: "unterminated string literal".into(),
    })
}

fn lex_number(src: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = src.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    // A '.' followed by a digit continues a float; a bare '.' is field access.
    if i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        is_float = true;
        i += 1;
        if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
            i += 1;
        }
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    let text = &src[start..i];
    let tok = if is_float {
        Token::Float(text.parse().map_err(|_| LexError {
            offset: start,
            message: format!("malformed float {text:?}"),
        })?)
    } else {
        Token::Int(text.parse().map_err(|_| LexError {
            offset: start,
            message: format!("integer out of range {text:?}"),
        })?)
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_operators_and_keywords() {
        assert_eq!(
            toks("a and b or not c"),
            vec![
                Token::Ident("a".into()),
                Token::And,
                Token::Ident("b".into()),
                Token::Or,
                Token::Not,
                Token::Ident("c".into()),
            ]
        );
        assert_eq!(toks("&& || !"), vec![Token::And, Token::Or, Token::Not]);
    }

    #[test]
    fn lexes_comparisons() {
        assert_eq!(
            toks("== != < <= > >="),
            vec![
                Token::EqEq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("3.5"), vec![Token::Float(3.5)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Float(0.25)]);
    }

    #[test]
    fn dot_after_int_is_field_access_not_float() {
        assert_eq!(
            toks("a.b"),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into())
            ]
        );
        // `1.x` lexes as Int, Dot, Ident — the parser rejects it later.
        assert_eq!(
            toks("1.x"),
            vec![Token::Int(1), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""hi \"there\"\n""#),
            vec![Token::Str("hi \"there\"\n".into())]
        );
        assert_eq!(toks("\"héllo\""), vec![Token::Str("héllo".into())]);
    }

    #[test]
    fn reports_errors_with_offsets() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.offset, 2);
        let err = lex("\"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = lex("a = b").unwrap_err();
        assert!(err.message.contains("=="));
        let err = lex("a & b").unwrap_err();
        assert!(err.message.contains("&&"));
    }

    #[test]
    fn keywords_do_not_swallow_identifiers() {
        assert_eq!(toks("android"), vec![Token::Ident("android".into())]);
        assert_eq!(toks("origin"), vec![Token::Ident("origin".into())]);
        assert_eq!(toks("notx"), vec![Token::Ident("notx".into())]);
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(lex("99999999999999999999").is_err());
    }
}
