//! Evaluator for the expression language.

use std::collections::BTreeMap;
use std::fmt;

use super::{BinOp, Expr, UnOp};
use crate::value::Value;

/// An environment binding variable paths to values.
///
/// Implemented for [`Value`] (records resolve dotted paths), for
/// `BTreeMap<String, Value>` and for `()` (the empty environment).
pub trait Env {
    /// Resolves a dotted variable path, or `None` if unbound.
    fn lookup(&self, path: &[String]) -> Option<Value>;
}

impl Env for Value {
    fn lookup(&self, path: &[String]) -> Option<Value> {
        let segs: Vec<&str> = path.iter().map(String::as_str).collect();
        self.path(&segs).cloned()
    }
}

impl Env for BTreeMap<String, Value> {
    fn lookup(&self, path: &[String]) -> Option<Value> {
        let (head, rest) = path.split_first()?;
        let root = self.get(head)?;
        if rest.is_empty() {
            Some(root.clone())
        } else {
            let segs: Vec<&str> = rest.iter().map(String::as_str).collect();
            root.path(&segs).cloned()
        }
    }
}

impl Env for () {
    fn lookup(&self, _path: &[String]) -> Option<Value> {
        None
    }
}

/// An evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable path was not bound in the environment.
    Undefined { path: String },
    /// Operand or result types did not fit the operation.
    TypeMismatch { context: String, got: String },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A builtin was called with the wrong number of arguments.
    WrongArity {
        function: String,
        expected: usize,
        got: usize,
    },
    /// No builtin with this name exists.
    UnknownFunction { name: String },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Undefined { path } => write!(f, "undefined variable {path}"),
            EvalError::TypeMismatch { context, got } => {
                write!(f, "type mismatch in {context}: got {got}")
            }
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::WrongArity {
                function,
                expected,
                got,
            } => {
                write!(f, "{function} expects {expected} argument(s), got {got}")
            }
            EvalError::UnknownFunction { name } => write!(f, "unknown function {name}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates an expression in an environment.
pub fn eval(expr: &Expr, env: &dyn Env) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(path) => env.lookup(path).ok_or_else(|| EvalError::Undefined {
            path: path.join("."),
        }),
        Expr::SeqLit(items) => {
            let vals: Result<Vec<Value>, EvalError> = items.iter().map(|e| eval(e, env)).collect();
            Ok(Value::Seq(vals?))
        }
        Expr::Unary(UnOp::Neg, e) => match eval(e, env)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(mismatch("negation", &other)),
        },
        Expr::Unary(UnOp::Not, e) => match eval(e, env)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(mismatch("logical not", &other)),
        },
        Expr::Binary(BinOp::And, a, b) => {
            // Short-circuit: the right operand is not evaluated when the
            // left is false, so `exists(x) and x > 0` is safe.
            match eval(a, env)? {
                Value::Bool(false) => Ok(Value::Bool(false)),
                Value::Bool(true) => expect_bool("and", eval(b, env)?),
                other => Err(mismatch("and", &other)),
            }
        }
        Expr::Binary(BinOp::Or, a, b) => match eval(a, env)? {
            Value::Bool(true) => Ok(Value::Bool(true)),
            Value::Bool(false) => expect_bool("or", eval(b, env)?),
            other => Err(mismatch("or", &other)),
        },
        Expr::Binary(op, a, b) => {
            let va = eval(a, env)?;
            let vb = eval(b, env)?;
            apply_binary(*op, va, vb)
        }
        Expr::Call(name, args) => call(name, args, env),
    }
}

fn expect_bool(context: &str, v: Value) -> Result<Value, EvalError> {
    match v {
        Value::Bool(_) => Ok(v),
        other => Err(mismatch(context, &other)),
    }
}

fn mismatch(context: &str, got: &Value) -> EvalError {
    EvalError::TypeMismatch {
        context: context.to_owned(),
        got: got.kind().to_owned(),
    }
}

fn apply_binary(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Add => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(y))),
            (Value::Text(x), Value::Text(y)) => Ok(Value::Text(x + &y)),
            (Value::Seq(mut x), Value::Seq(y)) => {
                x.extend(y);
                Ok(Value::Seq(x))
            }
            (x, y) => numeric(op, x, y, |a, b| a + b),
        },
        Sub => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_sub(y))),
            (x, y) => numeric(op, x, y, |a, b| a - b),
        },
        Mul => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_mul(y))),
            (x, y) => numeric(op, x, y, |a, b| a * b),
        },
        Div => match (a, b) {
            (Value::Int(_), Value::Int(0)) => Err(EvalError::DivideByZero),
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_div(y))),
            (x, y) => numeric(op, x, y, |a, b| a / b),
        },
        Rem => match (a, b) {
            (Value::Int(_), Value::Int(0)) => Err(EvalError::DivideByZero),
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_rem(y))),
            (x, y) => numeric(op, x, y, |a, b| a % b),
        },
        Eq => Ok(Value::Bool(loose_eq(&a, &b))),
        Ne => Ok(Value::Bool(!loose_eq(&a, &b))),
        Lt | Le | Gt | Ge => {
            let ord = compare(op, &a, &b)?;
            let pass = match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(pass))
        }
        In => match &b {
            Value::Seq(items) => Ok(Value::Bool(items.iter().any(|v| loose_eq(v, &a)))),
            Value::Text(hay) => match &a {
                Value::Text(needle) => Ok(Value::Bool(hay.contains(needle.as_str()))),
                other => Err(mismatch("in (substring)", other)),
            },
            other => Err(mismatch("in (membership)", other)),
        },
        And | Or => unreachable!("short-circuit ops handled in eval"),
    }
}

fn numeric(op: BinOp, a: Value, b: Value, f: impl Fn(f64, f64) -> f64) -> Result<Value, EvalError> {
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => Ok(Value::Float(f(x, y))),
        _ => Err(EvalError::TypeMismatch {
            context: format!("operator {}", op.symbol()),
            got: format!("{} and {}", a.kind(), b.kind()),
        }),
    }
}

/// Equality with Int/Float unification (`1 == 1.0` is true).
fn loose_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

fn compare(op: BinOp, a: &Value, b: &Value) -> Result<std::cmp::Ordering, EvalError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Text(x), Value::Text(y)) => Ok(x.cmp(y)),
        _ => match (a.as_float(), b.as_float()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).ok_or_else(|| EvalError::TypeMismatch {
                context: format!("operator {}", op.symbol()),
                got: "NaN".to_owned(),
            }),
            _ => Err(EvalError::TypeMismatch {
                context: format!("operator {}", op.symbol()),
                got: format!("{} and {}", a.kind(), b.kind()),
            }),
        },
    }
}

fn call(name: &str, args: &[Expr], env: &dyn Env) -> Result<Value, EvalError> {
    // `exists` is a special form: its argument is a path, not a value.
    if name == "exists" {
        if args.len() != 1 {
            return Err(EvalError::WrongArity {
                function: "exists".into(),
                expected: 1,
                got: args.len(),
            });
        }
        return match &args[0] {
            Expr::Var(path) => Ok(Value::Bool(env.lookup(path).is_some())),
            _ => Err(EvalError::TypeMismatch {
                context: "exists".into(),
                got: "non-variable argument".into(),
            }),
        };
    }

    let vals: Result<Vec<Value>, EvalError> = args.iter().map(|e| eval(e, env)).collect();
    let vals = vals?;
    let arity = |n: usize| -> Result<(), EvalError> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(EvalError::WrongArity {
                function: name.to_owned(),
                expected: n,
                got: vals.len(),
            })
        }
    };
    match name {
        "len" => {
            arity(1)?;
            match &vals[0] {
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Seq(items) => Ok(Value::Int(items.len() as i64)),
                Value::Blob(b) => Ok(Value::Int(b.len() as i64)),
                other => Err(mismatch("len", other)),
            }
        }
        "abs" => {
            arity(1)?;
            match &vals[0] {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                other => Err(mismatch("abs", other)),
            }
        }
        "min" | "max" => {
            arity(2)?;
            let take_first = {
                let ord = compare(BinOp::Lt, &vals[0], &vals[1])?;
                if name == "min" {
                    ord != std::cmp::Ordering::Greater
                } else {
                    ord == std::cmp::Ordering::Greater
                }
            };
            Ok(vals[if take_first { 0 } else { 1 }].clone())
        }
        "contains" => {
            arity(2)?;
            match (&vals[0], &vals[1]) {
                (Value::Text(hay), Value::Text(needle)) => {
                    Ok(Value::Bool(hay.contains(needle.as_str())))
                }
                (Value::Seq(items), v) => Ok(Value::Bool(items.iter().any(|x| loose_eq(x, v)))),
                (other, _) => Err(mismatch("contains", other)),
            }
        }
        "starts_with" => {
            arity(2)?;
            match (&vals[0], &vals[1]) {
                (Value::Text(hay), Value::Text(prefix)) => {
                    Ok(Value::Bool(hay.starts_with(prefix.as_str())))
                }
                (other, _) => Err(mismatch("starts_with", other)),
            }
        }
        _ => Err(EvalError::UnknownFunction {
            name: name.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn run(src: &str, env: &dyn Env) -> Result<Value, EvalError> {
        Expr::parse(src).unwrap().eval(env)
    }

    fn ok(src: &str, env: &dyn Env) -> Value {
        run(src, env).unwrap()
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(ok("1 + 2 * 3", &()), Value::Int(7));
        assert_eq!(ok("7 / 2", &()), Value::Int(3));
        assert_eq!(ok("7 % 2", &()), Value::Int(1));
        assert_eq!(ok("-(3 - 5)", &()), Value::Int(2));
    }

    #[test]
    fn mixed_arithmetic_widens_to_float() {
        assert_eq!(ok("1 + 2.5", &()), Value::Float(3.5));
        assert_eq!(ok("5 / 2.0", &()), Value::Float(2.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(run("1 / 0", &()), Err(EvalError::DivideByZero));
        assert_eq!(run("1 % 0", &()), Err(EvalError::DivideByZero));
    }

    #[test]
    fn text_concatenation_and_comparison() {
        assert_eq!(ok("\"foo\" + \"bar\"", &()), Value::text("foobar"));
        assert_eq!(ok("\"abc\" < \"abd\"", &()), Value::Bool(true));
    }

    #[test]
    fn seq_concatenation_and_membership() {
        assert_eq!(
            ok("[1] + [2, 3]", &()),
            Value::seq([Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(ok("2 in [1, 2, 3]", &()), Value::Bool(true));
        assert_eq!(ok("9 in [1, 2, 3]", &()), Value::Bool(false));
        assert_eq!(ok("\"ell\" in \"hello\"", &()), Value::Bool(true));
    }

    #[test]
    fn loose_equality_unifies_int_and_float() {
        assert_eq!(ok("1 == 1.0", &()), Value::Bool(true));
        assert_eq!(ok("1 != 1.5", &()), Value::Bool(true));
        assert_eq!(ok("1 == \"1\"", &()), Value::Bool(false));
    }

    #[test]
    fn short_circuit_protects_right_operand() {
        // `x` is unbound; the guard prevents evaluation.
        assert_eq!(ok("exists(x) and x > 0", &()), Value::Bool(false));
        assert_eq!(ok("true or (1 / 0 == 0)", &()), Value::Bool(true));
        // Without short-circuiting this would be DivideByZero.
        assert_eq!(run("false and (1 / 0 == 0)", &()), Ok(Value::Bool(false)));
    }

    #[test]
    fn variables_resolve_through_records() {
        let env = Value::record([("acct", Value::record([("balance", Value::Int(42))]))]);
        assert_eq!(ok("acct.balance + 1", &env), Value::Int(43));
        assert_eq!(
            run("acct.missing", &env),
            Err(EvalError::Undefined {
                path: "acct.missing".into()
            })
        );
    }

    #[test]
    fn builtins() {
        assert_eq!(ok("len(\"héllo\")", &()), Value::Int(5));
        assert_eq!(ok("len([1, 2])", &()), Value::Int(2));
        assert_eq!(ok("abs(-4)", &()), Value::Int(4));
        assert_eq!(ok("abs(-4.5)", &()), Value::Float(4.5));
        assert_eq!(ok("min(3, 5)", &()), Value::Int(3));
        assert_eq!(ok("max(3, 5.5)", &()), Value::Float(5.5));
        assert_eq!(ok("contains(\"hello\", \"ell\")", &()), Value::Bool(true));
        assert_eq!(ok("contains([1, 2], 2)", &()), Value::Bool(true));
        assert_eq!(ok("starts_with(\"bank\", \"ba\")", &()), Value::Bool(true));
    }

    #[test]
    fn builtin_errors() {
        assert!(matches!(
            run("len(1)", &()),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert_eq!(
            run("len()", &()),
            Err(EvalError::WrongArity {
                function: "len".into(),
                expected: 1,
                got: 0
            })
        );
        assert_eq!(
            run("frobnicate(1)", &()),
            Err(EvalError::UnknownFunction {
                name: "frobnicate".into()
            })
        );
        assert!(matches!(
            run("exists(1 + 2)", &()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn predicate_result_must_be_bool() {
        let e = Expr::parse("1 + 1").unwrap();
        assert!(e.eval_bool(&()).is_err());
        let e = Expr::parse("1 + 1 == 2").unwrap();
        assert_eq!(e.eval_bool(&()), Ok(true));
    }

    #[test]
    fn comparison_rejects_incomparable_kinds() {
        assert!(matches!(
            run("true < 1", &()),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert!(matches!(
            run("\"a\" < 1", &()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn the_paper_daily_limit_predicate() {
        // §4: "the amount-withdrawn-today is less than or equal to $500".
        let invariant = Expr::parse("withdrawn_today <= 500").unwrap();
        let morning = Value::record([("withdrawn_today", Value::Int(400))]);
        let afternoon = Value::record([("withdrawn_today", Value::Int(600))]);
        assert_eq!(invariant.eval_bool(&morning), Ok(true));
        assert_eq!(invariant.eval_bool(&afternoon), Ok(false));
    }
}
