//! A small, total expression language over [`Value`]s.
//!
//! One language serves three corners of the reference model:
//!
//! - **information viewpoint** (§4): invariant and dynamic schemas are
//!   predicates over object state — e.g. `withdrawn_today <= 500`;
//! - **enterprise viewpoint** (§3): policy conditions — e.g.
//!   `role == "manager" or amount < 500`;
//! - **trading function** (§8.3.2): importer constraints over service
//!   properties — e.g. `latency_ms <= 20 and region == "bne"`.
//!
//! The pipeline is conventional: lex → [`parse`](Expr::parse)
//! → [`eval`](Expr::eval) with optional static [`infer`](Expr::infer)ence
//! against a record [`DataType`](crate::dtype::DataType).
//!
//! # Grammar
//!
//! ```text
//! expr    := or
//! or      := and  (("or"  | "||") and)*
//! and     := cmp  (("and" | "&&") cmp)*
//! cmp     := add  (("=="|"!="|"<"|"<="|">"|">="|"in") add)?
//! add     := mul  (("+"|"-") mul)*
//! mul     := unary (("*"|"/"|"%") unary)*
//! unary   := ("-"|"!"|"not") unary | primary
//! primary := literal | path | func "(" args ")" | "(" expr ")" | "[" args "]"
//! path    := ident ("." ident)*
//! ```

mod analyze;
mod eval;
mod infer;
mod parser;
mod token;

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

pub use analyze::{Atom, Comparison};
pub use eval::{Env, EvalError};
pub use infer::InferError;
pub use parser::ParseError;

/// A parsed expression.
///
/// # Example
///
/// ```
/// use rmodp_core::expr::Expr;
/// use rmodp_core::value::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let e = Expr::parse("balance - amount >= 0")?;
/// let env = Value::record([
///     ("balance", Value::Int(300)),
///     ("amount", Value::Int(120)),
/// ]);
/// assert_eq!(e.eval(&env)?, Value::Bool(true));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A (possibly dotted) variable reference, e.g. `old.balance`.
    Var(Vec<String>),
    /// A unary operator application.
    Unary(UnOp, Box<Expr>),
    /// A binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A builtin function call.
    Call(String, Vec<Expr>),
    /// A sequence literal, e.g. `[1, 2, 3]`.
    SeqLit(Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation (`!` or `not`).
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition; concatenation on `Text` and `Seq`.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer on two `Int`s).
    Div,
    /// Remainder.
    Rem,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Short-circuit conjunction.
    And,
    /// Short-circuit disjunction.
    Or,
    /// Membership: element in sequence, or substring in text.
    In,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::In => "in",
        }
    }
}

impl Expr {
    /// Parses an expression from source text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the offending character or token.
    pub fn parse(src: &str) -> Result<Expr, ParseError> {
        parser::parse(src)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Shorthand for a simple (undotted) variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(vec![name.into()])
    }

    /// Evaluates the expression against an environment.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] for unbound variables, operand type
    /// mismatches, division by zero, or bad builtin arity.
    pub fn eval(&self, env: &dyn Env) -> Result<Value, EvalError> {
        eval::eval(self, env)
    }

    /// Evaluates and requires a boolean result — the common case for
    /// schema and policy predicates.
    ///
    /// # Errors
    ///
    /// As [`Self::eval`], plus a type mismatch if the result is not a bool.
    pub fn eval_bool(&self, env: &dyn Env) -> Result<bool, EvalError> {
        match self.eval(env)? {
            Value::Bool(b) => Ok(b),
            other => Err(EvalError::TypeMismatch {
                context: "predicate result".to_owned(),
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Infers the result type of the expression against a typed environment
    /// (a record type mapping variable names to their types).
    ///
    /// # Errors
    ///
    /// Returns an [`InferError`] if a variable is unknown or operand types
    /// cannot be reconciled.
    pub fn infer(
        &self,
        env: &crate::dtype::DataType,
    ) -> Result<crate::dtype::DataType, InferError> {
        infer::infer(self, env)
    }

    /// All variable paths mentioned by the expression, in first-appearance
    /// order (used by the trader to reject constraints over absent
    /// properties before evaluation).
    pub fn variables(&self) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Vec<String>>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(path) => {
                if !out.contains(path) {
                    out.push(path.clone());
                }
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Call(_, args) | Expr::SeqLit(args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(path) => write!(f, "{}", path.join(".")),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(not {e})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::SeqLit(items) => {
                write!(f, "[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A convenient layered environment: named top-level bindings, with dotted
/// paths descending into record values.
///
/// # Example
///
/// ```
/// use rmodp_core::expr::{Expr, Scope};
/// use rmodp_core::value::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut scope = Scope::new();
/// scope.bind("old", Value::record([("balance", Value::Int(500))]));
/// scope.bind("new", Value::record([("balance", Value::Int(400))]));
/// scope.bind("amount", Value::Int(100));
/// let e = Expr::parse("new.balance == old.balance - amount")?;
/// assert_eq!(e.eval(&scope)?, Value::Bool(true));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scope {
    bindings: BTreeMap<String, Value>,
}

impl Scope {
    /// Creates an empty scope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds (or rebinds) a name.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Returns the value bound to a top-level name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings.get(name)
    }
}

impl Env for Scope {
    fn lookup(&self, path: &[String]) -> Option<Value> {
        let (head, rest) = path.split_first()?;
        let root = self.bindings.get(head)?;
        if rest.is_empty() {
            return Some(root.clone());
        }
        let segs: Vec<&str> = rest.iter().map(String::as_str).collect();
        root.path(&segs).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        let srcs = [
            "a + b * c",
            "not (x == 1) or y in [1, 2, 3]",
            "len(name) > 3 and starts_with(name, \"ba\")",
            "old.balance - amount >= 0",
        ];
        for src in srcs {
            let e = Expr::parse(src).unwrap();
            let printed = e.to_string();
            let e2 = Expr::parse(&printed).unwrap();
            assert_eq!(e, e2, "{src} -> {printed}");
        }
    }

    #[test]
    fn variables_lists_paths_once_in_order() {
        let e = Expr::parse("a.b + c * a.b - d").unwrap();
        assert_eq!(
            e.variables(),
            vec![
                vec!["a".to_owned(), "b".to_owned()],
                vec!["c".to_owned()],
                vec!["d".to_owned()],
            ]
        );
    }

    #[test]
    fn scope_layers_names_over_records() {
        let mut s = Scope::new();
        s.bind("x", Value::Int(1));
        s.bind("r", Value::record([("y", Value::Int(2))]));
        assert_eq!(s.lookup(&["x".into()]), Some(Value::Int(1)));
        assert_eq!(s.lookup(&["r".into(), "y".into()]), Some(Value::Int(2)));
        assert_eq!(s.lookup(&["r".into(), "z".into()]), None);
        assert_eq!(s.lookup(&["missing".into()]), None);
    }
}
