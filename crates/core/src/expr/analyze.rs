//! Static analysis of expressions for query planning.
//!
//! The trader (§8.3.2) compiles importer constraints into index-backed
//! query plans. The planner needs two syntactic facts about a
//! constraint, both provided here:
//!
//! - its **conjuncts**: the operands of the top-level `and` tree
//!   ([`Expr::conjuncts`]). An offer matches the whole constraint only
//!   if every conjunct evaluates to `true` on it (a conjunct that
//!   evaluates to `false` or to an error makes the whole constraint
//!   false-or-error — either way, no match), so any single conjunct is
//!   a sound pre-filter;
//! - which conjuncts are **sargable atoms**: comparisons of one
//!   property path against one scalar literal
//!   ([`Expr::index_atoms`]), the shapes a secondary index can serve.
//!
//! The analysis is purely syntactic and err on the side of returning
//! *fewer* atoms: anything it cannot classify simply stays in the
//! residual predicate and is evaluated per candidate, so planning can
//! never change a query's meaning.

use super::{BinOp, Expr};
use crate::value::Value;

/// One index-servable comparison: `path op rhs`, normalised so the
/// variable path is always on the left (`10 <= ppm` becomes
/// `ppm >= 10`).
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The (dotted) property path being constrained.
    pub path: Vec<String>,
    /// The comparison operator, variable on the left.
    pub op: BinOp,
    /// The scalar literal on the right.
    pub rhs: Value,
}

/// A sargable atom extracted from one conjunct.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `path op literal` for `==`, `<`, `<=`, `>`, `>=`.
    Cmp(Comparison),
    /// `path in [lit, lit, …]`: a disjunction of point lookups.
    InSet {
        /// The constrained property path.
        path: Vec<String>,
        /// The literal members, in source order.
        values: Vec<Value>,
    },
}

impl Atom {
    /// The property path the atom constrains.
    pub fn path(&self) -> &[String] {
        match self {
            Atom::Cmp(c) => &c.path,
            Atom::InSet { path, .. } => path,
        }
    }
}

/// Whether a literal is an indexable scalar (bool, int, float, text).
fn scalar(v: &Value) -> bool {
    matches!(
        v,
        Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Text(_)
    )
}

/// Mirrors an operator across `==` / inequalities when the literal was
/// written on the left: `lit < path` means `path > lit`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn as_atom(e: &Expr) -> Option<Atom> {
    let Expr::Binary(op, lhs, rhs) = e else {
        return None;
    };
    match op {
        BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (path, op, lit) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Var(path), Expr::Lit(lit)) => (path, *op, lit),
                (Expr::Lit(lit), Expr::Var(path)) => (path, flip(*op), lit),
                _ => return None,
            };
            if !scalar(lit) {
                return None;
            }
            Some(Atom::Cmp(Comparison {
                path: path.clone(),
                op,
                rhs: lit.clone(),
            }))
        }
        BinOp::In => {
            let (Expr::Var(path), Expr::SeqLit(items)) = (lhs.as_ref(), rhs.as_ref()) else {
                return None;
            };
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Expr::Lit(v) if scalar(v) => values.push(v.clone()),
                    _ => return None,
                }
            }
            Some(Atom::InSet {
                path: path.clone(),
                values,
            })
        }
        _ => None,
    }
}

impl Expr {
    /// The operands of the top-level `and` tree, left to right. An
    /// expression that is not a conjunction is its own single conjunct.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary(BinOp::And, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// The sargable atoms among this expression's conjuncts: conjuncts
    /// of the shape `path op scalar-literal` (either side) or
    /// `path in [literals]`. Everything else is planner-opaque and
    /// must be handled by residual evaluation.
    pub fn index_atoms(&self) -> Vec<Atom> {
        self.conjuncts().into_iter().filter_map(as_atom).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Expr {
        Expr::parse(src).unwrap()
    }

    #[test]
    fn conjuncts_flatten_the_and_tree() {
        let e = parse("a > 1 and (b == 2 and c < 3) and d");
        let texts: Vec<String> = e.conjuncts().iter().map(|c| c.to_string()).collect();
        assert_eq!(texts, vec!["(a > 1)", "(b == 2)", "(c < 3)", "d"]);
        // A disjunction is one opaque conjunct.
        assert_eq!(parse("a > 1 or b > 2").conjuncts().len(), 1);
    }

    #[test]
    fn atoms_extract_simple_comparisons() {
        let e = parse("ppm >= 40 and region == \"bne\" and colour == true");
        let atoms = e.index_atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(
            atoms[0],
            Atom::Cmp(Comparison {
                path: vec!["ppm".into()],
                op: BinOp::Ge,
                rhs: Value::Int(40),
            })
        );
        assert_eq!(atoms[1].path(), ["region".to_owned()]);
    }

    #[test]
    fn flipped_literals_normalise() {
        let atoms = parse("10 <= ppm").index_atoms();
        assert_eq!(
            atoms,
            vec![Atom::Cmp(Comparison {
                path: vec!["ppm".into()],
                op: BinOp::Ge,
                rhs: Value::Int(10),
            })]
        );
        // Symmetric equality keeps ==.
        let atoms = parse("\"x\" == region").index_atoms();
        assert!(matches!(&atoms[0], Atom::Cmp(c) if c.op == BinOp::Eq));
    }

    #[test]
    fn in_sets_of_literals_are_atoms() {
        let atoms = parse("floor in [1, 2, 3]").index_atoms();
        assert_eq!(
            atoms,
            vec![Atom::InSet {
                path: vec!["floor".into()],
                values: vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            }]
        );
        // Non-literal members disqualify the atom.
        assert!(parse("floor in [1, x]").index_atoms().is_empty());
    }

    #[test]
    fn opaque_shapes_yield_no_atoms() {
        for src in [
            "ppm + 1 >= 40",  // computed lhs
            "ppm >= limit",   // variable rhs
            "ppm != 40",      // != cannot drive an index
            "a > 1 or b > 2", // disjunction
            "exists(ppm)",    // builtin
            "not (ppm < 40)", // negation is opaque
            "tags == [1, 2]", // non-scalar literal (SeqLit rhs)
            "starts_with(n, \"a\")",
        ] {
            assert!(parse(src).index_atoms().is_empty(), "{src}");
        }
        // Mixed: the sargable half still surfaces.
        let atoms = parse("(a > 1 or b > 2) and ppm >= 40").index_atoms();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].path(), ["ppm".to_owned()]);
    }

    #[test]
    fn dotted_paths_survive_extraction() {
        let atoms = parse("qos.latency_ms <= 20").index_atoms();
        assert_eq!(atoms[0].path(), ["qos".to_owned(), "latency_ms".to_owned()]);
    }
}
