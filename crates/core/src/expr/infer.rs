//! Static type inference for expressions.
//!
//! Given a record [`DataType`] describing the environment, `infer` computes
//! the type an expression will evaluate to, rejecting expressions that would
//! always fail at run time. The trader uses this to reject malformed
//! constraints at export/import time, and information schemas use it to
//! validate predicates against their static schema.

use std::fmt;

use super::{BinOp, Expr, UnOp};
use crate::dtype::DataType;
use crate::value::Value;

/// A static typing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// A variable path is not present in the environment type.
    UnknownVariable { path: String },
    /// Operand types don't fit the operator or builtin.
    Mismatch { context: String, got: String },
    /// The environment type passed to `infer` was not a record.
    BadEnvironment,
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::UnknownVariable { path } => write!(f, "unknown variable {path}"),
            InferError::Mismatch { context, got } => {
                write!(f, "type error in {context}: {got}")
            }
            InferError::BadEnvironment => write!(f, "environment type must be a record"),
        }
    }
}

impl std::error::Error for InferError {}

/// Infers the result type of `expr` in an environment of type `env`.
pub fn infer(expr: &Expr, env: &DataType) -> Result<DataType, InferError> {
    if !matches!(env, DataType::Record(_)) {
        return Err(InferError::BadEnvironment);
    }
    infer_in(expr, env)
}

fn lookup_path(env: &DataType, path: &[String]) -> Option<DataType> {
    let mut cur = env.clone();
    for seg in path {
        match cur {
            DataType::Record(fields) => {
                cur = fields.get(seg)?.clone();
            }
            _ => return None,
        }
    }
    Some(cur)
}

fn is_numeric(t: &DataType) -> bool {
    matches!(t, DataType::Int | DataType::Float)
}

fn join_numeric(a: &DataType, b: &DataType) -> DataType {
    if a == &DataType::Int && b == &DataType::Int {
        DataType::Int
    } else {
        DataType::Float
    }
}

fn comparable(a: &DataType, b: &DataType) -> bool {
    (is_numeric(a) && is_numeric(b))
        || (a == &DataType::Text && b == &DataType::Text)
        || a == &DataType::Any
        || b == &DataType::Any
}

fn mismatch(context: &str, got: impl Into<String>) -> InferError {
    InferError::Mismatch {
        context: context.to_owned(),
        got: got.into(),
    }
}

fn infer_in(expr: &Expr, env: &DataType) -> Result<DataType, InferError> {
    match expr {
        Expr::Lit(v) => Ok(type_of_literal(v)),
        Expr::Var(path) => lookup_path(env, path).ok_or_else(|| InferError::UnknownVariable {
            path: path.join("."),
        }),
        Expr::SeqLit(items) => {
            let mut elem = DataType::Any;
            for (i, item) in items.iter().enumerate() {
                let t = infer_in(item, env)?;
                if i == 0 {
                    elem = t;
                } else if elem != t {
                    elem = if is_numeric(&elem) && is_numeric(&t) {
                        join_numeric(&elem, &t)
                    } else {
                        DataType::Any
                    };
                }
            }
            Ok(DataType::seq(elem))
        }
        Expr::Unary(UnOp::Neg, e) => {
            let t = infer_in(e, env)?;
            if is_numeric(&t) || t == DataType::Any {
                Ok(if t == DataType::Any {
                    DataType::Float
                } else {
                    t
                })
            } else {
                Err(mismatch("negation", t.to_string()))
            }
        }
        Expr::Unary(UnOp::Not, e) => {
            let t = infer_in(e, env)?;
            if matches!(t, DataType::Bool | DataType::Any) {
                Ok(DataType::Bool)
            } else {
                Err(mismatch("logical not", t.to_string()))
            }
        }
        Expr::Binary(op, a, b) => {
            let ta = infer_in(a, env)?;
            let tb = infer_in(b, env)?;
            infer_binary(*op, &ta, &tb)
        }
        Expr::Call(name, args) => infer_call(name, args, env),
    }
}

fn type_of_literal(v: &Value) -> DataType {
    match v {
        Value::Null => DataType::Null,
        Value::Bool(_) => DataType::Bool,
        Value::Int(_) => DataType::Int,
        Value::Float(_) => DataType::Float,
        Value::Text(_) => DataType::Text,
        Value::Blob(_) => DataType::Blob,
        Value::Seq(_) => DataType::seq(DataType::Any),
        Value::Record(_) => DataType::record::<String, _>([]),
        Value::Ref(_) => DataType::Ref(None),
    }
}

fn infer_binary(op: BinOp, a: &DataType, b: &DataType) -> Result<DataType, InferError> {
    use BinOp::*;
    let ctx = || format!("operator {}", op.symbol());
    match op {
        Add => {
            if a == &DataType::Text && b == &DataType::Text {
                Ok(DataType::Text)
            } else if matches!((a, b), (DataType::Seq(_), DataType::Seq(_))) {
                Ok(a.clone())
            } else if (is_numeric(a) || a == &DataType::Any)
                && (is_numeric(b) || b == &DataType::Any)
            {
                Ok(join_any(a, b))
            } else {
                Err(mismatch(&ctx(), format!("{a} and {b}")))
            }
        }
        Sub | Mul | Div | Rem => {
            if (is_numeric(a) || a == &DataType::Any) && (is_numeric(b) || b == &DataType::Any) {
                Ok(join_any(a, b))
            } else {
                Err(mismatch(&ctx(), format!("{a} and {b}")))
            }
        }
        Eq | Ne => Ok(DataType::Bool),
        Lt | Le | Gt | Ge => {
            if comparable(a, b) {
                Ok(DataType::Bool)
            } else {
                Err(mismatch(&ctx(), format!("{a} and {b}")))
            }
        }
        And | Or => {
            if matches!(a, DataType::Bool | DataType::Any)
                && matches!(b, DataType::Bool | DataType::Any)
            {
                Ok(DataType::Bool)
            } else {
                Err(mismatch(&ctx(), format!("{a} and {b}")))
            }
        }
        In => match b {
            DataType::Seq(_) | DataType::Any => Ok(DataType::Bool),
            DataType::Text if matches!(a, DataType::Text | DataType::Any) => Ok(DataType::Bool),
            _ => Err(mismatch("in", format!("{a} and {b}"))),
        },
    }
}

fn join_any(a: &DataType, b: &DataType) -> DataType {
    match (a, b) {
        (DataType::Any, _) | (_, DataType::Any) => DataType::Float,
        _ => join_numeric(a, b),
    }
}

fn infer_call(name: &str, args: &[Expr], env: &DataType) -> Result<DataType, InferError> {
    let arity = |n: usize| -> Result<(), InferError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(mismatch(
                name,
                format!("expected {n} argument(s), got {}", args.len()),
            ))
        }
    };
    match name {
        "exists" => {
            arity(1)?;
            // Well-formed even when the path is absent — that is the point.
            Ok(DataType::Bool)
        }
        "len" => {
            arity(1)?;
            let t = infer_in(&args[0], env)?;
            match t {
                DataType::Text | DataType::Blob | DataType::Seq(_) | DataType::Any => {
                    Ok(DataType::Int)
                }
                other => Err(mismatch("len", other.to_string())),
            }
        }
        "abs" => {
            arity(1)?;
            let t = infer_in(&args[0], env)?;
            if is_numeric(&t) {
                Ok(t)
            } else if t == DataType::Any {
                Ok(DataType::Float)
            } else {
                Err(mismatch("abs", t.to_string()))
            }
        }
        "min" | "max" => {
            arity(2)?;
            let a = infer_in(&args[0], env)?;
            let b = infer_in(&args[1], env)?;
            if comparable(&a, &b) {
                if a == DataType::Text {
                    Ok(DataType::Text)
                } else {
                    Ok(join_any(&a, &b))
                }
            } else {
                Err(mismatch(name, format!("{a} and {b}")))
            }
        }
        "contains" => {
            arity(2)?;
            let a = infer_in(&args[0], env)?;
            infer_in(&args[1], env)?;
            match a {
                DataType::Text | DataType::Seq(_) | DataType::Any => Ok(DataType::Bool),
                other => Err(mismatch("contains", other.to_string())),
            }
        }
        "starts_with" => {
            arity(2)?;
            let a = infer_in(&args[0], env)?;
            let b = infer_in(&args[1], env)?;
            if matches!(a, DataType::Text | DataType::Any)
                && matches!(b, DataType::Text | DataType::Any)
            {
                Ok(DataType::Bool)
            } else {
                Err(mismatch("starts_with", format!("{a} and {b}")))
            }
        }
        _ => Err(mismatch("call", format!("unknown function {name}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn env() -> DataType {
        DataType::record([
            ("balance", DataType::Int),
            ("rate", DataType::Float),
            ("owner", DataType::Text),
            ("tags", DataType::seq(DataType::Text)),
            ("acct", DataType::record([("limit", DataType::Int)])),
        ])
    }

    fn ty(src: &str) -> Result<DataType, InferError> {
        infer(&Expr::parse(src).unwrap(), &env())
    }

    #[test]
    fn arithmetic_types() {
        assert_eq!(ty("balance + 1"), Ok(DataType::Int));
        assert_eq!(ty("balance + rate"), Ok(DataType::Float));
        assert_eq!(ty("-balance"), Ok(DataType::Int));
        assert_eq!(ty("owner + \"!\""), Ok(DataType::Text));
    }

    #[test]
    fn predicates_are_bool() {
        assert_eq!(ty("balance <= 500 and exists(rate)"), Ok(DataType::Bool));
        assert_eq!(ty("owner in tags"), Ok(DataType::Bool));
        assert_eq!(ty("\"a\" in owner"), Ok(DataType::Bool));
    }

    #[test]
    fn nested_paths_resolve() {
        assert_eq!(ty("acct.limit * 2"), Ok(DataType::Int));
        assert!(matches!(
            ty("acct.nope"),
            Err(InferError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn mismatches_are_rejected_statically() {
        assert!(ty("owner + 1").is_err());
        assert!(ty("balance and true").is_err());
        assert!(ty("not balance").is_err());
        assert!(ty("len(balance)").is_err());
        assert!(ty("1 in owner").is_err());
    }

    #[test]
    fn unknown_variables_are_rejected() {
        assert_eq!(
            ty("ghost > 0"),
            Err(InferError::UnknownVariable {
                path: "ghost".into()
            })
        );
    }

    #[test]
    fn builtins_infer() {
        assert_eq!(ty("len(tags)"), Ok(DataType::Int));
        assert_eq!(ty("abs(rate)"), Ok(DataType::Float));
        assert_eq!(ty("min(balance, acct.limit)"), Ok(DataType::Int));
        assert_eq!(ty("max(balance, rate)"), Ok(DataType::Float));
        assert_eq!(ty("min(owner, owner)"), Ok(DataType::Text));
        assert_eq!(ty("contains(tags, owner)"), Ok(DataType::Bool));
        assert_eq!(ty("starts_with(owner, \"a\")"), Ok(DataType::Bool));
    }

    #[test]
    fn seq_literal_types() {
        assert_eq!(ty("[1, 2, 3]"), Ok(DataType::seq(DataType::Int)));
        assert_eq!(ty("[1, 2.5]"), Ok(DataType::seq(DataType::Float)));
        assert_eq!(ty("[1, \"a\"]"), Ok(DataType::seq(DataType::Any)));
    }

    #[test]
    fn environment_must_be_record() {
        let e = Expr::parse("1 + 1").unwrap();
        assert_eq!(infer(&e, &DataType::Int), Err(InferError::BadEnvironment));
    }
}
