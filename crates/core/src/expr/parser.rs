//! Recursive-descent parser for the expression language.

use std::fmt;

use super::token::{lex, LexError, Spanned, Token};
use super::{BinOp, Expr, UnOp};
use crate::value::Value;

/// A syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source (source length for "unexpected end").
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            offset: e.offset,
            message: e.message,
        }
    }
}

/// Parses a complete expression; trailing tokens are an error.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: src.len(),
    };
    let e = p.or_expr()?;
    if let Some(t) = p.peek() {
        return Err(ParseError {
            offset: t.offset,
            message: format!("unexpected trailing token {}", t.token),
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek().map(|s| &s.token) == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(s) if &s.token == want => Ok(()),
            Some(s) => Err(ParseError {
                offset: s.offset,
                message: format!("expected {want}, found {}", s.token),
            }),
            None => Err(ParseError {
                offset: self.end,
                message: format!("expected {want}, found end of input"),
            }),
        }
    }

    fn unexpected_end(&self, what: &str) -> ParseError {
        ParseError {
            offset: self.end,
            message: format!("expected {what}, found end of input"),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().map(|s| &s.token) {
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::In) => Some(BinOp::In),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|s| &s.token) {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|s| &s.token) {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().map(|s| &s.token) {
            Some(Token::Minus) => {
                self.pos += 1;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Some(Token::Not) => {
                self.pos += 1;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let t = self
            .next()
            .ok_or_else(|| self.unexpected_end("expression"))?;
        match t.token {
            Token::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            Token::Float(x) => Ok(Expr::Lit(Value::Float(x))),
            Token::Str(s) => Ok(Expr::Lit(Value::Text(s))),
            Token::True => Ok(Expr::Lit(Value::Bool(true))),
            Token::False => Ok(Expr::Lit(Value::Bool(false))),
            Token::Null => Ok(Expr::Lit(Value::Null)),
            Token::LParen => {
                let e = self.or_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::LBracket => {
                let items = self.expr_list(&Token::RBracket)?;
                Ok(Expr::SeqLit(items))
            }
            Token::Ident(name) => {
                if self.eat(&Token::LParen) {
                    let args = self.expr_list(&Token::RParen)?;
                    return Ok(Expr::Call(name, args));
                }
                let mut path = vec![name];
                while self.eat(&Token::Dot) {
                    match self.next() {
                        Some(Spanned {
                            token: Token::Ident(seg),
                            ..
                        }) => path.push(seg),
                        Some(s) => {
                            return Err(ParseError {
                                offset: s.offset,
                                message: format!(
                                    "expected field name after '.', found {}",
                                    s.token
                                ),
                            })
                        }
                        None => return Err(self.unexpected_end("field name after '.'")),
                    }
                }
                Ok(Expr::Var(path))
            }
            other => Err(ParseError {
                offset: t.offset,
                message: format!("unexpected token {other}"),
            }),
        }
    }

    /// Parses a comma-separated list terminated by `close` (already past the
    /// opening delimiter). Allows the empty list.
    fn expr_list(&mut self, close: &Token) -> Result<Vec<Expr>, ParseError> {
        let mut items = Vec::new();
        if self.eat(close) {
            return Ok(items);
        }
        loop {
            items.push(self.or_expr()?);
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(close)?;
            return Ok(items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_mul_over_add_over_cmp_over_and_over_or() {
        let e = parse("a or b and c == d + e * f").unwrap();
        assert_eq!(e.to_string(), "(a or (b and (c == (d + (e * f)))))");
    }

    #[test]
    fn unary_binds_tighter_than_binary() {
        let e = parse("-a + b").unwrap();
        assert_eq!(e.to_string(), "((-a) + b)");
        let e = parse("not a and b").unwrap();
        assert_eq!(e.to_string(), "((not a) and b)");
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse("(a or b) and c").unwrap();
        assert_eq!(e.to_string(), "((a or b) and c)");
    }

    #[test]
    fn parses_calls_paths_and_seq_literals() {
        let e = parse("min(a.b, 3) in [1, 2, 3]").unwrap();
        assert_eq!(e.to_string(), "(min(a.b, 3) in [1, 2, 3])");
        let e = parse("f()").unwrap();
        assert_eq!(e, Expr::Call("f".into(), vec![]));
        let e = parse("[]").unwrap();
        assert_eq!(e, Expr::SeqLit(vec![]));
    }

    #[test]
    fn subtraction_is_left_associative() {
        let e = parse("a - b - c").unwrap();
        assert_eq!(e.to_string(), "((a - b) - c)");
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse("a b").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_dangling_operators() {
        assert!(parse("a +").is_err());
        assert!(parse("* a").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("a.").is_err());
        assert!(parse("a.1").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn comparison_does_not_chain() {
        // `a < b < c` is rejected — the second `<` is a trailing token.
        assert!(parse("a < b < c").is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse("a + + b").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
