//! Transfer syntaxes for marshalling [`Value`]s.
//!
//! Access transparency (§9.1) "hides the differences in data representation
//! … the stubs must marshal and unmarshal any data used in the interaction
//! in order to convert between different representations". To make that
//! conversion real rather than notional, this module provides **two**
//! genuinely different transfer syntaxes:
//!
//! - [`BinarySyntax`] — a compact, tagged, little-endian binary encoding;
//! - [`TextSyntax`] — a self-describing human-readable encoding.
//!
//! Both round-trip every [`Value`]; a stub on a node whose native syntax is
//! binary can interwork with a node whose native syntax is text because the
//! channel negotiates a common transfer syntax.

mod binary;
mod text;

use std::fmt;

pub use binary::BinarySyntax;
pub use text::TextSyntax;

use crate::value::Value;

/// Identifies a transfer syntax on the wire.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum SyntaxId {
    /// The compact binary syntax.
    Binary,
    /// The self-describing text syntax.
    Text,
}

impl fmt::Display for SyntaxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxId::Binary => write!(f, "binary"),
            SyntaxId::Text => write!(f, "text"),
        }
    }
}

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Which syntax failed.
    pub syntax: SyntaxId,
    /// Byte offset where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} decode error at byte {}: {}",
            self.syntax, self.offset, self.message
        )
    }
}

impl std::error::Error for CodecError {}

/// A transfer syntax: a bidirectional mapping between [`Value`]s and bytes.
///
/// Object-safe so channels can hold `Box<dyn TransferSyntax>` chosen at
/// binding time.
pub trait TransferSyntax: fmt::Debug + Send + Sync {
    /// This syntax's wire identifier.
    fn id(&self) -> SyntaxId;

    /// Encodes a value.
    fn encode(&self, value: &Value) -> Vec<u8>;

    /// Decodes a value.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the bytes are not a valid encoding.
    fn decode(&self, bytes: &[u8]) -> Result<Value, CodecError>;
}

/// Returns the syntax implementation for an identifier.
pub fn syntax_for(id: SyntaxId) -> Box<dyn TransferSyntax> {
    match id {
        SyntaxId::Binary => Box::new(BinarySyntax),
        SyntaxId::Text => Box::new(TextSyntax),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    pub(crate) fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::text(""),
            Value::text("héllo \"world\"\n"),
            Value::Blob(vec![]),
            Value::Blob(vec![0, 255, 1, 2]),
            Value::seq([]),
            Value::seq([Value::Int(1), Value::text("two"), Value::Null]),
            Value::record::<&str, _>([]),
            Value::record([
                (
                    "nested",
                    Value::record([("x", Value::seq([Value::Bool(true)]))]),
                ),
                ("ref", Value::Ref(42)),
            ]),
        ]
    }

    #[test]
    fn both_syntaxes_round_trip_samples() {
        for id in [SyntaxId::Binary, SyntaxId::Text] {
            let syntax = syntax_for(id);
            for v in sample_values() {
                let bytes = syntax.encode(&v);
                let back = syntax
                    .decode(&bytes)
                    .unwrap_or_else(|e| panic!("{id}: failed to decode {v}: {e}"));
                assert_eq!(back, v, "{id}: {v}");
            }
        }
    }

    #[test]
    fn syntaxes_differ_on_the_wire() {
        let v = Value::record([("x", Value::Int(1))]);
        assert_ne!(BinarySyntax.encode(&v), TextSyntax.encode(&v));
    }

    #[test]
    fn syntax_for_returns_matching_id() {
        assert_eq!(syntax_for(SyntaxId::Binary).id(), SyntaxId::Binary);
        assert_eq!(syntax_for(SyntaxId::Text).id(), SyntaxId::Text);
    }
}
