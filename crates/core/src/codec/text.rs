//! The self-describing text transfer syntax.
//!
//! Values render as readable text:
//!
//! ```text
//! null  true  42  3.5  "hi\n"  b"00ff"  [1, 2]  {a: 1, b: "x"}  ref(7)
//! ```
//!
//! Floats always carry a `.` or exponent so they are distinguishable from
//! ints. Record keys that are valid identifiers render bare; others quoted.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::{CodecError, SyntaxId, TransferSyntax};
use crate::value::Value;

/// The self-describing text transfer syntax (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TextSyntax;

impl TransferSyntax for TextSyntax {
    fn id(&self) -> SyntaxId {
        SyntaxId::Text
    }

    fn encode(&self, value: &Value) -> Vec<u8> {
        let mut s = String::with_capacity(32);
        render(value, &mut s);
        s.into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<Value, CodecError> {
        let src = std::str::from_utf8(bytes).map_err(|e| CodecError {
            syntax: SyntaxId::Text,
            offset: e.valid_up_to(),
            message: "encoding is not utf-8".into(),
        })?;
        let mut p = TextParser { src, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != src.len() {
            return Err(p.error("trailing characters after value"));
        }
        Ok(v)
    }
}

fn render(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if x.is_nan() {
                out.push_str("nan");
            } else if x.is_infinite() {
                out.push_str(if *x > 0.0 { "inf" } else { "-inf" });
            } else {
                // Debug formatting prints the shortest round-trippable form
                // and always marks floats (".0" or an exponent).
                let _ = write!(out, "{x:?}");
            }
        }
        Value::Text(s) => render_quoted(s, out),
        Value::Blob(b) => {
            out.push_str("b\"");
            for byte in b {
                let _ = write!(out, "{byte:02x}");
            }
            out.push('"');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render(v, out);
            }
            out.push(']');
        }
        Value::Record(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if is_ident(k) {
                    out.push_str(k);
                } else {
                    render_quoted(k, out);
                }
                out.push_str(": ");
                render(v, out);
            }
            out.push('}');
        }
        Value::Ref(id) => {
            let _ = write!(out, "ref({id})");
        }
    }
}

fn render_quoted(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !matches!(s, "null" | "true" | "false" | "nan" | "inf" | "ref")
}

struct TextParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> TextParser<'a> {
    fn error(&self, message: impl Into<String>) -> CodecError {
        CodecError {
            syntax: SyntaxId::Text,
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with([' ', '\t', '\n', '\r']) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, prefix: &str) -> Result<(), CodecError> {
        if self.eat(prefix) {
            Ok(())
        } else {
            Err(self.error(format!("expected {prefix:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        self.skip_ws();
        if self.eat("null") {
            return Ok(Value::Null);
        }
        if self.eat("true") {
            return Ok(Value::Bool(true));
        }
        if self.eat("false") {
            return Ok(Value::Bool(false));
        }
        if self.eat("nan") {
            return Ok(Value::Float(f64::NAN));
        }
        if self.eat("inf") {
            return Ok(Value::Float(f64::INFINITY));
        }
        if self.eat("-inf") {
            return Ok(Value::Float(f64::NEG_INFINITY));
        }
        if self.eat("ref(") {
            let n = self.unsigned()?;
            self.expect(")")?;
            return Ok(Value::Ref(n));
        }
        if self.rest().starts_with("b\"") {
            self.pos += 2;
            return self.blob_body();
        }
        match self.rest().chars().next() {
            Some('"') => {
                self.pos += 1;
                Ok(Value::Text(self.string_body()?))
            }
            Some('[') => {
                self.pos += 1;
                self.seq_body()
            }
            Some('{') => {
                self.pos += 1;
                self.record_body()
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {c:?}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn unsigned(&mut self) -> Result<u64, CodecError> {
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.error("expected unsigned integer"))
    }

    fn number(&mut self) -> Result<Value, CodecError> {
        let start = self.pos;
        if self.rest().starts_with('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.rest().chars().next() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' => {
                    is_float = true;
                    self.pos += 1;
                }
                '-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse()
                .map(Value::Float)
                .map_err(|_| self.error(format!("malformed float {text:?}")))
        } else {
            text.parse()
                .map(Value::Int)
                .map_err(|_| self.error(format!("malformed int {text:?}")))
        }
    }

    fn string_body(&mut self) -> Result<String, CodecError> {
        let mut s = String::new();
        loop {
            let c = self
                .rest()
                .chars()
                .next()
                .ok_or_else(|| self.error("unterminated string"))?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = self
                        .rest()
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'r' => s.push('\r'),
                        other => return Err(self.error(format!("unknown escape \\{other}"))),
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn blob_body(&mut self) -> Result<Value, CodecError> {
        let mut bytes = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("\"") {
                return Ok(Value::Blob(bytes));
            }
            let hex = self
                .rest()
                .get(..2)
                .ok_or_else(|| self.error("unterminated blob"))?;
            let byte = u8::from_str_radix(hex, 16)
                .map_err(|_| self.error(format!("bad hex pair {hex:?}")))?;
            bytes.push(byte);
            self.pos += 2;
        }
    }

    fn seq_body(&mut self) -> Result<Value, CodecError> {
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat("]") {
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            self.expect("]")?;
            return Ok(Value::Seq(items));
        }
    }

    fn record_body(&mut self) -> Result<Value, CodecError> {
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.eat("}") {
            return Ok(Value::Record(fields));
        }
        loop {
            self.skip_ws();
            let key = if self.eat("\"") {
                self.string_body()?
            } else {
                let start = self.pos;
                while self
                    .rest()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    self.pos += 1;
                }
                if start == self.pos {
                    return Err(self.error("expected record key"));
                }
                self.src[start..self.pos].to_owned()
            };
            self.skip_ws();
            self.expect(":")?;
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            self.expect("}")?;
            return Ok(Value::Record(fields));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let bytes = TextSyntax.encode(v);
        TextSyntax.decode(&bytes).unwrap()
    }

    #[test]
    fn renders_readably() {
        let v = Value::record([
            ("name", Value::text("alice")),
            ("age", Value::Int(30)),
            ("rate", Value::Float(2.0)),
        ]);
        let s = String::from_utf8(TextSyntax.encode(&v)).unwrap();
        assert_eq!(s, "{age: 30, name: \"alice\", rate: 2.0}");
    }

    #[test]
    fn floats_stay_floats() {
        // 2.0 must not come back as Int(2).
        assert_eq!(round_trip(&Value::Float(2.0)), Value::Float(2.0));
        assert_eq!(round_trip(&Value::Float(1e300)), Value::Float(1e300));
        assert_eq!(round_trip(&Value::Float(-2.5e-10)), Value::Float(-2.5e-10));
    }

    #[test]
    fn special_floats() {
        assert_eq!(
            round_trip(&Value::Float(f64::INFINITY)),
            Value::Float(f64::INFINITY)
        );
        assert_eq!(
            round_trip(&Value::Float(f64::NEG_INFINITY)),
            Value::Float(f64::NEG_INFINITY)
        );
        match round_trip(&Value::Float(f64::NAN)) {
            Value::Float(x) => assert!(x.is_nan()),
            other => panic!("expected nan, got {other:?}"),
        }
    }

    #[test]
    fn non_identifier_keys_are_quoted() {
        let v = Value::record([("has space", Value::Int(1)), ("true", Value::Int(2))]);
        let s = String::from_utf8(TextSyntax.encode(&v)).unwrap();
        assert_eq!(s, "{\"has space\": 1, \"true\": 2}");
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn blobs_render_as_hex() {
        let v = Value::Blob(vec![0x00, 0xff, 0x10]);
        let s = String::from_utf8(TextSyntax.encode(&v)).unwrap();
        assert_eq!(s, "b\"00ff10\"");
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = TextSyntax.decode(b" { a : [ 1 , 2 ] , b : ref( 7 ) } "[..].as_ref());
        // `ref( 7 )` contains inner spaces which we do not allow; check strict form.
        assert!(v.is_err());
        let v = TextSyntax.decode(b" { a : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Value::record([("a", Value::seq([Value::Int(1), Value::Int(2)]))])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "\"open", "b\"0", "b\"0g\"", "{a 1}", "1 2", "tru",
        ] {
            assert!(
                TextSyntax.decode(bad.as_bytes()).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn rejects_non_utf8() {
        let err = TextSyntax.decode(&[0xff, 0xfe]).unwrap_err();
        assert!(err.message.contains("utf-8"));
    }
}
