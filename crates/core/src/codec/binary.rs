//! The compact binary transfer syntax.
//!
//! Layout: one tag byte followed by a fixed- or length-prefixed payload.
//! All integers are little-endian. Lengths are `u32`.
//!
//! ```text
//! 0x00 null
//! 0x01 bool     (1 byte: 0 or 1)
//! 0x02 int      (8 bytes, i64 LE)
//! 0x03 float    (8 bytes, f64 LE bits)
//! 0x04 text     (u32 len + utf-8 bytes)
//! 0x05 blob     (u32 len + bytes)
//! 0x06 seq      (u32 count + encoded items)
//! 0x07 record   (u32 count + (text key, value) pairs, keys sorted)
//! 0x08 ref      (8 bytes, u64 LE)
//! ```

use bytes::{Buf, BufMut};

use super::{CodecError, SyntaxId, TransferSyntax};
use crate::value::Value;

const TAG_NULL: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_INT: u8 = 0x02;
const TAG_FLOAT: u8 = 0x03;
const TAG_TEXT: u8 = 0x04;
const TAG_BLOB: u8 = 0x05;
const TAG_SEQ: u8 = 0x06;
const TAG_RECORD: u8 = 0x07;
const TAG_REF: u8 = 0x08;

/// The compact binary transfer syntax (see module docs for the layout).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinarySyntax;

impl TransferSyntax for BinarySyntax {
    fn id(&self) -> SyntaxId {
        SyntaxId::Binary
    }

    fn encode(&self, value: &Value) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        encode_into(value, &mut out);
        out
    }

    fn decode(&self, bytes: &[u8]) -> Result<Value, CodecError> {
        let mut cursor = Cursor { buf: bytes, pos: 0 };
        let v = cursor.value()?;
        if cursor.pos != bytes.len() {
            return Err(cursor.error("trailing bytes after value"));
        }
        Ok(v)
    }
}

fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.put_u8(TAG_NULL),
        Value::Bool(b) => {
            out.put_u8(TAG_BOOL);
            out.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            out.put_u8(TAG_INT);
            out.put_i64_le(*i);
        }
        Value::Float(x) => {
            out.put_u8(TAG_FLOAT);
            out.put_f64_le(*x);
        }
        Value::Text(s) => {
            out.put_u8(TAG_TEXT);
            out.put_u32_le(s.len() as u32);
            out.put_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            out.put_u8(TAG_BLOB);
            out.put_u32_le(b.len() as u32);
            out.put_slice(b);
        }
        Value::Seq(items) => {
            out.put_u8(TAG_SEQ);
            out.put_u32_le(items.len() as u32);
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Record(fields) => {
            out.put_u8(TAG_RECORD);
            out.put_u32_le(fields.len() as u32);
            for (k, v) in fields {
                out.put_u32_le(k.len() as u32);
                out.put_slice(k.as_bytes());
                encode_into(v, out);
            }
        }
        Value::Ref(id) => {
            out.put_u8(TAG_REF);
            out.put_u64_le(*id);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn error(&self, message: impl Into<String>) -> CodecError {
        CodecError {
            syntax: SyntaxId::Binary,
            offset: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(self.error(format!(
                "need {n} bytes, only {} remain",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }

    fn text(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError {
            syntax: SyntaxId::Binary,
            offset: at,
            message: "invalid utf-8 in text".into(),
        })
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        let tag = self.u8()?;
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                other => Err(self.error(format!("bad bool byte {other}"))),
            },
            TAG_INT => {
                let mut b = self.take(8)?;
                Ok(Value::Int(b.get_i64_le()))
            }
            TAG_FLOAT => {
                let mut b = self.take(8)?;
                Ok(Value::Float(b.get_f64_le()))
            }
            TAG_TEXT => Ok(Value::Text(self.text()?)),
            TAG_BLOB => {
                let len = self.u32()? as usize;
                Ok(Value::Blob(self.take(len)?.to_vec()))
            }
            TAG_SEQ => {
                let count = self.u32()? as usize;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    items.push(self.value()?);
                }
                Ok(Value::Seq(items))
            }
            TAG_RECORD => {
                let count = self.u32()? as usize;
                let mut fields = std::collections::BTreeMap::new();
                for _ in 0..count {
                    let key = self.text()?;
                    let value = self.value()?;
                    fields.insert(key, value);
                }
                Ok(Value::Record(fields))
            }
            TAG_REF => {
                let mut b = self.take(8)?;
                Ok(Value::Ref(b.get_u64_le()))
            }
            other => Err(self.error(format!("unknown tag 0x{other:02x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_compact() {
        // null is one byte; an int is nine.
        assert_eq!(BinarySyntax.encode(&Value::Null).len(), 1);
        assert_eq!(BinarySyntax.encode(&Value::Int(7)).len(), 9);
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let v = Value::record([("key", Value::seq([Value::Int(1), Value::text("x")]))]);
        let full = BinarySyntax.encode(&v);
        for cut in 0..full.len() {
            assert!(
                BinarySyntax.decode(&full[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        assert!(BinarySyntax.decode(&full).is_ok());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = BinarySyntax.encode(&Value::Int(1));
        bytes.push(0);
        let err = BinarySyntax.decode(&bytes).unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn decode_rejects_unknown_tag_and_bad_bool() {
        let err = BinarySyntax.decode(&[0xff]).unwrap_err();
        assert!(err.message.contains("unknown tag"));
        let err = BinarySyntax.decode(&[TAG_BOOL, 7]).unwrap_err();
        assert!(err.message.contains("bad bool"));
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let bytes = vec![TAG_TEXT, 1, 0, 0, 0, 0xff];
        let err = BinarySyntax.decode(&bytes).unwrap_err();
        assert!(err.message.contains("utf-8"));
    }

    #[test]
    fn record_keys_are_sorted_on_the_wire() {
        let a = Value::record([("b", Value::Int(2)), ("a", Value::Int(1))]);
        let b = Value::record([("a", Value::Int(1)), ("b", Value::Int(2))]);
        assert_eq!(BinarySyntax.encode(&a), BinarySyntax.encode(&b));
    }

    #[test]
    fn float_bit_patterns_survive() {
        for x in [f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, -0.0] {
            let bytes = BinarySyntax.encode(&Value::Float(x));
            match BinarySyntax.decode(&bytes).unwrap() {
                Value::Float(y) => assert_eq!(x.to_bits(), y.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
