//! Environment contracts (§5.3).
//!
//! "Ideally, environment contracts will be expressed in high-level
//! quality-of-service terms rather than, e.g., specifying a particular
//! network or a particular encryption scheme." Contracts here are QoS
//! *requirements* matched against QoS *offers*; the engineering viewpoint
//! configures channels (stubs, binders, protocol objects) to honour a
//! matched contract.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// The security level a contract demands or an environment provides.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum SecurityLevel {
    /// No protection.
    #[default]
    None,
    /// Interactions carry authenticated principals.
    Authenticated,
    /// Authenticated and protected against capture-and-replay
    /// (sequence-numbered binders, §6.1).
    ReplayProtected,
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityLevel::None => write!(f, "none"),
            SecurityLevel::Authenticated => write!(f, "authenticated"),
            SecurityLevel::ReplayProtected => write!(f, "replay-protected"),
        }
    }
}

/// What a computational object *requires* of its environment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QosRequirement {
    /// Upper bound on one-way interaction latency.
    pub max_latency: Option<Duration>,
    /// Lower bound on sustained flow throughput, items per second
    /// (stream interfaces).
    pub min_throughput: Option<f64>,
    /// Lower bound on availability, 0.0–1.0.
    pub min_availability: Option<f64>,
    /// Whether delivery must be reliable (retransmission in the channel).
    pub reliable_delivery: bool,
    /// Demanded security level.
    pub security: SecurityLevel,
}

impl QosRequirement {
    /// A requirement demanding nothing — matches any offer.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: sets the latency bound.
    pub fn with_max_latency(mut self, d: Duration) -> Self {
        self.max_latency = Some(d);
        self
    }

    /// Builder: sets the throughput floor.
    pub fn with_min_throughput(mut self, items_per_sec: f64) -> Self {
        self.min_throughput = Some(items_per_sec);
        self
    }

    /// Builder: sets the availability floor.
    pub fn with_min_availability(mut self, fraction: f64) -> Self {
        self.min_availability = Some(fraction);
        self
    }

    /// Builder: demands reliable delivery.
    pub fn reliable(mut self) -> Self {
        self.reliable_delivery = true;
        self
    }

    /// Builder: demands a security level.
    pub fn with_security(mut self, level: SecurityLevel) -> Self {
        self.security = level;
        self
    }
}

/// What an environment (a channel over a particular network path) *offers*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosOffer {
    /// Expected one-way latency.
    pub latency: Duration,
    /// Sustainable throughput, items per second.
    pub throughput: f64,
    /// Availability, 0.0–1.0.
    pub availability: f64,
    /// Whether the channel retransmits lost messages.
    pub reliable_delivery: bool,
    /// Provided security level.
    pub security: SecurityLevel,
}

impl Default for QosOffer {
    fn default() -> Self {
        Self {
            latency: Duration::from_millis(1),
            throughput: f64::INFINITY,
            availability: 1.0,
            reliable_delivery: false,
            security: SecurityLevel::None,
        }
    }
}

impl QosOffer {
    /// Checks this offer against a requirement.
    ///
    /// # Errors
    ///
    /// Returns the first [`ContractViolation`] found.
    pub fn satisfies(&self, req: &QosRequirement) -> Result<(), ContractViolation> {
        if let Some(max) = req.max_latency {
            if self.latency > max {
                return Err(ContractViolation::Latency {
                    required: max,
                    offered: self.latency,
                });
            }
        }
        if let Some(min) = req.min_throughput {
            if self.throughput < min {
                return Err(ContractViolation::Throughput {
                    required: min,
                    offered: self.throughput,
                });
            }
        }
        if let Some(min) = req.min_availability {
            if self.availability < min {
                return Err(ContractViolation::Availability {
                    required: min,
                    offered: self.availability,
                });
            }
        }
        if req.reliable_delivery && !self.reliable_delivery {
            return Err(ContractViolation::Reliability);
        }
        if self.security < req.security {
            return Err(ContractViolation::Security {
                required: req.security,
                offered: self.security,
            });
        }
        Ok(())
    }
}

/// An environment contract: a requirement paired with the offer accepted
/// for it. Constructed via [`EnvironmentContract::establish`], which fails
/// if the offer does not satisfy the requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentContract {
    required: QosRequirement,
    provided: QosOffer,
}

impl EnvironmentContract {
    /// Establishes a contract, verifying the offer meets the requirement.
    ///
    /// # Errors
    ///
    /// Returns the violated clause if the offer is insufficient.
    pub fn establish(
        required: QosRequirement,
        provided: QosOffer,
    ) -> Result<Self, ContractViolation> {
        provided.satisfies(&required)?;
        Ok(Self { required, provided })
    }

    /// The requirement side of the contract.
    pub fn required(&self) -> &QosRequirement {
        &self.required
    }

    /// The offered side of the contract.
    pub fn provided(&self) -> &QosOffer {
        &self.provided
    }
}

/// A clause of a QoS requirement that an offer failed to meet.
#[derive(Debug, Clone, PartialEq)]
pub enum ContractViolation {
    /// Offered latency exceeds the bound.
    Latency {
        required: Duration,
        offered: Duration,
    },
    /// Offered throughput is below the floor.
    Throughput { required: f64, offered: f64 },
    /// Offered availability is below the floor.
    Availability { required: f64, offered: f64 },
    /// Reliable delivery demanded but not offered.
    Reliability,
    /// Offered security level is too weak.
    Security {
        required: SecurityLevel,
        offered: SecurityLevel,
    },
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractViolation::Latency { required, offered } => write!(
                f,
                "latency violation: required <= {required:?}, offered {offered:?}"
            ),
            ContractViolation::Throughput { required, offered } => write!(
                f,
                "throughput violation: required >= {required}, offered {offered}"
            ),
            ContractViolation::Availability { required, offered } => write!(
                f,
                "availability violation: required >= {required}, offered {offered}"
            ),
            ContractViolation::Reliability => {
                write!(f, "reliable delivery required but not offered")
            }
            ContractViolation::Security { required, offered } => write!(
                f,
                "security violation: required {required}, offered {offered}"
            ),
        }
    }
}

impl std::error::Error for ContractViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_offer() -> QosOffer {
        QosOffer {
            latency: Duration::from_millis(2),
            throughput: 1_000.0,
            availability: 0.999,
            reliable_delivery: true,
            security: SecurityLevel::ReplayProtected,
        }
    }

    #[test]
    fn empty_requirement_matches_anything() {
        assert!(QosOffer::default()
            .satisfies(&QosRequirement::none())
            .is_ok());
        assert!(fast_offer().satisfies(&QosRequirement::none()).is_ok());
    }

    #[test]
    fn each_clause_is_enforced() {
        let offer = fast_offer();
        let req = QosRequirement::none().with_max_latency(Duration::from_millis(1));
        assert!(matches!(
            offer.satisfies(&req),
            Err(ContractViolation::Latency { .. })
        ));
        let req = QosRequirement::none().with_min_throughput(2_000.0);
        assert!(matches!(
            offer.satisfies(&req),
            Err(ContractViolation::Throughput { .. })
        ));
        let req = QosRequirement::none().with_min_availability(0.9999);
        assert!(matches!(
            offer.satisfies(&req),
            Err(ContractViolation::Availability { .. })
        ));
        let mut weak = fast_offer();
        weak.reliable_delivery = false;
        assert!(matches!(
            weak.satisfies(&QosRequirement::none().reliable()),
            Err(ContractViolation::Reliability)
        ));
    }

    #[test]
    fn security_levels_are_ordered() {
        let mut offer = fast_offer();
        offer.security = SecurityLevel::Authenticated;
        assert!(offer
            .satisfies(&QosRequirement::none().with_security(SecurityLevel::None))
            .is_ok());
        assert!(offer
            .satisfies(&QosRequirement::none().with_security(SecurityLevel::Authenticated))
            .is_ok());
        assert!(matches!(
            offer.satisfies(&QosRequirement::none().with_security(SecurityLevel::ReplayProtected)),
            Err(ContractViolation::Security { .. })
        ));
    }

    #[test]
    fn establish_captures_both_sides() {
        let req = QosRequirement::none().with_max_latency(Duration::from_millis(10));
        let contract = EnvironmentContract::establish(req.clone(), fast_offer()).unwrap();
        assert_eq!(contract.required(), &req);
        assert_eq!(contract.provided(), &fast_offer());
    }

    #[test]
    fn establish_rejects_insufficient_offer() {
        let req = QosRequirement::none().with_max_latency(Duration::from_micros(1));
        let err = EnvironmentContract::establish(req, fast_offer()).unwrap_err();
        assert!(err.to_string().contains("latency"));
    }
}
