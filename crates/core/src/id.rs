//! Strongly-typed identifiers for ODP entities.
//!
//! RM-ODP names many kinds of entity: objects, interfaces, channels, nodes,
//! capsules, clusters, bindings, service offers, transactions, … Using a
//! distinct newtype per kind (C-NEWTYPE) prevents, say, a [`ClusterId`] being
//! passed where a [`CapsuleId`] is expected.
//!
//! Identifiers are allocated by an [`IdGen`], a simple monotone counter.
//! Determinism matters throughout this workspace (the engineering runtime is
//! driven by a deterministic discrete-event simulator), so identifier
//! allocation is sequential rather than random.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Defines a newtype identifier with the common trait implementations.
///
/// The macro is exported so downstream crates can mint additional identifier
/// kinds (for example the bank crate defines `AccountNo`):
///
/// ```
/// rmodp_core::define_id!(
///     /// Example identifier kind.
///     WidgetId, "widget"
/// );
/// let w = WidgetId::new(7);
/// assert_eq!(w.raw(), 7);
/// assert_eq!(w.to_string(), "widget:7");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[derive(serde::Serialize, serde::Deserialize)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw number.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric form of this identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, ":{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies an object in any viewpoint (enterprise, information,
    /// computational or basic engineering object).
    ObjectId,
    "obj"
);
define_id!(
    /// Identifies an interface instance offered by an object (§5).
    InterfaceId,
    "ifc"
);
define_id!(
    /// Identifies an engineering channel (§6.1).
    ChannelId,
    "chan"
);
define_id!(
    /// Identifies a computational binding between interfaces (§5).
    BindingId,
    "bind"
);
define_id!(
    /// Identifies a node — a computer system (§6.2).
    NodeId,
    "node"
);
define_id!(
    /// Identifies a capsule within a node (§6.2).
    CapsuleId,
    "caps"
);
define_id!(
    /// Identifies a cluster within a capsule (§6.2).
    ClusterId,
    "clus"
);
define_id!(
    /// Identifies a service offer held by a trader (§8.3.2).
    OfferId,
    "offer"
);
define_id!(
    /// Identifies a transaction coordinated by the transaction function
    /// (§8.2.1).
    TxId,
    "tx"
);
define_id!(
    /// Identifies a replica group maintained by the group/replication
    /// function (§8.2).
    GroupId,
    "grp"
);
define_id!(
    /// Identifies a security principal (§8.4).
    PrincipalId,
    "prin"
);
define_id!(
    /// Identifies an enterprise community (§3).
    CommunityId,
    "comm"
);
define_id!(
    /// Identifies a subscription with the event-notification function (§8.2).
    SubscriptionId,
    "sub"
);

/// A monotone generator of identifiers of one kind.
///
/// Thread-safe (the counter is atomic) so it can be shared freely; the
/// deterministic single-threaded simulator also uses it.
///
/// # Example
///
/// ```
/// use rmodp_core::id::{IdGen, ObjectId};
///
/// let gen = IdGen::<ObjectId>::new();
/// let a = gen.fresh();
/// let b = gen.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Debug)]
pub struct IdGen<T> {
    next: AtomicU64,
    _kind: PhantomData<fn() -> T>,
}

impl<T: From<u64>> IdGen<T> {
    /// Creates a generator starting at 1 (0 is reserved as a conventional
    /// "nil" value in wire formats).
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
            _kind: PhantomData,
        }
    }

    /// Creates a generator whose first identifier is `start`.
    pub fn starting_at(start: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
            _kind: PhantomData,
        }
    }

    /// Allocates the next identifier.
    pub fn fresh(&self) -> T {
        T::from(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns how many identifiers have been allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed).saturating_sub(1)
    }
}

impl<T: From<u64>> Default for IdGen<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Display for IdGen<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IdGen(next={})", self.next.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_sequential_and_distinct() {
        let gen = IdGen::<ObjectId>::new();
        let ids: Vec<ObjectId> = (0..100).map(|_| gen.fresh()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.raw(), i as u64 + 1);
        }
        assert_eq!(gen.allocated(), 100);
    }

    #[test]
    fn starting_at_controls_first_id() {
        let gen = IdGen::<NodeId>::starting_at(42);
        assert_eq!(gen.fresh(), NodeId::new(42));
        assert_eq!(gen.fresh(), NodeId::new(43));
    }

    #[test]
    fn display_includes_kind_prefix() {
        assert_eq!(ObjectId::new(7).to_string(), "obj:7");
        assert_eq!(InterfaceId::new(3).to_string(), "ifc:3");
        assert_eq!(NodeId::new(1).to_string(), "node:1");
        assert_eq!(TxId::new(9).to_string(), "tx:9");
    }

    #[test]
    fn ids_of_different_kinds_do_not_unify() {
        // This is a compile-time property; here we just exercise conversions.
        let o = ObjectId::from(5u64);
        let raw: u64 = o.into();
        assert_eq!(raw, 5);
    }

    #[test]
    fn idgen_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IdGen<ObjectId>>();
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ClusterId::new(1) < ClusterId::new(2));
        let mut v = vec![CapsuleId::new(3), CapsuleId::new(1), CapsuleId::new(2)];
        v.sort();
        assert_eq!(
            v,
            vec![CapsuleId::new(1), CapsuleId::new(2), CapsuleId::new(3)]
        );
    }
}
