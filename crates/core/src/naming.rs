//! Hierarchical names and naming contexts.
//!
//! RM-ODP repositories (the relocator's white pages §8.3.3, the storage
//! function, the type repository) need a naming scheme. A [`Name`] is a
//! sequence of segments (`"bank/branches/toowong"`); a [`NamingContext`] is
//! a tree binding names to numeric identities tagged with a kind string.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A hierarchical name: one or more non-empty segments.
///
/// # Example
///
/// ```
/// use rmodp_core::naming::Name;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n: Name = "bank/branches/toowong".parse()?;
/// assert_eq!(n.segments().len(), 3);
/// assert_eq!(n.to_string(), "bank/branches/toowong");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Name {
    segments: Vec<String>,
}

impl Name {
    /// Builds a name from segments.
    ///
    /// # Errors
    ///
    /// Fails if there are no segments or any segment is empty or contains
    /// `'/'`.
    pub fn from_segments<S: Into<String>, I: IntoIterator<Item = S>>(
        segments: I,
    ) -> Result<Self, NameError> {
        let segments: Vec<String> = segments.into_iter().map(Into::into).collect();
        if segments.is_empty() {
            return Err(NameError::Empty);
        }
        for s in &segments {
            if s.is_empty() || s.contains('/') {
                return Err(NameError::BadSegment { segment: s.clone() });
            }
        }
        Ok(Self { segments })
    }

    /// The segments of the name.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The final segment.
    pub fn leaf(&self) -> &str {
        self.segments.last().expect("names are non-empty")
    }

    /// The name with one more segment appended.
    ///
    /// # Errors
    ///
    /// Fails if the segment is empty or contains `'/'`.
    pub fn child(&self, segment: impl Into<String>) -> Result<Name, NameError> {
        let segment = segment.into();
        if segment.is_empty() || segment.contains('/') {
            return Err(NameError::BadSegment { segment });
        }
        let mut segments = self.segments.clone();
        segments.push(segment);
        Ok(Name { segments })
    }
}

impl std::str::FromStr for Name {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, NameError> {
        Name::from_segments(s.split('/'))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.segments.join("/"))
    }
}

/// An invalid name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// Names must have at least one segment.
    Empty,
    /// A segment was empty or contained `'/'`.
    BadSegment { segment: String },
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::Empty => write!(f, "name must have at least one segment"),
            NameError::BadSegment { segment } => write!(f, "invalid name segment {segment:?}"),
        }
    }
}

impl std::error::Error for NameError {}

/// What a name resolves to: a raw identity plus its kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BindingTarget {
    /// The raw identifier (interpreted per `kind`).
    pub id: u64,
    /// The kind of entity bound (e.g. `"interface"`, `"cluster"`).
    pub kind: String,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct ContextNode {
    binding: Option<BindingTarget>,
    children: BTreeMap<String, ContextNode>,
}

/// A tree of name bindings.
///
/// # Example
///
/// ```
/// use rmodp_core::naming::{BindingTarget, Name, NamingContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = NamingContext::new();
/// let name: Name = "traders/brisbane".parse()?;
/// ctx.bind(&name, BindingTarget { id: 7, kind: "interface".into() })?;
/// assert_eq!(ctx.resolve(&name).unwrap().id, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NamingContext {
    root: ContextNode,
}

impl NamingContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a name, creating intermediate contexts as needed.
    ///
    /// # Errors
    ///
    /// Fails with [`BindError::AlreadyBound`] if the name is taken.
    pub fn bind(&mut self, name: &Name, target: BindingTarget) -> Result<(), BindError> {
        let node = self.node_mut(name);
        if node.binding.is_some() {
            return Err(BindError::AlreadyBound { name: name.clone() });
        }
        node.binding = Some(target);
        Ok(())
    }

    /// Binds or replaces a name, returning the previous target if any.
    pub fn rebind(&mut self, name: &Name, target: BindingTarget) -> Option<BindingTarget> {
        self.node_mut(name).binding.replace(target)
    }

    /// Resolves a name to its target.
    pub fn resolve(&self, name: &Name) -> Option<&BindingTarget> {
        self.node(name)?.binding.as_ref()
    }

    /// Removes a binding, returning it if it existed. Child bindings under
    /// the name are unaffected.
    pub fn unbind(&mut self, name: &Name) -> Option<BindingTarget> {
        let mut node = &mut self.root;
        for seg in name.segments() {
            node = node.children.get_mut(seg)?;
        }
        node.binding.take()
    }

    /// Lists the immediate child segments under a name (`None` lists the
    /// root). Each is tagged with whether it is itself bound.
    pub fn list(&self, name: Option<&Name>) -> Vec<(String, bool)> {
        let node = match name {
            None => Some(&self.root),
            Some(n) => self.node(n),
        };
        match node {
            Some(n) => n
                .children
                .iter()
                .map(|(seg, child)| (seg.clone(), child.binding.is_some()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Total number of bindings in the context.
    pub fn len(&self) -> usize {
        fn count(node: &ContextNode) -> usize {
            usize::from(node.binding.is_some()) + node.children.values().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// Whether the context has no bindings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn node(&self, name: &Name) -> Option<&ContextNode> {
        let mut node = &self.root;
        for seg in name.segments() {
            node = node.children.get(seg)?;
        }
        Some(node)
    }

    fn node_mut(&mut self, name: &Name) -> &mut ContextNode {
        let mut node = &mut self.root;
        for seg in name.segments() {
            node = node.children.entry(seg.clone()).or_default();
        }
        node
    }
}

/// A binding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// The name already has a binding; use
    /// [`rebind`](NamingContext::rebind) to replace it.
    AlreadyBound { name: Name },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::AlreadyBound { name } => write!(f, "name {name} is already bound"),
        }
    }
}

impl std::error::Error for BindError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn target(id: u64) -> BindingTarget {
        BindingTarget {
            id,
            kind: "interface".into(),
        }
    }

    #[test]
    fn parse_and_display() {
        let n = name("a/b/c");
        assert_eq!(n.segments(), ["a", "b", "c"]);
        assert_eq!(n.leaf(), "c");
        assert_eq!(n.to_string(), "a/b/c");
    }

    #[test]
    fn invalid_names_are_rejected() {
        assert!("".parse::<Name>().is_err());
        assert!("a//b".parse::<Name>().is_err());
        assert!(Name::from_segments(Vec::<String>::new()).is_err());
        assert!(name("a").child("b/c").is_err());
        assert!(name("a").child("").is_err());
    }

    #[test]
    fn bind_resolve_unbind() {
        let mut ctx = NamingContext::new();
        ctx.bind(&name("x/y"), target(1)).unwrap();
        assert_eq!(ctx.resolve(&name("x/y")).unwrap().id, 1);
        assert_eq!(ctx.resolve(&name("x")), None);
        assert_eq!(ctx.unbind(&name("x/y")).unwrap().id, 1);
        assert_eq!(ctx.resolve(&name("x/y")), None);
        assert_eq!(ctx.unbind(&name("x/y")), None);
    }

    #[test]
    fn double_bind_fails_rebind_replaces() {
        let mut ctx = NamingContext::new();
        ctx.bind(&name("t"), target(1)).unwrap();
        assert_eq!(
            ctx.bind(&name("t"), target(2)),
            Err(BindError::AlreadyBound { name: name("t") })
        );
        assert_eq!(ctx.rebind(&name("t"), target(3)).unwrap().id, 1);
        assert_eq!(ctx.resolve(&name("t")).unwrap().id, 3);
    }

    #[test]
    fn interior_nodes_can_be_bound_too() {
        let mut ctx = NamingContext::new();
        ctx.bind(&name("a/b"), target(1)).unwrap();
        ctx.bind(&name("a"), target(2)).unwrap();
        assert_eq!(ctx.resolve(&name("a")).unwrap().id, 2);
        assert_eq!(ctx.resolve(&name("a/b")).unwrap().id, 1);
        // Unbinding the interior keeps the child.
        ctx.unbind(&name("a"));
        assert_eq!(ctx.resolve(&name("a/b")).unwrap().id, 1);
    }

    #[test]
    fn list_shows_children_and_bound_flags() {
        let mut ctx = NamingContext::new();
        ctx.bind(&name("svc/trader"), target(1)).unwrap();
        ctx.bind(&name("svc/relocator"), target(2)).unwrap();
        assert_eq!(
            ctx.list(Some(&name("svc"))),
            vec![("relocator".to_owned(), true), ("trader".to_owned(), true)]
        );
        assert_eq!(ctx.list(None), vec![("svc".to_owned(), false)]);
        assert_eq!(ctx.list(Some(&name("nope"))), vec![]);
    }

    #[test]
    fn len_counts_bindings() {
        let mut ctx = NamingContext::new();
        assert!(ctx.is_empty());
        ctx.bind(&name("a/b"), target(1)).unwrap();
        ctx.bind(&name("a/c"), target(2)).unwrap();
        ctx.bind(&name("a"), target(3)).unwrap();
        assert_eq!(ctx.len(), 3);
        assert!(!ctx.is_empty());
    }
}
