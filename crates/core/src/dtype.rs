//! Data types and the structural subtype relation.
//!
//! RM-ODP's computational interfaces are strongly typed and subtyping gives
//! substitutability (§5.1.1). Interface subtyping (in `rmodp-computational`)
//! bottoms out in the subtype relation between the *data types* of operation
//! parameters and results defined here.
//!
//! The relation is structural:
//!
//! - every type is a subtype of [`DataType::Any`];
//! - `Int <: Float` (lossless widening on read);
//! - records use width + depth subtyping (a record with *more* fields, each
//!   a subtype, substitutes for one with fewer);
//! - sequences are covariant;
//! - enumerations are subtypes when their label set shrinks;
//! - interface references are compared by type name, optionally delegated to
//!   a resolver (the type repository) for structural comparison.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// The type of an ODP data value.
///
/// # Example
///
/// ```
/// use rmodp_core::dtype::DataType;
/// use rmodp_core::value::Value;
///
/// let account = DataType::record([
///     ("balance", DataType::Int),
///     ("owner", DataType::Text),
/// ]);
/// let v = Value::record([
///     ("balance", Value::Int(10)),
///     ("owner", Value::text("alice")),
/// ]);
/// assert!(account.check(&v).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// The top type: any value conforms.
    Any,
    /// Only `Value::Null`.
    Null,
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats (an `Int` value also conforms, by widening).
    Float,
    /// UTF-8 text.
    Text,
    /// Opaque bytes.
    Blob,
    /// A homogeneous sequence.
    Seq(Box<DataType>),
    /// A record with the given named fields.
    Record(BTreeMap<String, DataType>),
    /// A closed set of text labels.
    Enum(Vec<String>),
    /// A reference to an interface of the named type; `None` means a
    /// reference to an interface of any type.
    Ref(Option<String>),
    /// A value that is either of the inner type or `Null`.
    Optional(Box<DataType>),
}

impl DataType {
    /// Convenience constructor for a record type.
    pub fn record<K: Into<String>, I: IntoIterator<Item = (K, DataType)>>(fields: I) -> Self {
        DataType::Record(fields.into_iter().map(|(k, t)| (k.into(), t)).collect())
    }

    /// Convenience constructor for a sequence type.
    pub fn seq(elem: DataType) -> Self {
        DataType::Seq(Box::new(elem))
    }

    /// Convenience constructor for an optional type.
    pub fn optional(inner: DataType) -> Self {
        DataType::Optional(Box::new(inner))
    }

    /// Convenience constructor for an enumeration type.
    ///
    /// Labels are deduplicated and sorted so the representation is canonical.
    pub fn labels<S: Into<String>, I: IntoIterator<Item = S>>(labels: I) -> Self {
        let mut v: Vec<String> = labels.into_iter().map(Into::into).collect();
        v.sort();
        v.dedup();
        DataType::Enum(v)
    }

    /// Checks a value against this type.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] naming the path at which the value failed to
    /// conform.
    pub fn check(&self, value: &Value) -> Result<(), TypeError> {
        self.check_at(value, &mut Vec::new())
    }

    fn check_at(&self, value: &Value, path: &mut Vec<String>) -> Result<(), TypeError> {
        let fail = |path: &[String], expected: &DataType, got: &Value| {
            Err(TypeError {
                path: path.join("."),
                expected: expected.to_string(),
                got: got.kind().to_owned(),
            })
        };
        match (self, value) {
            (DataType::Any, _) => Ok(()),
            (DataType::Null, Value::Null) => Ok(()),
            (DataType::Bool, Value::Bool(_)) => Ok(()),
            (DataType::Int, Value::Int(_)) => Ok(()),
            (DataType::Float, Value::Float(_) | Value::Int(_)) => Ok(()),
            (DataType::Text, Value::Text(_)) => Ok(()),
            (DataType::Blob, Value::Blob(_)) => Ok(()),
            (DataType::Ref(_), Value::Ref(_)) => Ok(()),
            (DataType::Optional(inner), v) => {
                if v.is_null() {
                    Ok(())
                } else {
                    inner.check_at(v, path)
                }
            }
            (DataType::Enum(labels), Value::Text(s)) => {
                if labels.iter().any(|l| l == s) {
                    Ok(())
                } else {
                    Err(TypeError {
                        path: path.join("."),
                        expected: self.to_string(),
                        got: format!("label {s:?}"),
                    })
                }
            }
            (DataType::Seq(elem), Value::Seq(items)) => {
                for (i, item) in items.iter().enumerate() {
                    path.push(format!("[{i}]"));
                    elem.check_at(item, path)?;
                    path.pop();
                }
                Ok(())
            }
            (DataType::Record(fields), Value::Record(values)) => {
                for (name, ftype) in fields {
                    match values.get(name) {
                        Some(v) => {
                            path.push(name.clone());
                            ftype.check_at(v, path)?;
                            path.pop();
                        }
                        None if matches!(ftype, DataType::Optional(_)) => {}
                        None => {
                            return Err(TypeError {
                                path: path.join("."),
                                expected: format!("field {name:?}"),
                                got: "missing".to_owned(),
                            })
                        }
                    }
                }
                Ok(())
            }
            (expected, got) => fail(path, expected, got),
        }
    }

    /// Whether `self` is a (structural) subtype of `other` — i.e. whether a
    /// value of `self` can be used where `other` is expected.
    ///
    /// Interface-reference names are compared with `resolver`, allowing the
    /// type repository to substitute its structural interface-subtype check.
    pub fn is_subtype_with(&self, other: &DataType, resolver: &dyn Fn(&str, &str) -> bool) -> bool {
        use DataType::*;
        match (self, other) {
            (_, Any) => true,
            (Null, Null) => true,
            (Bool, Bool) => true,
            (Int, Int) => true,
            (Int, Float) => true,
            (Float, Float) => true,
            (Text, Text) => true,
            (Blob, Blob) => true,
            (Enum(a), Enum(b)) => a.iter().all(|l| b.contains(l)),
            (Enum(_), Text) => true,
            (Seq(a), Seq(b)) => a.is_subtype_with(b, resolver),
            (Record(sub), Record(sup)) => sup.iter().all(|(name, sup_t)| match sub.get(name) {
                Some(sub_t) => sub_t.is_subtype_with(sup_t, resolver),
                None => matches!(sup_t, Optional(_)),
            }),
            (Ref(_), Ref(None)) => true,
            (Ref(Some(a)), Ref(Some(b))) => a == b || resolver(a, b),
            (Null, Optional(_)) => true,
            (Optional(a), Optional(b)) => a.is_subtype_with(b, resolver),
            (a, Optional(b)) => a.is_subtype_with(b, resolver),
            _ => false,
        }
    }

    /// [`Self::is_subtype_with`] using name equality for interface refs.
    pub fn is_subtype_of(&self, other: &DataType) -> bool {
        self.is_subtype_with(other, &|a, b| a == b)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Any => write!(f, "any"),
            DataType::Null => write!(f, "null"),
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
            DataType::Blob => write!(f, "blob"),
            DataType::Seq(e) => write!(f, "seq<{e}>"),
            DataType::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {t}")?;
                }
                write!(f, "}}")
            }
            DataType::Enum(labels) => {
                write!(f, "enum(")?;
                for (i, l) in labels.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ")")
            }
            DataType::Ref(None) => write!(f, "interface"),
            DataType::Ref(Some(n)) => write!(f, "interface<{n}>"),
            DataType::Optional(t) => write!(f, "optional<{t}>"),
        }
    }
}

/// A value failed to conform to a [`DataType`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Dotted path into the value where the mismatch occurred ("" for root).
    pub path: String,
    /// Human-readable description of the expected type.
    pub expected: String,
    /// Human-readable description of what was found.
    pub got: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "expected {}, got {}", self.expected, self.got)
        } else {
            write!(
                f,
                "at {}: expected {}, got {}",
                self.path, self.expected, self.got
            )
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn account_type() -> DataType {
        DataType::record([
            ("balance", DataType::Int),
            ("owner", DataType::Text),
            ("tags", DataType::seq(DataType::Text)),
        ])
    }

    fn account_value() -> Value {
        Value::record([
            ("balance", Value::Int(100)),
            ("owner", Value::text("alice")),
            ("tags", Value::seq([Value::text("vip")])),
        ])
    }

    #[test]
    fn check_accepts_conforming_record() {
        assert!(account_type().check(&account_value()).is_ok());
    }

    #[test]
    fn check_reports_path_of_mismatch() {
        let mut v = account_value();
        v.set_field("tags", Value::seq([Value::Int(3)]));
        let err = account_type().check(&v).unwrap_err();
        assert_eq!(err.path, "tags.[0]");
        assert_eq!(err.got, "int");
    }

    #[test]
    fn check_reports_missing_field() {
        let v = Value::record([("balance", Value::Int(1))]);
        let err = account_type().check(&v).unwrap_err();
        assert!(err.expected.contains("owner"), "{err}");
        assert_eq!(err.got, "missing");
    }

    #[test]
    fn extra_value_fields_are_allowed() {
        // Width subtyping at the value level: providers may supply more.
        let mut v = account_value();
        v.set_field("extra", Value::Bool(true));
        assert!(account_type().check(&v).is_ok());
    }

    #[test]
    fn optional_fields_may_be_absent_or_null() {
        let t = DataType::record([("note", DataType::optional(DataType::Text))]);
        assert!(t.check(&Value::record::<&str, _>([])).is_ok());
        assert!(t.check(&Value::record([("note", Value::Null)])).is_ok());
        assert!(t
            .check(&Value::record([("note", Value::text("x"))]))
            .is_ok());
        assert!(t.check(&Value::record([("note", Value::Int(1))])).is_err());
    }

    #[test]
    fn int_conforms_to_float() {
        assert!(DataType::Float.check(&Value::Int(3)).is_ok());
        assert!(DataType::Int.check(&Value::Float(3.0)).is_err());
    }

    #[test]
    fn enum_checks_labels() {
        let t = DataType::labels(["ok", "error"]);
        assert!(t.check(&Value::text("ok")).is_ok());
        let err = t.check(&Value::text("warn")).unwrap_err();
        assert!(err.got.contains("warn"));
    }

    #[test]
    fn subtype_int_float_any() {
        assert!(DataType::Int.is_subtype_of(&DataType::Float));
        assert!(!DataType::Float.is_subtype_of(&DataType::Int));
        assert!(DataType::Blob.is_subtype_of(&DataType::Any));
        assert!(!DataType::Any.is_subtype_of(&DataType::Blob));
    }

    #[test]
    fn record_width_and_depth_subtyping() {
        let wide = DataType::record([("a", DataType::Int), ("b", DataType::Text)]);
        let narrow = DataType::record([("a", DataType::Float)]);
        assert!(wide.is_subtype_of(&narrow));
        assert!(!narrow.is_subtype_of(&wide));
    }

    #[test]
    fn record_with_optional_sup_field_absent_in_sub() {
        let sup = DataType::record([
            ("a", DataType::Int),
            ("note", DataType::optional(DataType::Text)),
        ]);
        let sub = DataType::record([("a", DataType::Int)]);
        assert!(sub.is_subtype_of(&sup));
    }

    #[test]
    fn seq_is_covariant() {
        assert!(DataType::seq(DataType::Int).is_subtype_of(&DataType::seq(DataType::Float)));
        assert!(!DataType::seq(DataType::Float).is_subtype_of(&DataType::seq(DataType::Int)));
    }

    #[test]
    fn enum_subtyping_by_label_subset() {
        let small = DataType::labels(["ok"]);
        let big = DataType::labels(["ok", "error"]);
        assert!(small.is_subtype_of(&big));
        assert!(!big.is_subtype_of(&small));
        assert!(big.is_subtype_of(&DataType::Text));
    }

    #[test]
    fn ref_subtyping_uses_resolver() {
        let teller = DataType::Ref(Some("BankTeller".into()));
        let manager = DataType::Ref(Some("BankManager".into()));
        assert!(manager.is_subtype_of(&DataType::Ref(None)));
        assert!(!manager.is_subtype_of(&teller));
        // With a resolver that knows BankManager <: BankTeller:
        let resolver = |a: &str, b: &str| a == "BankManager" && b == "BankTeller";
        assert!(manager.is_subtype_with(&teller, &resolver));
        assert!(!teller.is_subtype_with(&manager, &resolver));
    }

    #[test]
    fn optional_subtyping() {
        let t = DataType::optional(DataType::Int);
        assert!(DataType::Null.is_subtype_of(&t));
        assert!(DataType::Int.is_subtype_of(&t));
        assert!(
            DataType::optional(DataType::Int).is_subtype_of(&DataType::optional(DataType::Float))
        );
        assert!(!t.is_subtype_of(&DataType::Int));
    }

    #[test]
    fn display_formats_compound_types() {
        let t = DataType::record([("xs", DataType::seq(DataType::Int))]);
        assert_eq!(t.to_string(), "{xs: seq<int>}");
        assert_eq!(DataType::labels(["b", "a"]).to_string(), "enum(a|b)");
        assert_eq!(DataType::Ref(Some("T".into())).to_string(), "interface<T>");
    }
}
