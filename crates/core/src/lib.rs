//! # rmodp-core — foundations of the RM-ODP realisation
//!
//! This crate implements the *descriptive model* (ISO 10746-2 / ITU-T X.902)
//! concepts that every other crate in the workspace builds upon:
//!
//! - [`id`] — strongly-typed identifiers for the entities of all five
//!   viewpoints (objects, interfaces, nodes, capsules, clusters, …).
//! - [`value`] — the [`Value`](value::Value) data model exchanged between
//!   objects: the universe of discourse for information schemas, operation
//!   parameters, trader properties and checkpoints.
//! - [`dtype`] — [`DataType`](dtype::DataType)s describing values, with the
//!   structural subtype relation used by interface subtyping (§5.1.1 of the
//!   tutorial) and by type checking of operation parameters.
//! - [`expr`] — a small expression language (lexer → parser → evaluator →
//!   type inference) shared by invariant/dynamic information schemas (§4),
//!   enterprise policies (§3) and trader constraint matching (§8.3.2).
//! - [`contract`] — environment contracts expressed as quality-of-service
//!   requirements and offers (§5.3).
//! - [`naming`] — hierarchical naming contexts used by the repositories.
//! - [`codec`] — transfer syntaxes (a compact binary and a self-describing
//!   text syntax) used by access-transparency stubs to marshal values
//!   between heterogeneous representations (§9.1).
//!
//! # Example
//!
//! ```
//! use rmodp_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An account state, an invariant schema predicate, and a check.
//! let account = Value::record([
//!     ("balance", Value::Int(1_000)),
//!     ("withdrawn_today", Value::Int(400)),
//! ]);
//! let invariant = Expr::parse("withdrawn_today <= 500 and balance >= 0")?;
//! assert_eq!(invariant.eval(&account)?, Value::Bool(true));
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod contract;
pub mod dtype;
pub mod expr;
pub mod id;
pub mod naming;
pub mod value;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::codec::{BinarySyntax, TextSyntax, TransferSyntax};
    pub use crate::contract::{EnvironmentContract, QosOffer, QosRequirement};
    pub use crate::dtype::DataType;
    pub use crate::expr::Expr;
    pub use crate::id::*;
    pub use crate::naming::{Name, NamingContext};
    pub use crate::value::Value;
}
