//! Property-based tests for the core data model, codecs and expression
//! language.

use proptest::prelude::*;

use rmodp_core::codec::{BinarySyntax, TextSyntax, TransferSyntax};
use rmodp_core::dtype::DataType;
use rmodp_core::expr::Expr;
use rmodp_core::naming::{BindingTarget, Name, NamingContext};
use rmodp_core::value::Value;

/// Strategy for arbitrary values, with bounded depth and width.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks equality-based round-trip checks.
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-./\"\\\\\n]{0,12}".prop_map(Value::text),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Blob),
        any::<u64>().prop_map(Value::Ref),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Seq),
            proptest::collection::btree_map("[a-z_][a-z0-9_]{0,6}", inner, 0..4)
                .prop_map(Value::Record),
        ]
    })
}

/// Strategy for arbitrary data types.
fn arb_dtype() -> impl Strategy<Value = DataType> {
    let leaf = prop_oneof![
        Just(DataType::Any),
        Just(DataType::Null),
        Just(DataType::Bool),
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Text),
        Just(DataType::Blob),
        proptest::collection::vec("[a-z]{1,4}", 1..3).prop_map(DataType::labels),
        proptest::option::of("[A-Z][a-z]{0,5}").prop_map(DataType::Ref),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(DataType::seq),
            inner.clone().prop_map(DataType::optional),
            proptest::collection::btree_map("[a-z]{1,4}", inner, 0..3).prop_map(DataType::Record),
        ]
    })
}

proptest! {
    #[test]
    fn binary_codec_round_trips(v in arb_value()) {
        let bytes = BinarySyntax.encode(&v);
        let back = BinarySyntax.decode(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn text_codec_round_trips(v in arb_value()) {
        let bytes = TextSyntax.encode(&v);
        let back = TextSyntax.decode(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn binary_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = BinarySyntax.decode(&bytes);
    }

    #[test]
    fn text_decode_never_panics_on_garbage(s in "\\PC{0,64}") {
        let _ = TextSyntax.decode(s.as_bytes());
    }

    #[test]
    fn subtyping_is_reflexive(t in arb_dtype()) {
        prop_assert!(t.is_subtype_of(&t), "{t} should be a subtype of itself");
    }

    #[test]
    fn subtyping_is_transitive(a in arb_dtype(), b in arb_dtype(), c in arb_dtype()) {
        if a.is_subtype_of(&b) && b.is_subtype_of(&c) {
            prop_assert!(a.is_subtype_of(&c), "{a} <: {b} <: {c} but not {a} <: {c}");
        }
    }

    #[test]
    fn conforming_values_still_conform_at_supertype(v in arb_value(), a in arb_dtype(), b in arb_dtype()) {
        // Substitutability: if v : a and a <: b then v : b.
        if a.check(&v).is_ok() && a.is_subtype_of(&b) {
            prop_assert!(b.check(&v).is_ok(), "v={v} a={a} b={b}");
        }
    }

    #[test]
    fn expr_display_parse_round_trip(
        x in -1000i64..1000,
        y in -1000i64..1000,
    ) {
        // Build expressions programmatically and check print→parse fidelity.
        let e = Expr::Binary(
            rmodp_core::expr::BinOp::Add,
            Box::new(Expr::lit(x)),
            Box::new(Expr::Binary(
                rmodp_core::expr::BinOp::Mul,
                Box::new(Expr::lit(y)),
                Box::new(Expr::var("k")),
            )),
        );
        let printed = e.to_string();
        let parsed = Expr::parse(&printed).unwrap();
        // Negative literals re-parse as unary negation, so compare by
        // evaluation rather than AST equality.
        let env = Value::record([("k", Value::Int(3))]);
        prop_assert_eq!(parsed.eval(&env).unwrap(), e.eval(&env).unwrap());
    }

    #[test]
    fn arithmetic_expressions_agree_with_rust(
        a in -10_000i64..10_000,
        b in -10_000i64..10_000,
        c in 1i64..100,
    ) {
        let env = Value::record([
            ("a", Value::Int(a)),
            ("b", Value::Int(b)),
            ("c", Value::Int(c)),
        ]);
        let e = Expr::parse("(a + b) * c - a / c").unwrap();
        let expected = (a.wrapping_add(b)).wrapping_mul(c).wrapping_sub(a / c);
        prop_assert_eq!(e.eval(&env).unwrap(), Value::Int(expected));
    }

    #[test]
    fn comparison_total_on_ints(a in any::<i64>(), b in any::<i64>()) {
        let env = Value::record([("a", Value::Int(a)), ("b", Value::Int(b))]);
        let lt = Expr::parse("a < b").unwrap().eval_bool(&env).unwrap();
        let ge = Expr::parse("a >= b").unwrap().eval_bool(&env).unwrap();
        prop_assert_eq!(lt, !ge);
    }

    #[test]
    fn naming_bind_then_resolve(
        segs in proptest::collection::vec("[a-z]{1,6}", 1..4),
        id in any::<u64>(),
    ) {
        let name = Name::from_segments(segs).unwrap();
        let mut ctx = NamingContext::new();
        ctx.bind(&name, BindingTarget { id, kind: "t".into() }).unwrap();
        prop_assert_eq!(ctx.resolve(&name).map(|t| t.id), Some(id));
        prop_assert_eq!(ctx.unbind(&name).map(|t| t.id), Some(id));
        prop_assert!(ctx.resolve(&name).is_none());
    }

    #[test]
    fn dtype_check_never_panics(v in arb_value(), t in arb_dtype()) {
        let _ = t.check(&v);
    }
}
