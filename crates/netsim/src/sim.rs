//! The discrete-event simulation engine.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;
use rmodp_kernel::payload::Payload;
use rmodp_kernel::queue::EventQueue;
use rmodp_kernel::rng::KernelRng;
use rmodp_kernel::shard::{CrossShardEvent, ShardWorld};
use rmodp_kernel::{PartitionMap, World};
use rmodp_observe::{bus, event, EventKind, Layer};

use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{Metrics, TraceEntry, TraceKind};

/// Index of a node within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A process address: a node plus a port on that node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// The node hosting the process.
    pub node: NodeIdx,
    /// The port the process listens on.
    pub port: u32,
}

impl Addr {
    /// Creates an address.
    pub const fn new(node: NodeIdx, port: u32) -> Self {
        Self { node, port }
    }

    /// The conventional source address for messages injected from outside
    /// the simulation (drivers, test harnesses).
    pub const EXTERNAL: Addr = Addr::new(NodeIdx(u32::MAX), 0);
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Addr::EXTERNAL {
            write!(f, "external")
        } else {
            write!(f, "{}:{}", self.node, self.port)
        }
    }
}

/// A message in flight.
///
/// The payload is a shared [`Payload`]: forwarding, echoing, or fanning
/// a message out shares one immutable buffer instead of deep-cloning
/// bytes per hop.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Opaque payload (shared bytes).
    pub payload: Payload,
    /// When the sender handed it to the network.
    pub sent_at: SimTime,
}

/// Identifies a timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

/// A simulated process: reacts to messages and timers.
///
/// Processes run to completion on each event (no blocking); long-running
/// behaviour is expressed by setting timers.
///
/// Processes are `Send` so a [`Sim`] can serve as one shard of a
/// [`ShardedKernel`](rmodp_kernel::ShardedKernel) running on its own
/// thread; a process never runs on two threads at once (each shard owns
/// its processes exclusively), so no further synchronization is needed.
pub trait Process: Send + 'static {
    /// Handles a delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message);

    /// Handles a fired timer; `tag` is the value given to
    /// [`Ctx::set_timer`]. The default implementation ignores timers.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// Object-safe wrapper adding downcasting to [`Process`], so harnesses can
/// inspect process state after a run.
trait AnyProcess: Process {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Process + Any> AnyProcess for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The capabilities available to a process while handling an event.
///
/// Effects (sends, timers, notes) are buffered and applied by the engine
/// after the handler returns, which keeps event handling deterministic.
pub struct Ctx<'a> {
    now: SimTime,
    self_addr: Addr,
    rng: &'a mut StdRng,
    next_timer: &'a mut u64,
    out: Vec<Command>,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The address of the process handling this event.
    pub fn self_addr(&self) -> Addr {
        self.self_addr
    }

    /// Sends a message from this process. The causal context active
    /// *now* is captured with the command: commands are applied after
    /// the handler returns, by which time a context the handler pushed
    /// (e.g. a queued request's span restored around its dispatch) has
    /// been popped again.
    pub fn send(&mut self, dst: Addr, payload: impl Into<Payload>) {
        self.out.push(Command::Send {
            dst,
            payload: payload.into(),
            context: bus::current_context(),
        });
    }

    /// Schedules a timer to fire after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.out.push(Command::SetTimer {
            at: self.now + delay,
            tag,
            id,
        });
        id
    }

    /// Cancels a previously set timer. Cancelling an already-fired timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.out.push(Command::CancelTimer(id));
    }

    /// Draws a deterministic random float in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Draws a deterministic random integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random_below(0)");
        self.rng.gen_range(0..bound)
    }

    /// Records an application-level note in the trace.
    pub fn note(&mut self, detail: impl Into<String>) {
        self.out.push(Command::Note(detail.into()));
    }
}

#[derive(Debug)]
enum Command {
    Send {
        dst: Addr,
        payload: Payload,
        /// Causal context captured at `Ctx::send` time (see there).
        context: Option<u64>,
    },
    SetTimer {
        at: SimTime,
        tag: u64,
        id: TimerId,
    },
    CancelTimer(TimerId),
    Note(String),
}

#[derive(Debug)]
enum Pending {
    Deliver { msg: Message, span: u64 },
    Timer { addr: Addr, tag: u64, id: TimerId },
}

/// A topology/fault action applied identically to every shard of a
/// sharded run at an epoch barrier, so all shards keep the same view of
/// the shared network state. Only the deterministic fault kinds appear
/// here: loss and latency changes would either consume RNG draws or
/// invalidate the lookahead bound mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAction {
    /// Crash a node (messages and timers dropped).
    Crash(NodeIdx),
    /// Restart a crashed node.
    Restart(NodeIdx),
    /// Sever connectivity between two nodes.
    Partition(NodeIdx, NodeIdx),
    /// Restore connectivity between two nodes.
    Heal(NodeIdx, NodeIdx),
}

/// State a [`Sim`] keeps when acting as one shard of a
/// [`ShardedKernel`](rmodp_kernel::ShardedKernel): which shard it is,
/// who owns every node, and the cross-shard messages emitted since the
/// last epoch barrier.
#[derive(Debug)]
struct ShardRouting {
    shard_id: usize,
    map: PartitionMap,
    outbox: Vec<CrossShardEvent<Message>>,
    sent: u64,
}

/// The simulation engine. See the [crate docs](crate) for an example.
///
/// Scheduling is delegated to the kernel's [`EventQueue`]: one totally
/// ordered `(time, seq)` schedule whose clock feeds the observe bus, so
/// this crate no longer carries its own heap or clock.
pub struct Sim {
    queue: EventQueue<Pending>,
    next_timer: u64,
    procs: BTreeMap<Addr, Box<dyn AnyProcess>>,
    topology: Topology,
    rng: KernelRng,
    nodes: u32,
    cancelled: BTreeSet<TimerId>,
    metrics: Metrics,
    trace: Vec<TraceEntry>,
    tracing: bool,
    shard: Option<ShardRouting>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.queue.now())
            .field("nodes", &self.nodes)
            .field("procs", &self.procs.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulator with a seeded RNG and a default full-mesh
    /// topology.
    pub fn new(seed: u64) -> Self {
        Self::with_topology(seed, Topology::full_mesh(Default::default()))
    }

    /// Creates a simulator with an explicit topology.
    ///
    /// Also resets the thread's [`rmodp_observe`] bus, so every
    /// simulation starts a fresh, deterministic event stream: the same
    /// seed and workload produce a byte-identical trace.
    pub fn with_topology(seed: u64, topology: Topology) -> Self {
        bus::reset();
        Self {
            next_timer: 0,
            queue: EventQueue::new(),
            procs: BTreeMap::new(),
            topology,
            rng: KernelRng::seeded(seed),
            nodes: 0,
            cancelled: BTreeSet::new(),
            metrics: Metrics::default(),
            trace: Vec::new(),
            tracing: false,
            shard: None,
        }
    }

    /// Turns this simulator into shard `shard_id` of a partitioned run:
    /// it keeps the full topology (every shard shares one world view)
    /// and its own queue, RNG stream and clock, but only hosts processes
    /// for nodes the partition map assigns to it. Sends to nodes owned
    /// by other shards are diverted into an outbox drained at epoch
    /// barriers by a [`ShardedKernel`](rmodp_kernel::ShardedKernel).
    ///
    /// The queue's tie-break counter is re-strided so sequence numbers
    /// are globally unique across shards (`seq ≡ shard_id (mod shards)`).
    ///
    /// # Panics
    ///
    /// Panics if `shard_id` is out of range for the map, or if events
    /// are already queued (sharding must be configured before load).
    pub fn enable_shard_routing(&mut self, shard_id: usize, map: PartitionMap) {
        assert!(shard_id < map.shards(), "shard id out of range");
        assert!(
            self.queue.is_empty(),
            "enable shard routing before scheduling events"
        );
        self.queue = EventQueue::with_seq_stride(shard_id as u64, map.shards() as u64);
        self.shard = Some(ShardRouting {
            shard_id,
            map,
            outbox: Vec::new(),
            sent: 0,
        });
    }

    /// Which shard owns a node (shard 0 when routing is disabled).
    pub fn owning_shard(&self, node: NodeIdx) -> usize {
        self.shard
            .as_ref()
            .map_or(0, |s| s.map.owner(node.0 as usize))
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self) -> NodeIdx {
        let idx = NodeIdx(self.nodes);
        self.nodes += 1;
        idx
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Attaches a process at an address, replacing any previous process
    /// there. Returns `true` if a process was replaced.
    pub fn attach<P: Process>(&mut self, addr: Addr, process: P) -> bool {
        self.procs.insert(addr, Box::new(process)).is_some()
    }

    /// Detaches the process at an address (used by migration).
    pub fn detach(&mut self, addr: Addr) -> bool {
        self.procs.remove(&addr).is_some()
    }

    /// Whether a process is attached at the address.
    pub fn is_attached(&self, addr: Addr) -> bool {
        self.procs.contains_key(&addr)
    }

    /// Immutable access to an attached process of a known concrete type.
    pub fn inspect<P: Process>(&self, addr: Addr) -> Option<&P> {
        self.procs.get(&addr)?.as_any().downcast_ref::<P>()
    }

    /// Mutable access to an attached process of a known concrete type.
    pub fn inspect_mut<P: Process>(&mut self, addr: Addr) -> Option<&mut P> {
        self.procs.get_mut(&addr)?.as_any_mut().downcast_mut::<P>()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The topology (for configuring links, partitions and crashes).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The topology, immutably.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Cumulative counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Enables or disables trace collection.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Takes the collected trace, leaving it empty.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        std::mem::take(&mut self.trace)
    }

    /// Injects a message into the network as if sent by `src` now.
    ///
    /// Drivers typically use [`Addr::EXTERNAL`] as the source.
    pub fn send_from(&mut self, src: Addr, dst: Addr, payload: impl Into<Payload>) {
        self.do_send(src, dst, payload.into());
    }

    /// Schedules a timer for an address from outside the simulation.
    pub fn schedule_timer(&mut self, addr: Addr, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        let at = self.now() + delay;
        self.queue.schedule(at, Pending::Timer { addr, tag, id });
        id
    }

    /// Executes the next event, if any. Returns `false` when the queue is
    /// empty. Popping advances the kernel clock (and the observe bus's
    /// time) to the event's timestamp.
    pub fn step(&mut self) -> bool {
        let Some((_, pending)) = self.queue.pop() else {
            return false;
        };
        match pending {
            Pending::Deliver { msg, span } => self.deliver(msg, span),
            Pending::Timer { addr, tag, id } => self.fire_timer(addr, tag, id),
        }
        true
    }

    /// Runs until the queue drains.
    ///
    /// # Panics
    ///
    /// Panics after 50 million events — a runaway-loop backstop far above
    /// any legitimate workload in this workspace.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut steps = 0u64;
        while self.step() {
            steps += 1;
            assert!(steps < 50_000_000, "simulation did not quiesce");
        }
        steps
    }

    /// Runs until virtual time reaches `deadline` (events after it stay
    /// queued); the clock is advanced to the deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut steps = 0u64;
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            self.step();
            steps += 1;
        }
        self.queue.advance_to(deadline);
        steps
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        self.run_until(self.now() + d)
    }

    fn record(&mut self, kind: TraceKind, addr: Addr, detail: impl Into<String>) {
        if self.tracing {
            self.trace.push(TraceEntry {
                at: self.queue.now(),
                kind,
                addr,
                detail: detail.into(),
            });
        }
    }

    /// Builds a located event: node/port coordinates attached unless the
    /// address is the external injector.
    fn located(kind: EventKind, addr: Addr) -> rmodp_observe::EventBuilder {
        let b = event(Layer::Netsim, kind);
        if addr == Addr::EXTERNAL {
            b
        } else {
            b.node(addr.node.0 as u64).port(addr.port as u64)
        }
    }

    fn drop_msg(&mut self, span: u64, at: Addr, reason: &'static str) {
        self.record(TraceKind::Drop, at, reason);
        Self::located(EventKind::Drop, at)
            .span(span)
            .detail(reason)
            .emit();
        bus::counter_add("netsim.dropped", 1);
    }

    fn do_send(&mut self, src: Addr, dst: Addr, payload: Payload) {
        bus::set_time_us(self.now().as_micros());
        self.metrics.sent += 1;
        // One causal span per message: allocated at the send, carried to
        // the delivery (or drop), parented on whatever activity —
        // an invocation, a delivery being handled — caused the send.
        let span = bus::new_span();
        Self::located(EventKind::Send, src)
            .span(span)
            .parent_from_context()
            .detail(format!("-> {dst} ({} bytes)", payload.len()))
            .emit();
        bus::counter_add("netsim.sent", 1);
        self.record(
            TraceKind::Send,
            src,
            format!("-> {dst} ({} bytes)", payload.len()),
        );
        if self.topology.is_crashed(dst.node) || self.topology.is_crashed(src.node) {
            self.metrics.dropped_crash += 1;
            self.drop_msg(span, dst, "endpoint crashed");
            return;
        }
        let cross_node = src.node != dst.node && src != Addr::EXTERNAL;
        if cross_node && !self.topology.connected(src.node, dst.node) {
            self.metrics.dropped_partition += 1;
            self.drop_msg(span, dst, "partitioned");
            return;
        }
        let latency = if !cross_node {
            self.topology.local_latency()
        } else {
            let link = self.topology.link(src.node, dst.node);
            if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
                self.metrics.dropped_loss += 1;
                self.drop_msg(span, dst, "random loss");
                return;
            }
            let jitter_us = link.jitter.as_micros();
            let extra = if jitter_us > 0 {
                SimDuration::from_micros(self.rng.gen_range(0..=jitter_us))
            } else {
                SimDuration::ZERO
            };
            link.latency + extra
        };
        let now = self.now();
        let msg = Message {
            src,
            dst,
            payload,
            sent_at: now,
        };
        let arrive = now + latency;
        if let Some(shard) = self.shard.as_mut() {
            let dst_shard = shard.map.owner(dst.node.0 as usize);
            if dst_shard != shard.shard_id {
                // The destination node lives on another shard: divert
                // into the outbox for the epoch barrier's canonical
                // merge. The payload is an `Arc` slice, so crossing the
                // shard (and thread) boundary shares bytes, never
                // copies them.
                let src_seq = shard.sent;
                shard.sent += 1;
                shard.outbox.push(CrossShardEvent {
                    at: arrive,
                    src_shard: shard.shard_id,
                    src_seq,
                    dst_shard,
                    msg,
                });
                return;
            }
        }
        self.queue.schedule(arrive, Pending::Deliver { msg, span });
    }

    fn deliver(&mut self, msg: Message, span: u64) {
        let dst = msg.dst;
        if self.topology.is_crashed(dst.node) {
            self.metrics.dropped_crash += 1;
            self.record(TraceKind::Drop, dst, "destination crashed in flight");
            Self::located(EventKind::Drop, dst)
                .span(span)
                .detail("destination crashed in flight")
                .emit();
            bus::counter_add("netsim.dropped", 1);
            return;
        }
        let Some(mut process) = self.procs.remove(&dst) else {
            self.metrics.dropped_unroutable += 1;
            self.record(TraceKind::Drop, dst, "no process attached");
            Self::located(EventKind::Drop, dst)
                .span(span)
                .detail("no process attached")
                .emit();
            bus::counter_add("netsim.dropped", 1);
            return;
        };
        self.metrics.delivered += 1;
        self.metrics.bytes_delivered += msg.payload.len() as u64;
        self.record(
            TraceKind::Deliver,
            dst,
            format!("<- {} ({} bytes)", msg.src, msg.payload.len()),
        );
        Self::located(EventKind::Deliver, dst)
            .span(span)
            .detail(format!("<- {} ({} bytes)", msg.src, msg.payload.len()))
            .emit();
        bus::counter_add("netsim.delivered", 1);
        bus::observe(
            "netsim.delivery_us",
            self.now()
                .as_micros()
                .saturating_sub(msg.sent_at.as_micros()),
        );
        let mut ctx = Ctx {
            now: self.now(),
            self_addr: dst,
            rng: &mut self.rng,
            next_timer: &mut self.next_timer,
            out: Vec::new(),
        };
        // Handler effects are causally downstream of this delivery.
        bus::push_context(span);
        process.on_message(&mut ctx, msg);
        let commands = ctx.out;
        // Reinsert unless the handler's own node was detached meanwhile —
        // it cannot have been, since we hold &mut self.
        self.procs.insert(dst, process);
        self.apply(dst, commands);
        bus::pop_context();
    }

    fn fire_timer(&mut self, addr: Addr, tag: u64, id: TimerId) {
        if self.cancelled.remove(&id) {
            return;
        }
        if self.topology.is_crashed(addr.node) {
            self.record(
                TraceKind::Drop,
                addr,
                format!("timer {tag} on crashed node"),
            );
            return;
        }
        let Some(mut process) = self.procs.remove(&addr) else {
            return;
        };
        self.metrics.timers_fired += 1;
        self.record(TraceKind::Timer, addr, format!("tag={tag}"));
        Self::located(EventKind::TimerFired, addr)
            .detail(format!("tag={tag}"))
            .emit();
        bus::counter_add("netsim.timers_fired", 1);
        let mut ctx = Ctx {
            now: self.now(),
            self_addr: addr,
            rng: &mut self.rng,
            next_timer: &mut self.next_timer,
            out: Vec::new(),
        };
        process.on_timer(&mut ctx, tag);
        let commands = ctx.out;
        self.procs.insert(addr, process);
        self.apply(addr, commands);
    }

    fn apply(&mut self, from: Addr, commands: Vec<Command>) {
        for cmd in commands {
            match cmd {
                Command::Send {
                    dst,
                    payload,
                    context,
                } => {
                    // Restore the sender's causal context so the Send
                    // event parents on the activity that provoked it
                    // even when the command is applied context-free
                    // (timer handlers, queued dispatches).
                    let restored = match (context, bus::current_context()) {
                        (Some(span), top) if top != Some(span) => {
                            bus::push_context(span);
                            true
                        }
                        _ => false,
                    };
                    self.do_send(from, dst, payload);
                    if restored {
                        bus::pop_context();
                    }
                }
                Command::SetTimer { at, tag, id } => {
                    self.queue.schedule(
                        at,
                        Pending::Timer {
                            addr: from,
                            tag,
                            id,
                        },
                    );
                }
                Command::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
                Command::Note(detail) => {
                    Self::located(EventKind::Note, from)
                        .detail(detail.clone())
                        .emit();
                    self.record(TraceKind::Note, from, detail);
                }
            }
        }
    }
}

/// One simulator is one shard of a partitioned run (after
/// [`Sim::enable_shard_routing`]): it advances its own queue up to the
/// conservative horizon and exchanges diverted deliveries at epoch
/// barriers.
impl ShardWorld for Sim {
    type Msg = Message;
    type Action = ShardAction;

    fn shard_id(&self) -> usize {
        self.shard
            .as_ref()
            .expect("enable_shard_routing first")
            .shard_id
    }

    fn now(&self) -> SimTime {
        Sim::now(self)
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn run_before(&mut self, horizon: SimTime) -> u64 {
        let mut events = 0;
        while self.queue.peek_time().is_some_and(|t| t < horizon) {
            self.step();
            events += 1;
        }
        events
    }

    fn take_outbox(&mut self) -> Vec<CrossShardEvent<Message>> {
        self.shard
            .as_mut()
            .map_or_else(Vec::new, |s| std::mem::take(&mut s.outbox))
    }

    fn deposit(&mut self, event: CrossShardEvent<Message>) {
        debug_assert!(
            event.at >= self.queue.now(),
            "cross-shard deposit in this shard's past"
        );
        // The delivery gets a fresh causal span on this shard's thread;
        // cross-thread span parentage is not stitched (the observe bus
        // is thread-local), which only affects diagnostic traces, never
        // simulation state.
        let span = bus::new_span();
        self.queue.schedule(
            event.at,
            Pending::Deliver {
                msg: event.msg,
                span,
            },
        );
    }

    fn apply_action(&mut self, action: &ShardAction) {
        match *action {
            ShardAction::Crash(node) => self.topology.crash(node),
            ShardAction::Restart(node) => self.topology.restart(node),
            ShardAction::Partition(a, b) => self.topology.partition(a, b),
            ShardAction::Heal(a, b) => self.topology.heal(a, b),
        }
    }
}

/// The simulator is a kernel [`World`]: its queue is the one schedule
/// actors (workload loops, fault injectors) interleave with.
impl World for Sim {
    fn now(&self) -> SimTime {
        Sim::now(self)
    }

    fn advance_to(&mut self, at: SimTime) {
        self.run_until(at);
    }

    fn run_until_idle(&mut self) {
        Sim::run_until_idle(self);
    }

    fn step(&mut self) -> bool {
        Sim::step(self)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkConfig;

    /// Records everything it receives; replies when `echo` is set.
    struct Recorder {
        echo: bool,
        received: Vec<Payload>,
        timer_tags: Vec<u64>,
    }

    impl Recorder {
        fn new(echo: bool) -> Self {
            Self {
                echo,
                received: Vec::new(),
                timer_tags: Vec::new(),
            }
        }
    }

    impl Process for Recorder {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            self.received.push(msg.payload.clone());
            if self.echo {
                ctx.send(msg.src, msg.payload);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
            self.timer_tags.push(tag);
        }
    }

    fn two_node_sim(link: LinkConfig) -> (Sim, Addr, Addr) {
        let mut sim = Sim::with_topology(1, Topology::full_mesh(link));
        let a = sim.add_node();
        let b = sim.add_node();
        let pa = Addr::new(a, 0);
        let pb = Addr::new(b, 0);
        sim.attach(pa, Recorder::new(true));
        sim.attach(pb, Recorder::new(false));
        (sim, pa, pb)
    }

    #[test]
    fn message_round_trip_with_latency() {
        let (mut sim, pa, pb) = two_node_sim(LinkConfig::with_latency(SimDuration::from_millis(3)));
        sim.send_from(pb, pa, b"ping".to_vec());
        sim.run_until_idle();
        // pb -> pa (3ms) then echo pa -> pb (3ms).
        assert_eq!(sim.now(), SimTime::from_micros(6_000));
        assert_eq!(sim.inspect::<Recorder>(pa).unwrap().received.len(), 1);
        assert_eq!(
            sim.inspect::<Recorder>(pb).unwrap().received,
            vec![b"ping".to_vec()]
        );
        assert_eq!(sim.metrics().delivered, 2);
    }

    #[test]
    fn same_node_delivery_uses_local_latency() {
        let mut sim = Sim::new(1);
        let n = sim.add_node();
        let p0 = Addr::new(n, 0);
        let p1 = Addr::new(n, 1);
        sim.attach(p0, Recorder::new(false));
        sim.attach(p1, Recorder::new(false));
        sim.send_from(p0, p1, vec![1]);
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::from_micros(1));
        assert_eq!(sim.inspect::<Recorder>(p1).unwrap().received.len(), 1);
    }

    #[test]
    fn loss_drops_messages_deterministically() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(1)).loss(0.5);
        let (mut sim, pa, pb) = two_node_sim(link);
        // Replace echo with silent sink so each send is independent.
        sim.attach(pa, Recorder::new(false));
        for _ in 0..1000 {
            sim.send_from(pb, pa, vec![0]);
        }
        sim.run_until_idle();
        let delivered = sim.inspect::<Recorder>(pa).unwrap().received.len();
        let dropped = sim.metrics().dropped_loss as usize;
        assert_eq!(delivered + dropped, 1000);
        // With p=0.5 over 1000 trials this is > 12 sigma from the mean.
        assert!((300..=700).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn partitions_block_and_heal_restores() {
        let (mut sim, pa, pb) = two_node_sim(LinkConfig::ideal());
        sim.topology_mut().partition(pa.node, pb.node);
        sim.send_from(pb, pa, vec![1]);
        sim.run_until_idle();
        assert_eq!(sim.metrics().dropped_partition, 1);
        sim.topology_mut().heal(pa.node, pb.node);
        sim.send_from(pb, pa, vec![2]);
        sim.run_until_idle();
        assert_eq!(sim.inspect::<Recorder>(pa).unwrap().received, vec![vec![2]]);
    }

    #[test]
    fn crashed_node_drops_messages_and_timers() {
        let (mut sim, pa, pb) = two_node_sim(LinkConfig::ideal());
        sim.schedule_timer(pa, SimDuration::from_millis(5), 42);
        sim.topology_mut().crash(pa.node);
        sim.send_from(pb, pa, vec![1]);
        sim.run_until_idle();
        assert_eq!(sim.metrics().dropped_crash, 1);
        assert_eq!(sim.inspect::<Recorder>(pa).unwrap().timer_tags.len(), 0);
        // After restart the node receives again.
        sim.topology_mut().restart(pa.node);
        sim.send_from(pb, pa, vec![2]);
        sim.run_until_idle();
        assert_eq!(sim.inspect::<Recorder>(pa).unwrap().received, vec![vec![2]]);
    }

    #[test]
    fn in_flight_messages_to_crashing_node_are_lost() {
        let (mut sim, pa, pb) =
            two_node_sim(LinkConfig::with_latency(SimDuration::from_millis(10)));
        sim.send_from(pb, pa, vec![1]);
        // Crash before delivery time.
        sim.topology_mut().crash(pa.node);
        sim.run_until_idle();
        assert_eq!(sim.metrics().dropped_crash, 1);
        assert_eq!(sim.metrics().delivered, 0);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct TimerProc {
            fired: Vec<u64>,
        }
        impl Process for TimerProc {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                ctx.set_timer(SimDuration::from_millis(3), 3);
                let id = ctx.set_timer(SimDuration::from_millis(2), 2);
                ctx.cancel_timer(id);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Sim::new(3);
        let n = sim.add_node();
        let p = Addr::new(n, 0);
        sim.attach(p, TimerProc { fired: vec![] });
        sim.send_from(Addr::EXTERNAL, p, vec![]);
        sim.run_until_idle();
        assert_eq!(sim.inspect::<TimerProc>(p).unwrap().fired, vec![1, 3]);
        assert_eq!(sim.metrics().timers_fired, 2);
    }

    #[test]
    fn unroutable_messages_are_counted() {
        let mut sim = Sim::new(1);
        let n = sim.add_node();
        sim.send_from(Addr::EXTERNAL, Addr::new(n, 9), vec![1]);
        sim.run_until_idle();
        assert_eq!(sim.metrics().dropped_unroutable, 1);
    }

    #[test]
    fn run_until_advances_clock_but_keeps_future_events() {
        let (mut sim, pa, pb) =
            two_node_sim(LinkConfig::with_latency(SimDuration::from_millis(10)));
        sim.send_from(pb, pa, vec![1]);
        sim.run_until(SimTime::from_micros(5_000));
        assert_eq!(sim.now(), SimTime::from_micros(5_000));
        assert_eq!(sim.metrics().delivered, 0);
        sim.run_until_idle();
        // Delivery at pa plus pa's echo delivered back at pb.
        assert_eq!(sim.metrics().delivered, 2);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        fn run(seed: u64) -> Vec<String> {
            let link = LinkConfig::with_latency(SimDuration::from_millis(1))
                .jitter(SimDuration::from_millis(2))
                .loss(0.2);
            let mut sim = Sim::with_topology(seed, Topology::full_mesh(link));
            let a = sim.add_node();
            let b = sim.add_node();
            let (pa, pb) = (Addr::new(a, 0), Addr::new(b, 0));
            sim.attach(pa, Recorder::new(true));
            sim.attach(pb, Recorder::new(false));
            sim.set_tracing(true);
            for i in 0..50 {
                sim.send_from(pb, pa, vec![i]);
            }
            sim.run_until_idle();
            sim.take_trace().iter().map(|e| e.to_string()).collect()
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    /// Volleys a counter back and forth `rounds` times, then stops.
    struct PingPong {
        peer: Addr,
        rounds: u64,
        seen: Vec<(SimTime, u64)>,
    }

    impl Process for PingPong {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            let n = u64::from_le_bytes(msg.payload.as_ref().try_into().unwrap());
            self.seen.push((ctx.now(), n));
            if n < self.rounds {
                ctx.send(self.peer, (n + 1).to_le_bytes().to_vec());
            }
        }
    }

    /// Builds the same two-node ping-pong world at any shard count and
    /// returns every (time, value) each endpoint observed.
    fn ping_pong_observations(shards: usize, threaded: bool) -> Vec<(SimTime, u64)> {
        use rmodp_kernel::{PartitionMap, ShardedKernel};
        let link = LinkConfig::with_latency(SimDuration::from_millis(2));
        let map = PartitionMap::round_robin(2, shards);
        let mut sims = Vec::new();
        for shard in 0..shards {
            let mut sim = Sim::with_topology(7, Topology::full_mesh(link));
            let a = sim.add_node();
            let b = sim.add_node();
            sim.enable_shard_routing(shard, map.clone());
            let (pa, pb) = (Addr::new(a, 0), Addr::new(b, 0));
            for (addr, peer) in [(pa, pb), (pb, pa)] {
                if map.owner(addr.node.0 as usize) == shard {
                    sim.attach(
                        addr,
                        PingPong {
                            peer,
                            rounds: 9,
                            seen: Vec::new(),
                        },
                    );
                }
            }
            if map.owner(pa.node.0 as usize) == shard {
                sim.send_from(Addr::EXTERNAL, pa, 0u64.to_le_bytes().to_vec());
            }
            sims.push(sim);
        }
        let lookahead = sims[0]
            .topology()
            .min_cross_partition_latency(&map)
            .unwrap_or(SimDuration::from_millis(2));
        let mut kernel = ShardedKernel::new(sims, lookahead);
        kernel.set_threaded(threaded);
        kernel.run();
        let mut all = Vec::new();
        for sim in kernel.into_shards() {
            for node in 0..2u32 {
                let addr = Addr::new(NodeIdx(node), 0);
                if let Some(p) = sim.inspect::<PingPong>(addr) {
                    all.extend(p.seen.iter().copied());
                }
            }
        }
        all.sort();
        all
    }

    #[test]
    fn sharded_sim_matches_single_shard_run() {
        let single = ping_pong_observations(1, false);
        assert_eq!(single.len(), 10, "ten volleys observed");
        assert_eq!(single, ping_pong_observations(2, false), "serial 2-shard");
        assert_eq!(single, ping_pong_observations(2, true), "threaded 2-shard");
    }

    #[test]
    fn cross_shard_sends_divert_to_the_outbox() {
        use rmodp_kernel::shard::ShardWorld;
        use rmodp_kernel::PartitionMap;
        let mut sim = Sim::with_topology(1, Topology::full_mesh(LinkConfig::default()));
        let a = sim.add_node();
        let b = sim.add_node();
        sim.enable_shard_routing(0, PartitionMap::round_robin(2, 2));
        sim.attach(Addr::new(a, 0), Recorder::new(false));
        // a (shard 0, local): scheduled. b (shard 1): diverted.
        sim.send_from(Addr::EXTERNAL, Addr::new(a, 0), vec![1]);
        sim.send_from(Addr::EXTERNAL, Addr::new(b, 0), vec![2]);
        assert_eq!(sim.queue_len(), 1);
        let outbox = ShardWorld::take_outbox(&mut sim);
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].dst_shard, 1);
        assert_eq!(outbox[0].msg.dst, Addr::new(b, 0));
    }

    #[test]
    fn inspect_with_wrong_type_is_none() {
        let (sim, pa, _) = two_node_sim(LinkConfig::ideal());
        struct Other;
        impl Process for Other {
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Message) {}
        }
        assert!(sim.inspect::<Other>(pa).is_none());
        assert!(sim.inspect::<Recorder>(pa).is_some());
    }

    #[test]
    fn detach_makes_address_unroutable() {
        let (mut sim, pa, pb) = two_node_sim(LinkConfig::ideal());
        assert!(sim.detach(pa));
        assert!(!sim.detach(pa));
        assert!(!sim.is_attached(pa));
        sim.send_from(pb, pa, vec![1]);
        sim.run_until_idle();
        assert_eq!(sim.metrics().dropped_unroutable, 1);
    }

    #[test]
    fn jitter_varies_latency_within_bounds() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(1))
            .jitter(SimDuration::from_millis(4));
        let (mut sim, pa, pb) = two_node_sim(link);
        sim.attach(pa, Recorder::new(false));
        struct Stamp;
        // Measure per-message delivery times through the trace.
        sim.set_tracing(true);
        let _ = Stamp;
        for _ in 0..100 {
            sim.send_from(pb, pa, vec![0]);
        }
        sim.run_until_idle();
        let deliveries: Vec<SimTime> = sim
            .take_trace()
            .into_iter()
            .filter(|e| e.kind == TraceKind::Deliver)
            .map(|e| e.at)
            .collect();
        assert_eq!(deliveries.len(), 100);
        let min = deliveries.iter().min().unwrap().as_micros();
        let max = deliveries.iter().max().unwrap().as_micros();
        assert!(min >= 1_000, "min={min}");
        assert!(max <= 5_000, "max={max}");
        assert!(max > min, "jitter should spread deliveries");
    }
}
