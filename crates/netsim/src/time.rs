//! Virtual time — re-exported from the kernel.
//!
//! The canonical definitions live in [`rmodp_kernel::time`]; this module
//! keeps the long-standing `rmodp_netsim::time` paths working.

pub use rmodp_kernel::time::{SimDuration, SimTime};
