//! Legacy trace collection and counters for experiment harnesses.
//!
//! This module predates the workspace-wide observability layer
//! (`rmodp-observe`): the simulator now emits every Send/Deliver/Drop/
//! Timer/Note as a structured, causally-spanned event on the shared bus,
//! and [`TraceEntry`] / [`Metrics`] remain as a thin per-`Sim` view of
//! the same stream. Existing accessors (`Sim::set_tracing`,
//! `Sim::take_trace`, `Sim::metrics`) keep working unchanged; new code
//! should read the bus instead (`rmodp_observe::bus::snapshot_events`),
//! which also carries the cross-layer events this view cannot express.
//! [`TraceEntry::from_event`] bridges bus events back into this legacy
//! shape where old tooling expects it.

use std::fmt;

use crate::sim::{Addr, NodeIdx};
use crate::time::SimTime;

/// What kind of simulator event a trace entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was handed to the network.
    Send,
    /// A message arrived at its destination process.
    Deliver,
    /// A message was dropped (loss, partition or crash).
    Drop,
    /// A timer fired.
    Timer,
    /// A process emitted an application-level note.
    Note,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Send => write!(f, "send"),
            TraceKind::Deliver => write!(f, "deliver"),
            TraceKind::Drop => write!(f, "drop"),
            TraceKind::Timer => write!(f, "timer"),
            TraceKind::Note => write!(f, "note"),
        }
    }
}

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the event happened (virtual time).
    pub at: SimTime,
    /// The kind of event.
    pub kind: TraceKind,
    /// The address the event concerns.
    pub addr: Addr,
    /// Free-form detail (message size, drop reason, note text…).
    pub detail: String,
}

impl TraceEntry {
    /// Bridges a bus event back into the legacy entry shape. Returns
    /// `None` for events this view cannot express: cross-layer kinds
    /// (channel hops, trader lookups, 2PC votes…) or events without a
    /// node coordinate.
    pub fn from_event(e: &rmodp_observe::Event) -> Option<Self> {
        let kind = match e.kind {
            rmodp_observe::EventKind::Send => TraceKind::Send,
            rmodp_observe::EventKind::Deliver => TraceKind::Deliver,
            rmodp_observe::EventKind::Drop => TraceKind::Drop,
            rmodp_observe::EventKind::TimerFired => TraceKind::Timer,
            rmodp_observe::EventKind::Note => TraceKind::Note,
            _ => return None,
        };
        Some(TraceEntry {
            at: SimTime::from_micros(e.t_us),
            kind,
            addr: Addr::new(NodeIdx(e.node? as u32), e.port.unwrap_or(0) as u32),
            detail: e.detail.clone(),
        })
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.at, self.kind, self.addr, self.detail)
    }
}

/// Cumulative counters maintained by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to a process.
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub dropped_loss: u64,
    /// Messages dropped because the nodes were partitioned.
    pub dropped_partition: u64,
    /// Messages dropped because an endpoint was crashed.
    pub dropped_crash: u64,
    /// Messages dropped because no process was attached at the destination.
    pub dropped_unroutable: u64,
    /// Timers that fired.
    pub timers_fired: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
}

impl Metrics {
    /// All drops combined.
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_partition + self.dropped_crash + self.dropped_unroutable
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} (loss={} partition={} crash={} unroutable={}) timers={} bytes={}",
            self.sent,
            self.delivered,
            self.dropped(),
            self.dropped_loss,
            self.dropped_partition,
            self.dropped_crash,
            self.dropped_unroutable,
            self.timers_fired,
            self.bytes_delivered,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NodeIdx;

    #[test]
    fn dropped_sums_all_reasons() {
        let m = Metrics {
            dropped_loss: 1,
            dropped_partition: 2,
            dropped_crash: 3,
            dropped_unroutable: 4,
            ..Metrics::default()
        };
        assert_eq!(m.dropped(), 10);
    }

    #[test]
    fn display_is_informative() {
        let e = TraceEntry {
            at: SimTime::from_micros(5),
            kind: TraceKind::Send,
            addr: Addr::new(NodeIdx(1), 2),
            detail: "13 bytes".into(),
        };
        let s = e.to_string();
        assert!(s.contains("send"));
        assert!(s.contains("t=5us"));
        assert!(!Metrics::default().to_string().is_empty());
    }
}
