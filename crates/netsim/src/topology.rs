//! Network topology: link characteristics, partitions, crashes.

use std::collections::{BTreeMap, BTreeSet};

use crate::sim::NodeIdx;
use crate::time::SimDuration;

/// The characteristics of a (directed) link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Maximum additional random latency, uniformly distributed.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            latency: SimDuration::from_micros(500),
            jitter: SimDuration::ZERO,
            loss: 0.0,
        }
    }
}

impl LinkConfig {
    /// A perfect, instantaneous link (useful in unit tests).
    pub fn ideal() -> Self {
        Self {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss: 0.0,
        }
    }

    /// A link with the given latency and no jitter or loss.
    pub fn with_latency(latency: SimDuration) -> Self {
        Self {
            latency,
            ..Self::ideal()
        }
    }

    /// Builder: sets the jitter bound.
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder: sets the loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn loss(mut self, loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss),
            "loss must be in [0,1], got {loss}"
        );
        self.loss = loss;
        self
    }
}

/// The network topology: per-pair link overrides over a default link, plus
/// the dynamic fault state (partitions and crashed nodes).
#[derive(Debug, Clone, Default)]
pub struct Topology {
    default_link: LinkConfig,
    local_latency: SimDuration,
    overrides: BTreeMap<(NodeIdx, NodeIdx), LinkConfig>,
    partitions: BTreeSet<(NodeIdx, NodeIdx)>,
    crashed: BTreeSet<NodeIdx>,
}

impl Topology {
    /// A full-mesh topology where every inter-node link has `default_link`
    /// characteristics and intra-node delivery takes 1 microsecond.
    pub fn full_mesh(default_link: LinkConfig) -> Self {
        Self {
            default_link,
            local_latency: SimDuration::from_micros(1),
            overrides: BTreeMap::new(),
            partitions: BTreeSet::new(),
            crashed: BTreeSet::new(),
        }
    }

    /// Sets the delivery latency for messages that stay on one node.
    pub fn set_local_latency(&mut self, latency: SimDuration) {
        self.local_latency = latency;
    }

    /// The delivery latency for messages that stay on one node.
    pub fn local_latency(&self) -> SimDuration {
        self.local_latency
    }

    /// Overrides the link configuration for the directed pair `src → dst`.
    pub fn set_link(&mut self, src: NodeIdx, dst: NodeIdx, link: LinkConfig) {
        self.overrides.insert((src, dst), link);
    }

    /// The link configuration for `src → dst`.
    pub fn link(&self, src: NodeIdx, dst: NodeIdx) -> LinkConfig {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Severs connectivity between two nodes (both directions).
    pub fn partition(&mut self, a: NodeIdx, b: NodeIdx) {
        self.partitions.insert(ordered(a, b));
    }

    /// Restores connectivity between two nodes.
    pub fn heal(&mut self, a: NodeIdx, b: NodeIdx) {
        self.partitions.remove(&ordered(a, b));
    }

    /// Whether two nodes can currently exchange messages.
    pub fn connected(&self, a: NodeIdx, b: NodeIdx) -> bool {
        a == b || !self.partitions.contains(&ordered(a, b))
    }

    /// Marks a node crashed: messages to and from it are dropped and its
    /// timers are suppressed until [`Self::restart`].
    pub fn crash(&mut self, node: NodeIdx) {
        self.crashed.insert(node);
    }

    /// Restores a crashed node.
    pub fn restart(&mut self, node: NodeIdx) {
        self.crashed.remove(&node);
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeIdx) -> bool {
        self.crashed.contains(&node)
    }

    /// The minimum base one-way latency over every directed node pair
    /// whose endpoints live on *different* shards of `map` — the
    /// conservative lookahead a sharded run derives its epoch horizon
    /// from: no cross-shard message can arrive sooner than this after it
    /// was sent. Jitter only adds latency, so it never shrinks the bound.
    ///
    /// Returns `None` when no cross-shard pair exists (a single shard
    /// needs no lookahead).
    pub fn min_cross_partition_latency(
        &self,
        map: &rmodp_kernel::PartitionMap,
    ) -> Option<SimDuration> {
        let nodes = map.nodes();
        let mut min: Option<SimDuration> = None;
        let mut cross_pairs = 0usize;
        let mut overridden = 0usize;
        for (&(src, dst), link) in &self.overrides {
            let (s, d) = (src.0 as usize, dst.0 as usize);
            if s < nodes && d < nodes && !map.co_located(s, d) {
                overridden += 1;
                min = Some(min.map_or(link.latency, |m| m.min(link.latency)));
            }
        }
        for s in 0..nodes {
            for d in 0..nodes {
                if s != d && !map.co_located(s, d) {
                    cross_pairs += 1;
                }
            }
        }
        if cross_pairs == 0 {
            return None;
        }
        if overridden < cross_pairs {
            // At least one cross-shard pair rides the default link.
            min = Some(min.map_or(self.default_link.latency, |m| {
                m.min(self.default_link.latency)
            }));
        }
        min
    }
}

fn ordered(a: NodeIdx, b: NodeIdx) -> (NodeIdx, NodeIdx) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeIdx = NodeIdx(0);
    const N1: NodeIdx = NodeIdx(1);
    const N2: NodeIdx = NodeIdx(2);

    #[test]
    fn default_and_override_links() {
        let mut t = Topology::full_mesh(LinkConfig::with_latency(SimDuration::from_millis(1)));
        assert_eq!(t.link(N0, N1).latency, SimDuration::from_millis(1));
        t.set_link(
            N0,
            N1,
            LinkConfig::with_latency(SimDuration::from_millis(9)),
        );
        assert_eq!(t.link(N0, N1).latency, SimDuration::from_millis(9));
        // Overrides are directional.
        assert_eq!(t.link(N1, N0).latency, SimDuration::from_millis(1));
    }

    #[test]
    fn partitions_are_symmetric_and_healable() {
        let mut t = Topology::full_mesh(LinkConfig::default());
        assert!(t.connected(N0, N1));
        t.partition(N1, N0);
        assert!(!t.connected(N0, N1));
        assert!(!t.connected(N1, N0));
        assert!(t.connected(N0, N2));
        // A node always reaches itself.
        assert!(t.connected(N0, N0));
        t.heal(N0, N1);
        assert!(t.connected(N0, N1));
    }

    #[test]
    fn crash_and_restart() {
        let mut t = Topology::full_mesh(LinkConfig::default());
        assert!(!t.is_crashed(N1));
        t.crash(N1);
        assert!(t.is_crashed(N1));
        t.restart(N1);
        assert!(!t.is_crashed(N1));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn loss_out_of_range_panics() {
        let _ = LinkConfig::default().loss(1.5);
    }

    #[test]
    fn min_cross_partition_latency_tracks_the_slowest_safe_bound() {
        use rmodp_kernel::PartitionMap;
        let mut t = Topology::full_mesh(LinkConfig::with_latency(SimDuration::from_millis(2)));
        let map = PartitionMap::round_robin(4, 2);
        // All cross pairs ride the default link.
        assert_eq!(
            t.min_cross_partition_latency(&map),
            Some(SimDuration::from_millis(2))
        );
        // A faster cross-shard override lowers the bound…
        t.set_link(
            N0,
            N1,
            LinkConfig::with_latency(SimDuration::from_millis(1)),
        );
        assert_eq!(
            t.min_cross_partition_latency(&map),
            Some(SimDuration::from_millis(1))
        );
        // …but a faster *intra-shard* override (n0 and n2 share shard 0)
        // does not.
        t.set_link(
            N0,
            N2,
            LinkConfig::with_latency(SimDuration::from_micros(10)),
        );
        assert_eq!(
            t.min_cross_partition_latency(&map),
            Some(SimDuration::from_millis(1))
        );
        // One shard owning everything has no cross pair.
        assert_eq!(
            t.min_cross_partition_latency(&PartitionMap::round_robin(4, 1)),
            None
        );
    }
}
