//! # rmodp-netsim — deterministic discrete-event network simulator
//!
//! RM-ODP's engineering viewpoint bottoms out in *protocol objects*
//! interacting "via a communications interface; this models networking"
//! (§6.1). The paper's authors had real networks; this workspace substitutes
//! a **deterministic discrete-event simulator** so that every experiment —
//! including failure, partition and relocation scenarios — is exactly
//! reproducible from a seed.
//!
//! The model is a classic actor-style DES:
//!
//! - a [`sim::Sim`] drives the kernel's event queue and virtual clock
//!   (see `rmodp-kernel`); payloads are shared [`Payload`] bytes;
//! - [`sim::Process`]es are attached at [`sim::Addr`]esses
//!   (node + port);
//! - processes react to messages and timers via a [`sim::Ctx`] that
//!   lets them send messages, set timers and draw deterministic randomness;
//! - a [`topology::Topology`] gives every node pair a latency /
//!   jitter / loss configuration and supports partitions and node crashes.
//!
//! # Example
//!
//! ```
//! use rmodp_netsim::sim::{Addr, Ctx, Message, Process, Sim};
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
//!         ctx.send(msg.src, msg.payload); // bounce it straight back
//!     }
//! }
//!
//! struct Probe;
//! impl Process for Probe {
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
//! }
//!
//! let mut sim = Sim::new(7);
//! let a = sim.add_node();
//! let b = sim.add_node();
//! sim.attach(Addr::new(a, 0), Echo);
//! sim.attach(Addr::new(b, 0), Probe);
//! sim.send_from(Addr::new(b, 0), Addr::new(a, 0), b"ping".to_vec());
//! sim.run_until_idle();
//! assert_eq!(sim.metrics().delivered, 2); // ping + echo
//! ```

pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

pub use rmodp_kernel::payload::Payload;
pub use sim::{Addr, Ctx, Message, NodeIdx, Process, ShardAction, Sim};
pub use time::{SimDuration, SimTime};
pub use topology::{LinkConfig, Topology};
pub use trace::{Metrics, TraceEntry, TraceKind};
