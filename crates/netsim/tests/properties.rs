//! Property tests for the simulator: conservation of messages,
//! determinism, and clock monotonicity under arbitrary workloads.

use proptest::prelude::*;

use rmodp_netsim::sim::{Addr, Ctx, Message, Process, Sim};
use rmodp_netsim::time::SimDuration;
use rmodp_netsim::topology::{LinkConfig, Topology};
use rmodp_netsim::trace::TraceKind;

/// Forwards each message to a fixed next hop a bounded number of times.
struct Forwarder {
    next: Addr,
    budget: u32,
}

impl Process for Forwarder {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if self.budget > 0 {
            self.budget -= 1;
            ctx.send(self.next, msg.payload);
        }
    }
}

#[derive(Debug, Clone)]
struct Workload {
    nodes: u8,
    messages: Vec<(u8, u8)>,
    latency_us: u64,
    jitter_us: u64,
    loss_permille: u16,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (2u8..6, 1u64..5_000, 0u64..2_000, 0u16..400).prop_flat_map(
        |(nodes, latency_us, jitter_us, loss_permille)| {
            proptest::collection::vec((0..nodes, 0..nodes), 1..40).prop_map(move |messages| {
                Workload {
                    nodes,
                    messages,
                    latency_us,
                    jitter_us,
                    loss_permille,
                }
            })
        },
    )
}

fn run(seed: u64, w: &Workload) -> (Sim, Vec<String>) {
    let link = LinkConfig::with_latency(SimDuration::from_micros(w.latency_us))
        .jitter(SimDuration::from_micros(w.jitter_us))
        .loss(w.loss_permille as f64 / 1_000.0);
    let mut sim = Sim::with_topology(seed, Topology::full_mesh(link));
    sim.set_tracing(true);
    let mut addrs = Vec::new();
    for _ in 0..w.nodes {
        let n = sim.add_node();
        addrs.push(Addr::new(n, 0));
    }
    for (i, addr) in addrs.iter().enumerate() {
        let next = addrs[(i + 1) % addrs.len()];
        sim.attach(*addr, Forwarder { next, budget: 3 });
    }
    for (src, dst) in &w.messages {
        sim.send_from(
            Addr::EXTERNAL,
            addrs[*dst as usize % addrs.len()],
            vec![*src, *dst],
        );
    }
    sim.run_until_idle();
    let trace = sim.take_trace().iter().map(|e| e.to_string()).collect();
    (sim, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn messages_are_conserved(seed in 0u64..1_000, w in arb_workload()) {
        let (sim, _) = run(seed, &w);
        let m = sim.metrics();
        prop_assert_eq!(m.sent, m.delivered + m.dropped());
    }

    #[test]
    fn same_seed_same_trace(seed in 0u64..1_000, w in arb_workload()) {
        let (_, a) = run(seed, &w);
        let (_, b) = run(seed, &w);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn clock_is_monotone(seed in 0u64..1_000, w in arb_workload()) {
        let link = LinkConfig::with_latency(SimDuration::from_micros(w.latency_us))
            .jitter(SimDuration::from_micros(w.jitter_us));
        let mut sim = Sim::with_topology(seed, Topology::full_mesh(link));
        sim.set_tracing(true);
        let mut addrs = Vec::new();
        for _ in 0..w.nodes {
            let n = sim.add_node();
            addrs.push(Addr::new(n, 0));
        }
        for (i, addr) in addrs.iter().enumerate() {
            let next = addrs[(i + 1) % addrs.len()];
            sim.attach(*addr, Forwarder { next, budget: 2 });
        }
        for (_, dst) in &w.messages {
            sim.send_from(Addr::EXTERNAL, addrs[*dst as usize % addrs.len()], vec![1]);
        }
        sim.run_until_idle();
        let trace = sim.take_trace();
        for pair in trace.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn no_loss_no_partition_delivers_everything(seed in 0u64..1_000, count in 1usize..50) {
        let mut sim = Sim::with_topology(
            seed,
            Topology::full_mesh(LinkConfig::with_latency(SimDuration::from_millis(1))),
        );
        let a = sim.add_node();
        let b = sim.add_node();
        struct Sink;
        impl Process for Sink {
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Message) {}
        }
        sim.attach(Addr::new(b, 0), Sink);
        let _ = a;
        for _ in 0..count {
            sim.send_from(Addr::new(a, 0), Addr::new(b, 0), vec![1]);
        }
        sim.run_until_idle();
        prop_assert_eq!(sim.metrics().delivered, count as u64);
        prop_assert_eq!(sim.metrics().dropped(), 0);
    }

    #[test]
    fn deliveries_never_precede_sends(seed in 0u64..500, w in arb_workload()) {
        let (sim, _) = run(seed, &w);
        let _ = sim;
        // Structural property asserted by the engine's debug_assert on
        // time travel; here we assert traces contain no Deliver before
        // any Send exists.
        let (mut sim2, _) = run(seed, &w);
        sim2.set_tracing(true);
        let trace = sim2.take_trace();
        let first_deliver = trace.iter().position(|e| e.kind == TraceKind::Deliver);
        let first_send = trace.iter().position(|e| e.kind == TraceKind::Send);
        if let (Some(d), Some(s)) = (first_deliver, first_send) {
            prop_assert!(s <= d);
        }
    }
}
