//! The type repository implementation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rmodp_computational::signature::InterfaceSignature;
use rmodp_computational::subtype::is_subtype_with;

/// A type-repository error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRepoError {
    /// A type with this name is already registered.
    Duplicate { name: String },
    /// No type with this name is registered.
    Unknown { name: String },
}

impl fmt::Display for TypeRepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRepoError::Duplicate { name } => write!(f, "type {name} already registered"),
            TypeRepoError::Unknown { name } => write!(f, "unknown type {name}"),
        }
    }
}

impl std::error::Error for TypeRepoError {}

/// A named relationship between two registered types (beyond subtyping) —
/// e.g. `("implements", "AccountsImpl", "BankTeller")` or
/// `("compatible_with", "V2", "V1")`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TypeRelationship {
    /// The relationship kind.
    pub kind: String,
    /// The source type name.
    pub from: String,
    /// The target type name.
    pub to: String,
}

/// The registry of interface types with a derived subtype lattice.
#[derive(Debug, Default)]
pub struct TypeRepository {
    types: BTreeMap<String, InterfaceSignature>,
    /// Derived strict+reflexive subtype pairs `(sub, sup)`.
    subtype_pairs: BTreeSet<(String, String)>,
    relationships: BTreeSet<TypeRelationship>,
}

impl TypeRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an interface type and re-derives the subtype lattice.
    ///
    /// # Errors
    ///
    /// Returns [`TypeRepoError::Duplicate`] on name collision.
    pub fn register(&mut self, signature: InterfaceSignature) -> Result<(), TypeRepoError> {
        let name = signature.name().to_owned();
        if self.types.contains_key(&name) {
            return Err(TypeRepoError::Duplicate { name });
        }
        self.types.insert(name, signature);
        self.recompute();
        Ok(())
    }

    /// Removes a type; relationships involving it are also removed.
    ///
    /// # Errors
    ///
    /// Returns [`TypeRepoError::Unknown`] if absent.
    pub fn unregister(&mut self, name: &str) -> Result<InterfaceSignature, TypeRepoError> {
        let sig = self
            .types
            .remove(name)
            .ok_or_else(|| TypeRepoError::Unknown {
                name: name.to_owned(),
            })?;
        self.relationships
            .retain(|r| r.from != name && r.to != name);
        self.recompute();
        Ok(sig)
    }

    /// Looks up a type by name.
    pub fn get(&self, name: &str) -> Option<&InterfaceSignature> {
        self.types.get(name)
    }

    /// All registered type names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.types.keys().map(String::as_str)
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Whether `sub` is (reflexively) a subtype of `sup`. Unknown names
    /// are subtypes of nothing.
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        sub == sup && self.types.contains_key(sub)
            || self
                .subtype_pairs
                .contains(&(sub.to_owned(), sup.to_owned()))
    }

    /// The proper supertypes of a type.
    pub fn supertypes_of(&self, name: &str) -> Vec<&str> {
        self.subtype_pairs
            .iter()
            .filter(|(sub, sup)| sub == name && sup != name)
            .map(|(_, sup)| sup.as_str())
            .collect()
    }

    /// The proper subtypes of a type.
    pub fn subtypes_of(&self, name: &str) -> Vec<&str> {
        self.subtype_pairs
            .iter()
            .filter(|(sub, sup)| sup == name && sub != name)
            .map(|(sub, _)| sub.as_str())
            .collect()
    }

    /// Records a named relationship between two registered types.
    ///
    /// # Errors
    ///
    /// Returns [`TypeRepoError::Unknown`] if either endpoint is not
    /// registered.
    pub fn relate(
        &mut self,
        kind: impl Into<String>,
        from: &str,
        to: &str,
    ) -> Result<(), TypeRepoError> {
        for n in [from, to] {
            if !self.types.contains_key(n) {
                return Err(TypeRepoError::Unknown { name: n.to_owned() });
            }
        }
        self.relationships.insert(TypeRelationship {
            kind: kind.into(),
            from: from.to_owned(),
            to: to.to_owned(),
        });
        Ok(())
    }

    /// Relationships of a kind originating at a type.
    pub fn related(&self, kind: &str, from: &str) -> Vec<&str> {
        self.relationships
            .iter()
            .filter(|r| r.kind == kind && r.from == from)
            .map(|r| r.to.as_str())
            .collect()
    }

    /// All recorded relationships.
    pub fn relationships(&self) -> impl Iterator<Item = &TypeRelationship> {
        self.relationships.iter()
    }

    /// A resolver closure suitable for
    /// [`is_subtype_with`](rmodp_computational::subtype::is_subtype_with)
    /// and [`DataType::is_subtype_with`](rmodp_core::dtype::DataType):
    /// answers nested interface-reference subtyping from the derived
    /// lattice.
    pub fn resolver(&self) -> impl Fn(&str, &str) -> bool + '_ {
        move |a, b| self.is_subtype(a, b)
    }

    /// Re-derives the subtype lattice to a fixpoint: structural checks may
    /// depend on nested interface references whose subtyping is itself
    /// being derived, so iterate until no new pairs appear.
    fn recompute(&mut self) {
        let names: Vec<String> = self.types.keys().cloned().collect();
        let mut pairs: BTreeSet<(String, String)> =
            names.iter().map(|n| (n.clone(), n.clone())).collect();
        loop {
            let mut grew = false;
            for a in &names {
                for b in &names {
                    if a == b || pairs.contains(&(a.clone(), b.clone())) {
                        continue;
                    }
                    let known = &pairs;
                    let resolver =
                        move |x: &str, y: &str| known.contains(&(x.to_owned(), y.to_owned()));
                    let sub = &self.types[a];
                    let sup = &self.types[b];
                    if is_subtype_with(sub, sup, &resolver).is_ok() {
                        pairs.insert((a.clone(), b.clone()));
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        self.subtype_pairs = pairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_computational::signature::{
        bank_teller_signature, OperationalSignature, TerminationSignature,
    };
    use rmodp_core::dtype::DataType;

    fn op(sig: OperationalSignature) -> InterfaceSignature {
        InterfaceSignature::Operational(sig)
    }

    fn figure3_repo() -> TypeRepository {
        let mut repo = TypeRepository::new();
        repo.register(op(bank_teller_signature())).unwrap();
        let mut manager = OperationalSignature::new("BankManager");
        for (name, o) in bank_teller_signature().operations().clone() {
            manager = match o.kind {
                rmodp_computational::signature::OperationKind::Announcement => {
                    manager.announcement(name, o.params)
                }
                rmodp_computational::signature::OperationKind::Interrogation { terminations } => {
                    manager.interrogation(name, o.params, terminations)
                }
            };
        }
        let manager = manager.interrogation(
            "CreateAccount",
            [("c", DataType::Int)],
            vec![TerminationSignature::new("OK", [("a", DataType::Int)])],
        );
        repo.register(op(manager)).unwrap();
        repo
    }

    #[test]
    fn registers_and_queries_figure3() {
        let repo = figure3_repo();
        assert_eq!(repo.len(), 2);
        assert!(repo.is_subtype("BankManager", "BankTeller"));
        assert!(!repo.is_subtype("BankTeller", "BankManager"));
        assert!(repo.is_subtype("BankTeller", "BankTeller"));
        assert_eq!(repo.supertypes_of("BankManager"), vec!["BankTeller"]);
        assert_eq!(repo.subtypes_of("BankTeller"), vec!["BankManager"]);
        assert!(repo.get("BankTeller").is_some());
        assert!(repo.get("Nope").is_none());
    }

    #[test]
    fn duplicates_rejected_unregister_works() {
        let mut repo = figure3_repo();
        assert!(matches!(
            repo.register(op(bank_teller_signature())),
            Err(TypeRepoError::Duplicate { .. })
        ));
        repo.unregister("BankManager").unwrap();
        assert_eq!(repo.len(), 1);
        assert!(repo.subtypes_of("BankTeller").is_empty());
        assert!(matches!(
            repo.unregister("BankManager"),
            Err(TypeRepoError::Unknown { .. })
        ));
    }

    #[test]
    fn unknown_names_are_not_reflexive() {
        let repo = figure3_repo();
        assert!(!repo.is_subtype("Ghost", "Ghost"));
    }

    #[test]
    fn fixpoint_resolves_nested_interface_refs() {
        // Factory types whose operations return interface references:
        // TellerFactory.make returns a BankTeller ref; ManagerFactory.make
        // returns a BankManager ref. ManagerFactory <: TellerFactory holds
        // only once BankManager <: BankTeller is derived — requiring the
        // fixpoint iteration.
        let mut repo = figure3_repo();
        let teller_factory = OperationalSignature::new("TellerFactory").interrogation(
            "make",
            [] as [(&str, DataType); 0],
            vec![TerminationSignature::new(
                "OK",
                [("ifc", DataType::Ref(Some("BankTeller".into())))],
            )],
        );
        let manager_factory = OperationalSignature::new("ManagerFactory").interrogation(
            "make",
            [] as [(&str, DataType); 0],
            vec![TerminationSignature::new(
                "OK",
                [("ifc", DataType::Ref(Some("BankManager".into())))],
            )],
        );
        repo.register(op(teller_factory)).unwrap();
        repo.register(op(manager_factory)).unwrap();
        assert!(repo.is_subtype("ManagerFactory", "TellerFactory"));
        assert!(!repo.is_subtype("TellerFactory", "ManagerFactory"));
    }

    #[test]
    fn resolver_closure_answers_from_lattice() {
        let repo = figure3_repo();
        let resolver = repo.resolver();
        assert!(resolver("BankManager", "BankTeller"));
        assert!(!resolver("BankTeller", "BankManager"));
    }

    #[test]
    fn named_relationships() {
        let mut repo = figure3_repo();
        repo.relate("audited_by", "BankManager", "BankTeller")
            .unwrap();
        assert_eq!(
            repo.related("audited_by", "BankManager"),
            vec!["BankTeller"]
        );
        assert!(repo.related("audited_by", "BankTeller").is_empty());
        assert!(repo.relate("x", "Ghost", "BankTeller").is_err());
        assert_eq!(repo.relationships().count(), 1);
        // Unregistering an endpoint drops the relationship.
        repo.unregister("BankManager").unwrap();
        assert_eq!(repo.relationships().count(), 0);
    }

    #[test]
    fn empty_repo_behaviour() {
        let repo = TypeRepository::new();
        assert!(repo.is_empty());
        assert_eq!(repo.names().count(), 0);
        assert!(!repo.is_subtype("A", "B"));
    }
}
