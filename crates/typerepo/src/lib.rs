//! # rmodp-typerepo — the type repository function (§8.3.1)
//!
//! "ODP systems must make type information available through the ODP
//! system itself; the primary need is to support type checking during
//! trading and interface binding. In RM-ODP, the type repository is a
//! registry for type definitions, particularly for interface types. The
//! type registry maintains a type hierarchy (subtype relationships) and
//! other relationships between types."
//!
//! [`TypeRepository`] registers [`InterfaceSignature`](rmodp_computational::signature::InterfaceSignature)s, derives the
//! structural subtype lattice **to a fixpoint** (so mutually referential
//! interface types resolve), answers hierarchy queries, and records
//! arbitrary named relationships between types.
//!
//! # Example
//!
//! ```
//! use rmodp_typerepo::TypeRepository;
//! use rmodp_computational::signature::{InterfaceSignature, OperationalSignature};
//! use rmodp_core::dtype::DataType;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut repo = TypeRepository::new();
//! let teller = OperationalSignature::new("BankTeller")
//!     .announcement("Deposit", [("d", DataType::Int)]);
//! let manager = OperationalSignature::new("BankManager")
//!     .announcement("Deposit", [("d", DataType::Int)])
//!     .announcement("CreateAccount", [("c", DataType::Text)]);
//! repo.register(InterfaceSignature::Operational(teller))?;
//! repo.register(InterfaceSignature::Operational(manager))?;
//! assert!(repo.is_subtype("BankManager", "BankTeller"));
//! assert!(!repo.is_subtype("BankTeller", "BankManager"));
//! # Ok(())
//! # }
//! ```

mod repo;

pub use repo::{TypeRelationship, TypeRepoError, TypeRepository};
