//! The planner's contract, property-tested: for any offer population,
//! index declaration, and constraint drawn from the grammar the planner
//! understands (and several it must treat as opaque), the planned
//! [`Trader::import`] returns *exactly* the matches of the reference
//! scan [`Trader::import_scan`] — same members, same order.
//!
//! This is the determinism argument of DESIGN.md §Trader made
//! executable: candidates are produced in ascending offer-id order (the
//! scan's visiting order) and the residual filter re-evaluates the full
//! constraint, so indexes can only skip non-matches, never reorder or
//! drop matches.

use proptest::prelude::*;

use rmodp_core::id::InterfaceId;
use rmodp_core::value::Value;
use rmodp_trader::{ImportRequest, IndexKind, Trader};

/// One randomized offer: mixed property shapes on purpose — ints and
/// floats under the same key (the evaluator unifies them), a missing
/// property sometimes, and a text region.
#[derive(Debug, Clone)]
struct OfferSpec {
    service: u8, // 0 = "Printer", 1 = "Scanner", 2 = "Plotter"
    ppm: i64,
    float_ppm: bool,
    region: u8, // index into REGIONS
    floor: Option<i64>,
    colour: bool,
}

const REGIONS: [&str; 4] = ["bne", "syd", "mel", "per"];
const SERVICES: [&str; 3] = ["Printer", "Scanner", "Plotter"];

fn arb_offers() -> impl Strategy<Value = Vec<OfferSpec>> {
    proptest::collection::vec(
        (
            0u8..3,
            0i64..100,
            any::<bool>(),
            0u8..4,
            proptest::option::of(0i64..10),
            any::<bool>(),
        )
            .prop_map(
                |(service, ppm, float_ppm, region, floor, colour)| OfferSpec {
                    service,
                    ppm,
                    float_ppm,
                    region,
                    floor,
                    colour,
                },
            ),
        0..60,
    )
}

/// Constraints spanning the planner's whole range: fully sargable,
/// partly sargable, and completely opaque.
fn arb_constraint() -> impl Strategy<Value = String> {
    let threshold = 0i64..100;
    prop_oneof![
        threshold.clone().prop_map(|t| format!("ppm >= {t}")),
        threshold.clone().prop_map(|t| format!("ppm < {t}")),
        (threshold.clone(), 0usize..4)
            .prop_map(|(t, r)| format!("ppm >= {t} and region == \"{}\"", REGIONS[r])),
        (threshold.clone(), threshold.clone()).prop_map(|(a, b)| format!(
            "ppm >= {} and ppm <= {}",
            a.min(b),
            a.max(b)
        )),
        threshold.clone().prop_map(|t| format!("ppm >= {}.5", t)), // float literal vs int property
        Just("colour == true".to_owned()),
        Just("floor in [1, 3, 5]".to_owned()),
        Just("region in [\"bne\", \"mel\"]".to_owned()),
        // Planner-opaque shapes: must fall back, still agree.
        threshold.clone().prop_map(|t| format!("ppm + 0 >= {t}")),
        threshold.prop_map(|t| format!("ppm >= {t} or colour == true")),
        Just("not (colour == true)".to_owned()),
        Just("ppm != 50".to_owned()),
        // Type-error-on-some-offers shape: ordering floor (sometimes
        // absent) — absent kills the match via binds().
        Just("floor >= 2".to_owned()),
        // Always-false index shape: range against a bool literal.
        Just("ppm < true".to_owned()),
    ]
}

/// Which indexes to declare: none, partial, or all — the planner must
/// agree with the scan under every declaration.
fn arb_indexes() -> impl Strategy<Value = Vec<(&'static str, IndexKind)>> {
    proptest::collection::vec(
        prop_oneof![
            Just(("ppm", IndexKind::Ordered)),
            Just(("ppm", IndexKind::Hash)), // ranges on ppm become opaque
            Just(("region", IndexKind::Hash)),
            Just(("floor", IndexKind::Ordered)),
            Just(("colour", IndexKind::Hash)),
        ],
        0..4,
    )
}

fn trader_with(offers: &[OfferSpec], indexes: &[(&str, IndexKind)]) -> Trader {
    let mut t = Trader::new("prop");
    for (property, kind) in indexes {
        t.index_property(*property, *kind);
    }
    for (i, o) in offers.iter().enumerate() {
        let mut fields = vec![
            (
                "ppm",
                if o.float_ppm {
                    Value::Float(o.ppm as f64)
                } else {
                    Value::Int(o.ppm)
                },
            ),
            ("region", Value::text(REGIONS[o.region as usize])),
            ("colour", Value::Bool(o.colour)),
        ];
        if let Some(floor) = o.floor {
            fields.push(("floor", Value::Int(floor)));
        }
        t.export(
            SERVICES[o.service as usize],
            InterfaceId::new(i as u64 + 1),
            Value::record(fields),
        )
        .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The core equivalence: planned import ≡ reference scan, members
    /// and ordering, across random populations, constraints, and index
    /// declarations.
    #[test]
    fn planned_import_equals_reference_scan(
        offers in arb_offers(),
        constraint in arb_constraint(),
        indexes in arb_indexes(),
        service in 0usize..3,
    ) {
        let mut t = trader_with(&offers, &indexes);
        let request = ImportRequest::new(SERVICES[service])
            .constraint(&constraint)
            .unwrap();
        let planned = t.import(&request, None);
        let scanned = t.import_scan(&request, None);
        prop_assert_eq!(planned, scanned, "constraint={} indexes={:?}", constraint, indexes);
    }

    /// Equivalence survives preference ordering and truncation: the
    /// plan feeds the same ordered matches into the same sort.
    #[test]
    fn equivalence_holds_under_preference_and_limit(
        offers in arb_offers(),
        constraint in arb_constraint(),
        indexes in arb_indexes(),
        limit in 1usize..6,
        maximise in any::<bool>(),
    ) {
        let mut t = trader_with(&offers, &indexes);
        let base = ImportRequest::new("Printer").constraint(&constraint).unwrap();
        let request = if maximise {
            base.prefer_max("ppm").unwrap()
        } else {
            base.prefer_min("ppm").unwrap()
        }
        .at_most(limit);
        let planned = t.import(&request, None);
        let scanned = t.import_scan(&request, None);
        prop_assert_eq!(planned, scanned);
    }

    /// Equivalence survives mutation: withdrawals and property
    /// modifications re-thread the indexes, and planned results keep
    /// tracking the scan afterwards.
    #[test]
    fn equivalence_survives_withdraw_and_modify(
        offers in arb_offers(),
        constraint in arb_constraint(),
        new_ppm in 0i64..100,
    ) {
        prop_assume!(offers.len() >= 2);
        let mut t = trader_with(
            &offers,
            &[("ppm", IndexKind::Ordered), ("region", IndexKind::Hash)],
        );
        // Withdraw the first offer; modify the second.
        let first = t.store().iter().next().unwrap().id;
        let second = t.store().iter().nth(1).unwrap().id;
        t.withdraw(first).unwrap();
        t.modify(
            second,
            Value::record([
                ("ppm", Value::Int(new_ppm)),
                ("region", Value::text("bne")),
                ("colour", Value::Bool(true)),
            ]),
        )
        .unwrap();
        let request = ImportRequest::new("Printer").constraint(&constraint).unwrap();
        let planned = t.import(&request, None);
        let scanned = t.import_scan(&request, None);
        prop_assert_eq!(planned, scanned);
    }
}

/// Regression: with no indexes declared at all, every plan is a
/// fallback, and the fallback is still exactly the scan.
#[test]
fn empty_index_fallback_equals_scan() {
    let specs: Vec<OfferSpec> = (0..30)
        .map(|i| OfferSpec {
            service: (i % 3) as u8,
            ppm: (i * 7) % 100,
            float_ppm: i % 2 == 0,
            region: (i % 4) as u8,
            floor: if i % 5 == 0 { None } else { Some(i % 10) },
            colour: i % 2 == 1,
        })
        .collect();
    let mut t = trader_with(&specs, &[]);
    for constraint in ["ppm >= 40", "region == \"syd\"", "floor in [1, 2]"] {
        let request = ImportRequest::new("Printer")
            .constraint(constraint)
            .unwrap();
        let plan = t.explain(&request, None);
        assert!(plan.fallback, "no indexes ⇒ fallback: {constraint}");
        let planned = t.import(&request, None);
        let scanned = t.import_scan(&request, None);
        assert_eq!(planned, scanned, "{constraint}");
    }
    assert_eq!(t.stats().plans_indexed, 0);
    assert_eq!(t.stats().plans_fallback, 3);
}
