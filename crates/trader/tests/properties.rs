//! Property tests for the trader: every returned match satisfies the
//! request; preference ordering is correct; federation equals the union
//! of reachable traders.

use proptest::prelude::*;

use rmodp_core::id::InterfaceId;
use rmodp_core::value::Value;
use rmodp_trader::{Federation, ImportRequest, Trader};

#[derive(Debug, Clone)]
struct OfferSpec {
    service: bool, // true = "Printer", false = "Scanner"
    ppm: i64,
    floor: i64,
}

fn arb_offers() -> impl Strategy<Value = Vec<OfferSpec>> {
    proptest::collection::vec(
        (any::<bool>(), 1i64..100, 0i64..10).prop_map(|(service, ppm, floor)| OfferSpec {
            service,
            ppm,
            floor,
        }),
        0..40,
    )
}

fn trader_with(offers: &[OfferSpec]) -> Trader {
    let mut t = Trader::new("prop");
    for (i, o) in offers.iter().enumerate() {
        t.export(
            if o.service { "Printer" } else { "Scanner" },
            InterfaceId::new(i as u64 + 1),
            Value::record([("ppm", Value::Int(o.ppm)), ("floor", Value::Int(o.floor))]),
        )
        .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_satisfy_type_and_constraint(offers in arb_offers(), threshold in 1i64..100) {
        let mut t = trader_with(&offers);
        let request = ImportRequest::new("Printer")
            .constraint(&format!("ppm >= {threshold}"))
            .unwrap();
        let matches = t.import(&request, None);
        // Soundness: every match is a printer above the threshold.
        for m in &matches {
            prop_assert_eq!(m.offer.service_type.as_str(), "Printer");
            let ppm = m.offer.properties.field("ppm").unwrap().as_int().unwrap();
            prop_assert!(ppm >= threshold);
        }
        // Completeness: the count equals the ground truth.
        let expected = offers.iter().filter(|o| o.service && o.ppm >= threshold).count();
        prop_assert_eq!(matches.len(), expected);
    }

    #[test]
    fn max_preference_returns_descending_scores(offers in arb_offers()) {
        let mut t = trader_with(&offers);
        let request = ImportRequest::new("Printer").prefer_max("ppm").unwrap();
        let matches = t.import(&request, None);
        for pair in matches.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
        if let Some(best) = matches.first() {
            let ground_truth = offers
                .iter()
                .filter(|o| o.service)
                .map(|o| o.ppm)
                .max()
                .unwrap();
            prop_assert_eq!(best.score as i64, ground_truth);
        }
    }

    #[test]
    fn at_most_truncates_but_keeps_the_best(offers in arb_offers(), limit in 1usize..5) {
        let mut t = trader_with(&offers);
        let request = ImportRequest::new("Printer").prefer_min("floor").unwrap();
        let all = t.import(&request, None);
        let limited = t.import(&request.clone().at_most(limit), None);
        prop_assert_eq!(limited.len(), all.len().min(limit));
        for (a, b) in limited.iter().zip(all.iter()) {
            prop_assert_eq!(&a.offer, &b.offer);
        }
    }

    #[test]
    fn withdrawals_remove_exactly_one_offer(offers in arb_offers()) {
        prop_assume!(!offers.is_empty());
        let mut t = trader_with(&offers);
        let before = t.len();
        let any_offer = t.import(&ImportRequest::new("Printer"), None)
            .first()
            .map(|m| m.offer.id)
            .or_else(|| {
                t.import(&ImportRequest::new("Scanner"), None)
                    .first()
                    .map(|m| m.offer.id)
            });
        if let Some(id) = any_offer {
            t.withdraw(id).unwrap();
            prop_assert_eq!(t.len(), before - 1);
            prop_assert!(t.withdraw(id).is_err());
        }
    }

    #[test]
    fn federation_union_equals_sum_of_reachable(
        a in arb_offers(),
        b in arb_offers(),
        c in arb_offers(),
    ) {
        let mut f = Federation::new();
        for name in ["a", "b", "c"] {
            f.add_trader(name).unwrap();
        }
        f.link("a", "b").unwrap();
        f.link("b", "c").unwrap();
        for (name, offers) in [("a", &a), ("b", &b), ("c", &c)] {
            for (i, o) in offers.iter().enumerate() {
                f.trader_mut(name)
                    .unwrap()
                    .export(
                        if o.service { "Printer" } else { "Scanner" },
                        InterfaceId::new(i as u64 + 1),
                        Value::record([("ppm", Value::Int(o.ppm))]),
                    )
                    .unwrap();
            }
        }
        let request = ImportRequest::new("Printer");
        let count = |offers: &[OfferSpec]| offers.iter().filter(|o| o.service).count();
        let hop0 = f.import_federated("a", &request, None, 0).unwrap().len();
        let hop1 = f.import_federated("a", &request, None, 1).unwrap().len();
        let hop2 = f.import_federated("a", &request, None, 2).unwrap().len();
        prop_assert_eq!(hop0, count(&a));
        prop_assert_eq!(hop1, count(&a) + count(&b));
        prop_assert_eq!(hop2, count(&a) + count(&b) + count(&c));
    }
}
