//! Tests for declared (typed) service properties: exports validated
//! against the declaration, constraints statically type-checked.

use rmodp_core::dtype::DataType;
use rmodp_core::id::InterfaceId;
use rmodp_core::value::Value;
use rmodp_trader::{ImportRequest, Trader, TraderError};

fn printer_type() -> DataType {
    DataType::record([
        ("ppm", DataType::Int),
        ("colour", DataType::Bool),
        ("location", DataType::optional(DataType::Text)),
    ])
}

fn declared_trader() -> Trader {
    let mut t = Trader::new("typed");
    t.declare_property_type("Printer", printer_type()).unwrap();
    t
}

#[test]
fn conforming_exports_pass() {
    let mut t = declared_trader();
    t.export(
        "Printer",
        InterfaceId::new(1),
        Value::record([("ppm", Value::Int(30)), ("colour", Value::Bool(true))]),
    )
    .unwrap();
    // Optional property may be present…
    t.export(
        "Printer",
        InterfaceId::new(2),
        Value::record([
            ("ppm", Value::Int(40)),
            ("colour", Value::Bool(false)),
            ("location", Value::text("level 2")),
        ]),
    )
    .unwrap();
    assert_eq!(t.len(), 2);
}

#[test]
fn nonconforming_exports_fail() {
    let mut t = declared_trader();
    // Missing required property.
    let err = t
        .export(
            "Printer",
            InterfaceId::new(1),
            Value::record([("ppm", Value::Int(30))]),
        )
        .unwrap_err();
    assert!(matches!(err, TraderError::PropertyType { .. }), "{err}");
    // Wrong property type.
    let err = t
        .export(
            "Printer",
            InterfaceId::new(1),
            Value::record([("ppm", Value::text("fast")), ("colour", Value::Bool(true))]),
        )
        .unwrap_err();
    assert!(matches!(err, TraderError::PropertyType { .. }), "{err}");
    assert!(t.is_empty());
}

#[test]
fn undeclared_service_types_stay_permissive() {
    let mut t = declared_trader();
    t.export(
        "Scanner",
        InterfaceId::new(9),
        Value::record([("whatever", Value::Null)]),
    )
    .unwrap();
}

#[test]
fn constraints_are_statically_checked() {
    let t = declared_trader();
    // Well-typed boolean constraint: fine.
    let ok = ImportRequest::new("Printer")
        .constraint("ppm >= 30 and colour")
        .unwrap();
    t.check_request(&ok).unwrap();
    // Unknown property: rejected before any offer is touched.
    let bad = ImportRequest::new("Printer")
        .constraint("dpi > 300")
        .unwrap();
    let err = t.check_request(&bad).unwrap_err();
    assert!(matches!(err, TraderError::ConstraintType { .. }), "{err}");
    // Type mismatch inside the constraint.
    let bad = ImportRequest::new("Printer")
        .constraint("ppm and colour")
        .unwrap();
    assert!(t.check_request(&bad).is_err());
    // Non-boolean result.
    let bad = ImportRequest::new("Printer").constraint("ppm + 1").unwrap();
    let err = t.check_request(&bad).unwrap_err();
    assert!(err.to_string().contains("expected bool"), "{err}");
    // Undeclared types are unchecked.
    let any = ImportRequest::new("Scanner")
        .constraint("dpi > 300")
        .unwrap();
    t.check_request(&any).unwrap();
}

#[test]
fn declaration_must_be_a_record() {
    let mut t = Trader::new("x");
    assert!(matches!(
        t.declare_property_type("T", DataType::Int),
        Err(TraderError::BadProperties { .. })
    ));
    assert!(t.property_type("T").is_none());
    t.declare_property_type("T", DataType::record([("a", DataType::Int)]))
        .unwrap();
    assert!(t.property_type("T").is_some());
}

#[test]
fn checked_pipeline_end_to_end() {
    let mut t = declared_trader();
    t.export(
        "Printer",
        InterfaceId::new(1),
        Value::record([("ppm", Value::Int(55)), ("colour", Value::Bool(true))]),
    )
    .unwrap();
    let request = ImportRequest::new("Printer")
        .constraint("ppm >= 50 and colour")
        .unwrap();
    t.check_request(&request).unwrap();
    let matches = t.import(&request, None);
    assert_eq!(matches.len(), 1);
}
