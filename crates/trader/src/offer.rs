//! Service offers.

use std::fmt;

use rmodp_core::id::{InterfaceId, OfferId};
use rmodp_core::value::Value;

/// A service advertisement held by a trader.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOffer {
    /// The offer identity (assigned at export).
    pub id: OfferId,
    /// The advertised interface type name (resolved against the type
    /// repository for subtype matching).
    pub service_type: String,
    /// The interface the service is obtained at.
    pub interface: InterfaceId,
    /// Service attributes: a record the importer's constraint ranges over.
    pub properties: Value,
    /// Which trader currently holds the offer (set by federation).
    pub held_by: String,
}

impl ServiceOffer {
    /// Whether the offer's properties bind every variable a constraint
    /// mentions (offers lacking a mentioned property never match).
    pub fn binds(&self, variables: &[Vec<String>]) -> bool {
        variables.iter().all(|path| {
            let segs: Vec<&str> = path.iter().map(String::as_str).collect();
            self.properties.path(&segs).is_some()
        })
    }
}

impl fmt::Display for ServiceOffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} at {} {}",
            self.id, self.service_type, self.interface, self.properties
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer() -> ServiceOffer {
        ServiceOffer {
            id: OfferId::new(1),
            service_type: "Printer".into(),
            interface: InterfaceId::new(5),
            properties: Value::record([("ppm", Value::Int(30)), ("colour", Value::Bool(true))]),
            held_by: "t".into(),
        }
    }

    #[test]
    fn binds_checks_property_presence() {
        let o = offer();
        assert!(o.binds(&[vec!["ppm".into()]]));
        assert!(o.binds(&[vec!["ppm".into()], vec!["colour".into()]]));
        assert!(!o.binds(&[vec!["duplex".into()]]));
        assert!(o.binds(&[]));
    }

    #[test]
    fn display_shows_everything() {
        let s = offer().to_string();
        assert!(s.contains("Printer"));
        assert!(s.contains("ppm"));
    }
}
