//! The indexed offer repository.
//!
//! An [`OfferStore`] is the engineering-viewpoint realisation of the
//! trader's offer database: the tutorial's §8.3.2 describes the trader
//! as a *directory of service advertisements*, and at federation scale
//! a directory needs real index structures, not a linear scan. The
//! store keeps:
//!
//! - the **primary map** `OfferId → ServiceOffer` (a `BTreeMap`, so
//!   iteration order is ascending offer id — the same order the
//!   original scan matcher observed, which is what keeps index-backed
//!   matching byte-identical to the scan);
//! - the **service-type index** `type name → id set`;
//! - optional **per-property secondary indexes**, either exact-match
//!   hash maps or ordered B-tree maps ([`IndexKind`]), over the
//!   offers' top-level scalar properties.
//!
//! # Key normalisation and soundness
//!
//! Secondary index keys are [`PropKey`]s: scalar property values
//! normalised so that key equality/order *over-approximates* the
//! constraint evaluator's semantics. Numbers (int or float) share one
//! key band keyed by the total-order bits of their `f64` widening —
//! exactly the widening `Expr::eval` applies when comparing mixed
//! numerics. Because `i64 → f64` is lossy above 2⁵³, two distinct
//! values may share a key; the planner therefore treats every index
//! lookup as a *candidate pre-filter* and re-evaluates the full
//! constraint on each candidate. An index lookup may return a
//! non-match (harmless), but never misses a match — see
//! `DESIGN.md` §Trader for the full argument.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::Bound;

use rmodp_core::id::OfferId;
use rmodp_core::value::Value;

use crate::offer::ServiceOffer;

/// A normalised, totally ordered secondary-index key.
///
/// Variants are banded: booleans, then numbers, then text. Range scans
/// stay inside one band, so a numeric range can never pull in text
/// keys (the evaluator would reject such a comparison anyway).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PropKey {
    /// A boolean property value.
    Bool(bool),
    /// A numeric property value: the total-order bits of the `f64`
    /// widening (ints widen exactly like `Expr::eval` widens them).
    Num(u64),
    /// A text property value.
    Text(String),
}

/// Maps an `f64` to bits whose unsigned order matches the numeric
/// order (`-inf < … < -0 = +0 < … < +inf < NaN`). `-0.0` is
/// normalised onto `+0.0` so the two equal floats share a key.
fn num_bits(x: f64) -> u64 {
    let x = if x == 0.0 {
        0.0
    } else if x.is_nan() {
        f64::NAN
    } else {
        x
    };
    let b = x.to_bits() as i64;
    (if b < 0 { !b } else { b ^ i64::MIN }) as u64
}

impl PropKey {
    /// The key for a scalar value; `None` for non-scalars (null, blob,
    /// seq, record, ref), which are never indexed — no sargable atom
    /// can accept them, so leaving them out of candidate sets is
    /// sound.
    pub fn of(v: &Value) -> Option<PropKey> {
        match v {
            Value::Bool(b) => Some(PropKey::Bool(*b)),
            Value::Int(i) => Some(PropKey::Num(num_bits(*i as f64))),
            Value::Float(x) => Some(PropKey::Num(num_bits(*x))),
            Value::Text(s) => Some(PropKey::Text(s.clone())),
            _ => None,
        }
    }

    /// The smallest and largest possible numeric keys — the bounds of
    /// the numeric band, used by the planner for one-sided ranges.
    pub fn num_band() -> (PropKey, PropKey) {
        (
            PropKey::Num(num_bits(f64::NEG_INFINITY)),
            PropKey::Num(num_bits(f64::INFINITY)),
        )
    }
}

/// The physical shape of one secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Exact-match lookups only (a hash map of postings).
    Hash,
    /// Exact-match *and* range lookups (an ordered B-tree of postings).
    Ordered,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IndexKind::Hash => "hash",
            IndexKind::Ordered => "btree",
        })
    }
}

#[derive(Debug)]
enum Postings {
    Hash(HashMap<PropKey, BTreeSet<OfferId>>),
    Ordered(BTreeMap<PropKey, BTreeSet<OfferId>>),
}

/// One secondary index over a top-level property.
#[derive(Debug)]
pub struct PropertyIndex {
    kind: IndexKind,
    postings: Postings,
    /// Offers currently indexed (those whose value for the property is
    /// a scalar).
    entries: usize,
}

impl PropertyIndex {
    fn new(kind: IndexKind) -> Self {
        let postings = match kind {
            IndexKind::Hash => Postings::Hash(HashMap::new()),
            IndexKind::Ordered => Postings::Ordered(BTreeMap::new()),
        };
        Self {
            kind,
            postings,
            entries: 0,
        }
    }

    /// The index's physical shape.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Offers indexed (offers whose property value is scalar).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Distinct keys present.
    pub fn distinct_keys(&self) -> usize {
        match &self.postings {
            Postings::Hash(m) => m.len(),
            Postings::Ordered(m) => m.len(),
        }
    }

    fn insert(&mut self, key: PropKey, id: OfferId) {
        let set = match &mut self.postings {
            Postings::Hash(m) => m.entry(key).or_default(),
            Postings::Ordered(m) => m.entry(key).or_default(),
        };
        if set.insert(id) {
            self.entries += 1;
        }
    }

    fn remove(&mut self, key: &PropKey, id: OfferId) {
        let emptied = match &mut self.postings {
            Postings::Hash(m) => m.get_mut(key).map(|s| {
                s.remove(&id);
                s.is_empty()
            }),
            Postings::Ordered(m) => m.get_mut(key).map(|s| {
                s.remove(&id);
                s.is_empty()
            }),
        };
        match emptied {
            Some(true) => {
                match &mut self.postings {
                    Postings::Hash(m) => m.remove(key),
                    Postings::Ordered(m) => m.remove(key),
                };
                self.entries -= 1;
            }
            Some(false) => self.entries -= 1,
            None => {}
        }
    }

    /// The posting set for an exact key, if any.
    pub fn eq_postings(&self, key: &PropKey) -> Option<&BTreeSet<OfferId>> {
        match &self.postings {
            Postings::Hash(m) => m.get(key),
            Postings::Ordered(m) => m.get(key),
        }
    }

    /// Whether the index can serve range lookups.
    pub fn supports_range(&self) -> bool {
        matches!(self.postings, Postings::Ordered(_))
    }

    /// The posting sets in a key band (ordered indexes only),
    /// ascending by key.
    pub fn range_postings(
        &self,
        lo: Bound<&PropKey>,
        hi: Bound<&PropKey>,
    ) -> Vec<&BTreeSet<OfferId>> {
        match &self.postings {
            Postings::Ordered(m) => m.range((lo, hi)).map(|(_, s)| s).collect(),
            Postings::Hash(_) => Vec::new(),
        }
    }

    /// The number of offers in a key band (ordered indexes only).
    /// Exact and cheap (posting sizes are summed without touching
    /// offers) — the planner's selectivity estimate.
    pub fn range_count(&self, lo: Bound<&PropKey>, hi: Bound<&PropKey>) -> usize {
        self.range_postings(lo, hi).iter().map(|s| s.len()).sum()
    }
}

/// The trader's offer repository: primary map, service-type index,
/// declared per-property secondary indexes.
#[derive(Debug, Default)]
pub struct OfferStore {
    offers: BTreeMap<OfferId, ServiceOffer>,
    by_type: BTreeMap<String, BTreeSet<OfferId>>,
    indexes: BTreeMap<String, PropertyIndex>,
}

impl OfferStore {
    /// An empty store with no secondary indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live offers.
    pub fn len(&self) -> usize {
        self.offers.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.offers.is_empty()
    }

    /// One offer by id.
    pub fn get(&self, id: OfferId) -> Option<&ServiceOffer> {
        self.offers.get(&id)
    }

    /// All offers, ascending by id — the canonical match order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceOffer> {
        self.offers.values()
    }

    /// The service types currently present, with their offer counts.
    pub fn types(&self) -> impl Iterator<Item = (&str, usize)> {
        self.by_type.iter().map(|(t, s)| (t.as_str(), s.len()))
    }

    /// The id set for one service type.
    pub fn type_postings(&self, service_type: &str) -> Option<&BTreeSet<OfferId>> {
        self.by_type.get(service_type)
    }

    /// The secondary index on a property, if declared.
    pub fn index(&self, property: &str) -> Option<&PropertyIndex> {
        self.indexes.get(property)
    }

    /// The declared secondary indexes, by property name.
    pub fn indexes(&self) -> impl Iterator<Item = (&str, &PropertyIndex)> {
        self.indexes.iter().map(|(p, i)| (p.as_str(), i))
    }

    /// Declares a secondary index on a top-level property and
    /// backfills it from the live offers. Re-declaring a property
    /// rebuilds it with the new kind.
    pub fn create_index(&mut self, property: impl Into<String>, kind: IndexKind) {
        let property = property.into();
        let mut index = PropertyIndex::new(kind);
        for (id, offer) in &self.offers {
            if let Some(key) = offer.properties.field(&property).and_then(PropKey::of) {
                index.insert(key, *id);
            }
        }
        self.indexes.insert(property, index);
    }

    /// Inserts an offer (the caller has already validated it).
    pub fn insert(&mut self, offer: ServiceOffer) {
        let id = offer.id;
        self.by_type
            .entry(offer.service_type.clone())
            .or_default()
            .insert(id);
        for (property, index) in &mut self.indexes {
            if let Some(key) = offer.properties.field(property).and_then(PropKey::of) {
                index.insert(key, id);
            }
        }
        self.offers.insert(id, offer);
    }

    /// Removes an offer, unthreading it from every index.
    pub fn remove(&mut self, id: OfferId) -> Option<ServiceOffer> {
        let offer = self.offers.remove(&id)?;
        if let Some(set) = self.by_type.get_mut(&offer.service_type) {
            set.remove(&id);
            if set.is_empty() {
                self.by_type.remove(&offer.service_type);
            }
        }
        for (property, index) in &mut self.indexes {
            if let Some(key) = offer.properties.field(property).and_then(PropKey::of) {
                index.remove(&key, id);
            }
        }
        Some(offer)
    }

    /// Replaces an offer's properties, keeping every secondary index
    /// consistent.
    ///
    /// Returns `false` if the offer does not exist.
    pub fn replace_properties(&mut self, id: OfferId, properties: Value) -> bool {
        let Some(offer) = self.offers.get_mut(&id) else {
            return false;
        };
        for (property, index) in &mut self.indexes {
            let old = offer.properties.field(property).and_then(PropKey::of);
            let new = properties.field(property).and_then(PropKey::of);
            if old != new {
                if let Some(key) = old {
                    index.remove(&key, id);
                }
                if let Some(key) = new {
                    index.insert(key, id);
                }
            }
        }
        offer.properties = properties;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::id::InterfaceId;

    fn offer(id: u64, service_type: &str, props: Value) -> ServiceOffer {
        ServiceOffer {
            id: OfferId::new(id),
            service_type: service_type.into(),
            interface: InterfaceId::new(id),
            properties: props,
            held_by: "s".into(),
        }
    }

    fn store() -> OfferStore {
        let mut s = OfferStore::new();
        s.create_index("ppm", IndexKind::Ordered);
        s.create_index("region", IndexKind::Hash);
        for (id, ppm, region) in [(1, 30, "bne"), (2, 55, "syd"), (3, 55, "bne")] {
            s.insert(offer(
                id,
                "Printer",
                Value::record([("ppm", Value::Int(ppm)), ("region", Value::text(region))]),
            ));
        }
        s
    }

    #[test]
    fn type_index_tracks_inserts_and_removes() {
        let mut s = store();
        assert_eq!(s.type_postings("Printer").unwrap().len(), 3);
        s.remove(OfferId::new(2)).unwrap();
        assert_eq!(s.type_postings("Printer").unwrap().len(), 2);
        s.remove(OfferId::new(1)).unwrap();
        s.remove(OfferId::new(3)).unwrap();
        assert!(s.type_postings("Printer").is_none());
    }

    #[test]
    fn eq_and_range_postings_find_the_right_ids() {
        let s = store();
        let ppm = s.index("ppm").unwrap();
        let k55 = PropKey::of(&Value::Int(55)).unwrap();
        assert_eq!(ppm.eq_postings(&k55).unwrap().len(), 2);
        let lo = PropKey::of(&Value::Int(40)).unwrap();
        let (_, hi) = PropKey::num_band();
        assert_eq!(
            ppm.range_count(Bound::Included(&lo), Bound::Included(&hi)),
            2
        );
        let region = s.index("region").unwrap();
        let bne = PropKey::of(&Value::text("bne")).unwrap();
        assert_eq!(region.eq_postings(&bne).unwrap().len(), 2);
        assert!(!region.supports_range());
    }

    #[test]
    fn numeric_keys_unify_int_and_float() {
        // 55 == 55.0 under the evaluator; the index must agree.
        assert_eq!(
            PropKey::of(&Value::Int(55)),
            PropKey::of(&Value::Float(55.0))
        );
        assert_eq!(
            PropKey::of(&Value::Float(0.0)),
            PropKey::of(&Value::Float(-0.0))
        );
        // Ordering follows numeric order across the int/float seam.
        let k = |v: &Value| PropKey::of(v).unwrap();
        assert!(k(&Value::Float(-1.5)) < k(&Value::Int(0)));
        assert!(k(&Value::Int(0)) < k(&Value::Float(0.5)));
        assert!(k(&Value::Float(0.5)) < k(&Value::Int(1)));
        // NaN sorts into the band (above +inf) and never equals a number.
        assert!(k(&Value::Float(f64::NAN)) > k(&Value::Float(f64::INFINITY)));
    }

    #[test]
    fn non_scalars_are_unindexed() {
        let mut s = store();
        s.insert(offer(
            9,
            "Printer",
            Value::record([("ppm", Value::seq([]))]),
        ));
        assert_eq!(s.index("ppm").unwrap().entries(), 3);
        assert_eq!(s.type_postings("Printer").unwrap().len(), 4);
    }

    #[test]
    fn replace_properties_reindexes() {
        let mut s = store();
        let (_, hi) = PropKey::num_band();
        let lo = PropKey::of(&Value::Int(50)).unwrap();
        let count = |s: &OfferStore| {
            s.index("ppm")
                .unwrap()
                .range_count(Bound::Included(&lo), Bound::Included(&hi))
        };
        assert_eq!(count(&s), 2);
        assert!(s.replace_properties(OfferId::new(1), Value::record([("ppm", Value::Int(90))])));
        assert_eq!(count(&s), 3);
        // Property dropped entirely: unindexed.
        assert!(s.replace_properties(
            OfferId::new(1),
            Value::record([("region", Value::text("mel"))])
        ));
        assert_eq!(s.index("ppm").unwrap().entries(), 2);
        assert!(!s.replace_properties(OfferId::new(77), Value::record::<&str, _>([])));
    }

    #[test]
    fn backfilled_index_equals_incremental() {
        let mut s = store();
        s.create_index("ppm", IndexKind::Hash); // rebuild as hash
        let k = PropKey::of(&Value::Int(55)).unwrap();
        assert_eq!(s.index("ppm").unwrap().eq_postings(&k).unwrap().len(), 2);
        assert_eq!(s.index("ppm").unwrap().kind(), IndexKind::Hash);
    }
}
