//! # rmodp-trader — the trading function (§8.3.2)
//!
//! "The ODP Trader provides a *dating service for objects*; its purpose is
//! to support dynamic binding by allowing services to be discovered at
//! run-time. Servers advertise their services through a trader; the
//! service advertisement specifies the interface type and service
//! attributes. Servers manipulate their service advertisements by using
//! the **export** operations… Clients choose services by specifying the
//! required type and attributes in **import** operations."
//!
//! This crate implements:
//!
//! - [`offer`] — service offers with typed properties;
//! - [`trader`] — export / withdraw / import with a constraint language
//!   (the shared `rmodp-core` expression language), preference ordering,
//!   and type-safe matching through the type repository's subtype
//!   lattice;
//! - [`store`] — the indexed offer repository: a service-type index plus
//!   declared per-property secondary indexes (hash for equality, B-tree
//!   for ranges), all with deterministic iteration order. Treating the
//!   repository as a first-class engineering-viewpoint store (rather
//!   than a flat list the computational viewpoint scans) is what lets
//!   trading scale;
//! - [`plan`] — the constraint query planner: compiles an import's
//!   constraint into index lookups → intersection → residual filter,
//!   chooses indexes by exact selectivity, falls back transparently to a
//!   type-bucket scan, and renders an explainable plan
//!   ([`plan::QueryPlan`]'s `Display`). Plans are traced as
//!   `trader_plan` spans through `rmodp-observe`;
//! - [`federation`] — linked traders: imports flow across trader links
//!   with bounded hops, mirroring the interworking the separate trader
//!   standard (the paper's reference \[5\]) defines;
//! - [`shard`] — federation-scale routing: offers hash-partitioned
//!   across many traders by service type, imports routed to the shards
//!   that can hold conformant offers instead of broadcast everywhere.
//!
//! Every import is answered identically by two engines: the planned,
//! index-backed [`trader::Trader::import`] and the linear reference
//! scan [`trader::Trader::import_scan`]. Property tests
//! (`tests/plan_equivalence.rs`) hold them equal — members *and*
//! ordering — over randomized populations, constraints, and index
//! declarations; `trader_bench` measures the gap between them at a
//! million offers.
//!
//! # Example
//!
//! ```
//! use rmodp_trader::prelude::*;
//! use rmodp_core::id::InterfaceId;
//! use rmodp_core::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut trader = Trader::new("brisbane");
//! trader.export(
//!     "BankTeller",
//!     InterfaceId::new(7),
//!     Value::record([("latency_ms", Value::Int(12)), ("region", Value::text("bne"))]),
//! )?;
//! let matches = trader.import(
//!     &ImportRequest::new("BankTeller")
//!         .constraint("latency_ms <= 20 and region == \"bne\"")?,
//!     None,
//! );
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].offer.interface, InterfaceId::new(7));
//! # Ok(())
//! # }
//! ```

pub mod federation;
pub mod offer;
pub mod plan;
pub mod shard;
pub mod store;
pub mod trader;

/// Commonly used items.
pub mod prelude {
    pub use crate::federation::Federation;
    pub use crate::offer::ServiceOffer;
    pub use crate::plan::QueryPlan;
    pub use crate::shard::ShardedFederation;
    pub use crate::store::{IndexKind, OfferStore};
    pub use crate::trader::{ImportRequest, Match, Preference, Trader, TraderError};
}

pub use prelude::*;
