//! # rmodp-trader — the trading function (§8.3.2)
//!
//! "The ODP Trader provides a *dating service for objects*; its purpose is
//! to support dynamic binding by allowing services to be discovered at
//! run-time. Servers advertise their services through a trader; the
//! service advertisement specifies the interface type and service
//! attributes. Servers manipulate their service advertisements by using
//! the **export** operations… Clients choose services by specifying the
//! required type and attributes in **import** operations."
//!
//! This crate implements:
//!
//! - [`offer`] — service offers with typed properties;
//! - [`trader`] — export / withdraw / import with a constraint language
//!   (the shared `rmodp-core` expression language), preference ordering,
//!   and type-safe matching through the type repository's subtype
//!   lattice;
//! - [`federation`] — linked traders: imports flow across trader links
//!   with bounded hops, mirroring the interworking the separate trader
//!   standard (the paper's reference \[5\]) defines.
//!
//! # Example
//!
//! ```
//! use rmodp_trader::prelude::*;
//! use rmodp_core::id::InterfaceId;
//! use rmodp_core::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut trader = Trader::new("brisbane");
//! trader.export(
//!     "BankTeller",
//!     InterfaceId::new(7),
//!     Value::record([("latency_ms", Value::Int(12)), ("region", Value::text("bne"))]),
//! )?;
//! let matches = trader.import(
//!     &ImportRequest::new("BankTeller")
//!         .constraint("latency_ms <= 20 and region == \"bne\"")?,
//!     None,
//! );
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].offer.interface, InterfaceId::new(7));
//! # Ok(())
//! # }
//! ```

pub mod federation;
pub mod offer;
pub mod trader;

/// Commonly used items.
pub mod prelude {
    pub use crate::federation::Federation;
    pub use crate::offer::ServiceOffer;
    pub use crate::trader::{ImportRequest, Match, Preference, Trader, TraderError};
}

pub use prelude::*;
