//! Trader federation: linked traders serving imports across
//! administrative boundaries.
//!
//! The ODP trader standard (the paper's reference \[5\]) lets traders hold
//! *links* to other traders so an importer's search can propagate. The
//! [`Federation`] owns a set of traders and walks their link graph
//! breadth-first with a hop bound, deduplicating offers.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use rmodp_typerepo::TypeRepository;

use crate::trader::{ImportRequest, Match, Preference, Trader};

/// A federation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// No trader with this name.
    UnknownTrader { name: String },
    /// A trader with this name already exists.
    DuplicateTrader { name: String },
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::UnknownTrader { name } => write!(f, "unknown trader {name}"),
            FederationError::DuplicateTrader { name } => {
                write!(f, "trader {name} already exists")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// A set of traders connected by directed links.
#[derive(Debug, Default)]
pub struct Federation {
    traders: BTreeMap<String, Trader>,
}

impl Federation {
    /// Creates an empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trader.
    ///
    /// # Errors
    ///
    /// Returns [`FederationError::DuplicateTrader`] on a name collision.
    pub fn add_trader(&mut self, name: impl Into<String>) -> Result<(), FederationError> {
        let name = name.into();
        if self.traders.contains_key(&name) {
            return Err(FederationError::DuplicateTrader { name });
        }
        self.traders.insert(name.clone(), Trader::new(name));
        Ok(())
    }

    /// Mutable access to one trader (for exports).
    ///
    /// # Errors
    ///
    /// Unknown trader.
    pub fn trader_mut(&mut self, name: &str) -> Result<&mut Trader, FederationError> {
        self.traders
            .get_mut(name)
            .ok_or_else(|| FederationError::UnknownTrader {
                name: name.to_owned(),
            })
    }

    /// Immutable access to one trader.
    pub fn trader(&self, name: &str) -> Option<&Trader> {
        self.traders.get(name)
    }

    /// Links `from` to `to` (directed): imports at `from` may continue at
    /// `to`.
    ///
    /// # Errors
    ///
    /// Unknown trader on either end.
    pub fn link(&mut self, from: &str, to: &str) -> Result<(), FederationError> {
        if !self.traders.contains_key(to) {
            return Err(FederationError::UnknownTrader {
                name: to.to_owned(),
            });
        }
        let from_trader = self.trader_mut(from)?;
        if !from_trader.links.contains(&to.to_owned()) {
            from_trader.links.push(to.to_owned());
        }
        Ok(())
    }

    /// The traders in the federation.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.traders.keys().map(String::as_str)
    }

    /// Serves an import starting at a trader, following links breadth-
    /// first up to `max_hops` (0 = only the starting trader). Offers are
    /// deduplicated by `(holder, offer id)` and finally preference-ordered
    /// across the whole result.
    ///
    /// # Errors
    ///
    /// Unknown starting trader.
    pub fn import_federated(
        &mut self,
        start: &str,
        request: &ImportRequest,
        repo: Option<&TypeRepository>,
        max_hops: usize,
    ) -> Result<Vec<Match>, FederationError> {
        if !self.traders.contains_key(start) {
            return Err(FederationError::UnknownTrader {
                name: start.to_owned(),
            });
        }
        use rmodp_observe::{bus, event, EventKind, Layer};
        let span = bus::new_span();
        event(Layer::Trader, EventKind::TraderLookup)
            .span(span)
            .parent_from_context()
            .detail(format!(
                "federated start={start} type={} max_hops={max_hops}",
                request.service_type
            ))
            .emit();
        bus::push_context(span);
        let mut visited = BTreeSet::new();
        let mut queue = VecDeque::from([(start.to_owned(), 0usize)]);
        let mut seen_offers = BTreeSet::new();
        let mut matches = Vec::new();
        while let Some((name, hops)) = queue.pop_front() {
            if !visited.insert(name.clone()) {
                continue;
            }
            if hops > 0 {
                event(Layer::Trader, EventKind::FederationHop)
                    .in_context()
                    .detail(format!("-> {name} (hop {hops})"))
                    .emit();
                bus::counter_add("trader.federation_hops", 1);
            }
            let trader = self.traders.get_mut(&name).expect("visited traders exist");
            for m in trader.import(request, repo) {
                if seen_offers.insert((m.offer.held_by.clone(), m.offer.id)) {
                    matches.push(m);
                }
            }
            if hops < max_hops {
                for next in self.traders[&name].links.clone() {
                    queue.push_back((next, hops + 1));
                }
            }
        }
        bus::pop_context();
        match &request.preference {
            Preference::FirstFound => {}
            Preference::Max(_) => matches.sort_by(|a, b| {
                b.score
                    .total_cmp(&a.score)
                    .then(a.offer.held_by.cmp(&b.offer.held_by))
                    .then(a.offer.id.cmp(&b.offer.id))
            }),
            Preference::Min(_) => matches.sort_by(|a, b| {
                a.score
                    .total_cmp(&b.score)
                    .then(a.offer.held_by.cmp(&b.offer.held_by))
                    .then(a.offer.id.cmp(&b.offer.id))
            }),
        }
        matches.truncate(request.max_matches);
        Ok(matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::id::InterfaceId;
    use rmodp_core::value::Value;

    /// brisbane → sydney → melbourne, each holding one printer.
    fn chain() -> Federation {
        let mut f = Federation::new();
        for name in ["brisbane", "sydney", "melbourne"] {
            f.add_trader(name).unwrap();
        }
        f.link("brisbane", "sydney").unwrap();
        f.link("sydney", "melbourne").unwrap();
        for (i, (name, ppm)) in [("brisbane", 20), ("sydney", 40), ("melbourne", 60)]
            .iter()
            .enumerate()
        {
            f.trader_mut(name)
                .unwrap()
                .export(
                    "Printer",
                    InterfaceId::new(i as u64 + 1),
                    Value::record([("ppm", Value::Int(*ppm))]),
                )
                .unwrap();
        }
        f
    }

    #[test]
    fn hop_bound_limits_the_search() {
        let mut f = chain();
        let req = ImportRequest::new("Printer");
        assert_eq!(
            f.import_federated("brisbane", &req, None, 0).unwrap().len(),
            1
        );
        assert_eq!(
            f.import_federated("brisbane", &req, None, 1).unwrap().len(),
            2
        );
        assert_eq!(
            f.import_federated("brisbane", &req, None, 2).unwrap().len(),
            3
        );
        // Links are directed: melbourne sees only itself.
        assert_eq!(
            f.import_federated("melbourne", &req, None, 5)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn preference_orders_across_traders() {
        let mut f = chain();
        let req = ImportRequest::new("Printer").prefer_max("ppm").unwrap();
        let matches = f.import_federated("brisbane", &req, None, 2).unwrap();
        let ppms: Vec<i64> = matches
            .iter()
            .map(|m| m.offer.properties.field("ppm").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(ppms, vec![60, 40, 20]);
        let best = f
            .import_federated("brisbane", &req.clone().at_most(1), None, 2)
            .unwrap();
        assert_eq!(best.len(), 1);
        assert_eq!(best[0].offer.held_by, "melbourne");
    }

    #[test]
    fn cyclic_links_terminate_and_deduplicate() {
        let mut f = chain();
        f.link("melbourne", "brisbane").unwrap();
        f.link("brisbane", "brisbane").unwrap(); // self-link, too
        let req = ImportRequest::new("Printer");
        let matches = f.import_federated("brisbane", &req, None, 10).unwrap();
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn unknown_traders_error() {
        let mut f = chain();
        assert!(matches!(
            f.import_federated("perth", &ImportRequest::new("Printer"), None, 1),
            Err(FederationError::UnknownTrader { .. })
        ));
        assert!(matches!(
            f.link("brisbane", "perth"),
            Err(FederationError::UnknownTrader { .. })
        ));
        assert!(matches!(
            f.add_trader("sydney"),
            Err(FederationError::DuplicateTrader { .. })
        ));
    }

    #[test]
    fn constraints_apply_federation_wide() {
        let mut f = chain();
        let req = ImportRequest::new("Printer")
            .constraint("ppm >= 40")
            .unwrap();
        let matches = f.import_federated("brisbane", &req, None, 2).unwrap();
        assert_eq!(matches.len(), 2);
        assert!(matches
            .iter()
            .all(|m| { m.offer.properties.field("ppm").unwrap().as_int().unwrap() >= 40 }));
    }
}
