//! The trader: export, withdraw, import — with planned, index-backed
//! matching.
//!
//! Imports no longer scan every offer: [`Trader::import`] compiles the
//! request through [`crate::plan::plan_import`] against the trader's
//! [`OfferStore`] and only evaluates the constraint on the plan's
//! candidates. [`Trader::import_scan`] keeps the original full scan —
//! it is the executable specification the planner is tested against
//! (see `tests/plan_equivalence.rs`) and the baseline `trader_bench`
//! measures.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::expr::{Expr, ParseError};
use rmodp_core::id::{IdGen, InterfaceId, OfferId};
use rmodp_core::value::Value;
use rmodp_typerepo::TypeRepository;

use crate::offer::ServiceOffer;
use crate::plan::{plan_import, QueryPlan};
use crate::store::{IndexKind, OfferStore};

/// A trading failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TraderError {
    /// The offer's properties are not a record.
    BadProperties { got: String },
    /// No such offer.
    UnknownOffer { offer: OfferId },
    /// A constraint or preference expression failed to parse.
    BadExpression(ParseError),
    /// An offer's properties do not conform to the declared property type
    /// for its service type.
    PropertyType {
        service_type: String,
        detail: String,
    },
    /// A constraint is statically ill-typed against the declared property
    /// type.
    ConstraintType {
        service_type: String,
        detail: String,
    },
}

impl fmt::Display for TraderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraderError::BadProperties { got } => {
                write!(f, "offer properties must be a record, got {got}")
            }
            TraderError::UnknownOffer { offer } => write!(f, "unknown offer {offer}"),
            TraderError::BadExpression(e) => write!(f, "bad expression: {e}"),
            TraderError::PropertyType {
                service_type,
                detail,
            } => {
                write!(
                    f,
                    "offer properties do not conform to {service_type}: {detail}"
                )
            }
            TraderError::ConstraintType {
                service_type,
                detail,
            } => {
                write!(f, "constraint ill-typed for {service_type}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraderError {}

impl From<ParseError> for TraderError {
    fn from(e: ParseError) -> Self {
        TraderError::BadExpression(e)
    }
}

/// How an importer orders acceptable offers.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Preference {
    /// Offers in export order (the trader's arrival order).
    #[default]
    FirstFound,
    /// Offers maximising an expression over their properties.
    Max(Expr),
    /// Offers minimising an expression over their properties.
    Min(Expr),
}

/// An import request: the required type, a constraint over properties, a
/// preference, and a cardinality bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportRequest {
    /// The required interface type name.
    pub service_type: String,
    /// The constraint every returned offer must satisfy.
    pub constraint: Option<Expr>,
    /// How matches are ordered.
    pub preference: Preference,
    /// At most this many matches are returned.
    pub max_matches: usize,
    /// Whether subtypes of the requested type are acceptable
    /// (substitutability, §5.1.1). On by default.
    pub allow_subtypes: bool,
}

impl ImportRequest {
    /// A request for a service type with no constraint.
    pub fn new(service_type: impl Into<String>) -> Self {
        Self {
            service_type: service_type.into(),
            constraint: None,
            preference: Preference::FirstFound,
            max_matches: usize::MAX,
            allow_subtypes: true,
        }
    }

    /// Builder: sets the constraint (source text).
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed constraints.
    pub fn constraint(mut self, src: &str) -> Result<Self, TraderError> {
        self.constraint = Some(Expr::parse(src)?);
        Ok(self)
    }

    /// Builder: prefer offers maximising an expression.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed expressions.
    pub fn prefer_max(mut self, src: &str) -> Result<Self, TraderError> {
        self.preference = Preference::Max(Expr::parse(src)?);
        Ok(self)
    }

    /// Builder: prefer offers minimising an expression.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed expressions.
    pub fn prefer_min(mut self, src: &str) -> Result<Self, TraderError> {
        self.preference = Preference::Min(Expr::parse(src)?);
        Ok(self)
    }

    /// Builder: bounds the number of matches.
    pub fn at_most(mut self, n: usize) -> Self {
        self.max_matches = n;
        self
    }

    /// Builder: requires the exact type (no subtype substitution).
    pub fn exact_type(mut self) -> Self {
        self.allow_subtypes = false;
        self
    }
}

/// One import match.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// The matching offer.
    pub offer: ServiceOffer,
    /// The preference score used for ordering (0 for `FirstFound`).
    pub score: f64,
}

/// Counters the trader maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraderStats {
    /// Offers exported over the trader's lifetime.
    pub exports: u64,
    /// Offers withdrawn.
    pub withdrawals: u64,
    /// Import operations served.
    pub imports: u64,
    /// Offers examined by the residual filter during imports. Under
    /// planned matching this counts plan *candidates*, not the whole
    /// repository — watching it shrink relative to [`Self::exports`] is
    /// how index effectiveness shows up.
    pub offers_considered: u64,
    /// Imports served by a plan that used at least one secondary index.
    pub plans_indexed: u64,
    /// Imports that fell back to scanning the type buckets.
    pub plans_fallback: u64,
}

/// Preference-orders matches in place: ties (and `FirstFound`) keep
/// ascending offer-id order, which is the store's iteration order.
pub(crate) fn order_matches(matches: &mut [Match], preference: &Preference) {
    match preference {
        Preference::FirstFound => {}
        Preference::Max(_) => matches.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.offer.id.cmp(&b.offer.id))
        }),
        Preference::Min(_) => matches.sort_by(|a, b| {
            a.score
                .total_cmp(&b.score)
                .then(a.offer.id.cmp(&b.offer.id))
        }),
    }
}

/// The per-offer residual: constraint-variable binding, constraint
/// evaluation, preference scoring. Identical between the planned path
/// and the reference scan — that sharing is half of the equivalence
/// argument (the other half is candidate ordering; see DESIGN.md).
///
/// Offers whose properties do not bind every constraint variable, or on
/// which an expression fails to evaluate, simply do not match — a
/// malformed *offer* must not fail the *import*.
fn residual_match(
    offer: &ServiceOffer,
    request: &ImportRequest,
    constraint_vars: &[Vec<String>],
) -> Option<Match> {
    if !offer.binds(constraint_vars) {
        return None;
    }
    if let Some(constraint) = &request.constraint {
        match constraint.eval_bool(&offer.properties) {
            Ok(true) => {}
            _ => return None,
        }
    }
    let score = match &request.preference {
        Preference::FirstFound => 0.0,
        Preference::Max(e) | Preference::Min(e) => {
            e.eval(&offer.properties).ok().and_then(|v| v.as_float())?
        }
    };
    Some(Match {
        offer: offer.clone(),
        score,
    })
}

/// A trader: an indexed repository of service offers with type-safe,
/// constrained, preference-ordered lookup.
#[derive(Debug)]
pub struct Trader {
    name: String,
    store: OfferStore,
    /// Declared property types per service type (optional strictness).
    property_types: BTreeMap<String, rmodp_core::dtype::DataType>,
    gen: IdGen<OfferId>,
    stats: TraderStats,
    /// Names of linked traders (used by the federation).
    pub(crate) links: Vec<String>,
}

impl Trader {
    /// Creates an empty trader.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            store: OfferStore::new(),
            property_types: BTreeMap::new(),
            gen: IdGen::new(),
            stats: TraderStats::default(),
            links: Vec::new(),
        }
    }

    /// The trader's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counters.
    pub fn stats(&self) -> TraderStats {
        self.stats
    }

    /// Number of live offers.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the trader holds no offers.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The underlying offer store (read-only: indexes, type buckets).
    pub fn store(&self) -> &OfferStore {
        &self.store
    }

    /// Declares a secondary index over a top-level property. Existing
    /// offers are backfilled; subsequent exports, withdrawals, and
    /// modifications maintain it incrementally. [`IndexKind::Hash`]
    /// serves equality and `in`-set atoms; [`IndexKind::Ordered`]
    /// additionally serves range atoms.
    pub fn index_property(&mut self, property: impl Into<String>, kind: IndexKind) {
        self.store.create_index(property, kind);
    }

    /// Declares the property type offers of a service type must carry.
    /// Subsequent exports of that type are checked against it, and import
    /// constraints are statically type-checked before any offer is
    /// examined.
    ///
    /// # Errors
    ///
    /// Returns [`TraderError::BadProperties`] unless the type is a record.
    pub fn declare_property_type(
        &mut self,
        service_type: impl Into<String>,
        properties: rmodp_core::dtype::DataType,
    ) -> Result<(), TraderError> {
        if !matches!(properties, rmodp_core::dtype::DataType::Record(_)) {
            return Err(TraderError::BadProperties {
                got: properties.to_string(),
            });
        }
        self.property_types.insert(service_type.into(), properties);
        Ok(())
    }

    /// The declared property type for a service type, if any.
    pub fn property_type(&self, service_type: &str) -> Option<&rmodp_core::dtype::DataType> {
        self.property_types.get(service_type)
    }

    /// Statically validates an import request's constraint against a
    /// declared property type: the constraint must type-check and be
    /// boolean.
    ///
    /// # Errors
    ///
    /// Returns [`TraderError::ConstraintType`] when a declaration exists
    /// and the constraint does not fit it.
    pub fn check_request(&self, request: &ImportRequest) -> Result<(), TraderError> {
        let Some(ptype) = self.property_types.get(&request.service_type) else {
            return Ok(());
        };
        if let Some(constraint) = &request.constraint {
            let inferred = constraint
                .infer(ptype)
                .map_err(|e| TraderError::ConstraintType {
                    service_type: request.service_type.clone(),
                    detail: e.to_string(),
                })?;
            if inferred != rmodp_core::dtype::DataType::Bool {
                return Err(TraderError::ConstraintType {
                    service_type: request.service_type.clone(),
                    detail: format!("constraint has type {inferred}, expected bool"),
                });
            }
        }
        Ok(())
    }

    /// Exports a service offer.
    ///
    /// # Errors
    ///
    /// Returns [`TraderError::BadProperties`] unless properties are a
    /// record, or [`TraderError::PropertyType`] if a declared property
    /// type for the service type is not satisfied.
    pub fn export(
        &mut self,
        service_type: impl Into<String>,
        interface: InterfaceId,
        properties: Value,
    ) -> Result<OfferId, TraderError> {
        if properties.as_record().is_none() {
            return Err(TraderError::BadProperties {
                got: properties.kind().to_owned(),
            });
        }
        let service_type = service_type.into();
        if let Some(ptype) = self.property_types.get(&service_type) {
            ptype
                .check(&properties)
                .map_err(|e| TraderError::PropertyType {
                    service_type: service_type.clone(),
                    detail: e.to_string(),
                })?;
        }
        let id = self.gen.fresh();
        let detail = format!(
            "trader={} offer={id} type={service_type} interface={interface}",
            self.name
        );
        self.store.insert(ServiceOffer {
            id,
            service_type,
            interface,
            properties,
            held_by: self.name.clone(),
        });
        self.stats.exports += 1;
        rmodp_observe::event(
            rmodp_observe::Layer::Trader,
            rmodp_observe::EventKind::TraderExport,
        )
        .in_context()
        .detail(detail)
        .emit();
        rmodp_observe::bus::counter_add("trader.exports", 1);
        Ok(id)
    }

    /// Withdraws an offer.
    ///
    /// # Errors
    ///
    /// Returns [`TraderError::UnknownOffer`] if absent.
    pub fn withdraw(&mut self, offer: OfferId) -> Result<ServiceOffer, TraderError> {
        let o = self
            .store
            .remove(offer)
            .ok_or(TraderError::UnknownOffer { offer })?;
        self.stats.withdrawals += 1;
        Ok(o)
    }

    /// Replaces an offer's properties (e.g. a server updating its load).
    /// Secondary indexes are re-threaded for the changed keys.
    ///
    /// # Errors
    ///
    /// Unknown offer or non-record properties.
    pub fn modify(&mut self, offer: OfferId, properties: Value) -> Result<(), TraderError> {
        if properties.as_record().is_none() {
            return Err(TraderError::BadProperties {
                got: properties.kind().to_owned(),
            });
        }
        if !self.store.replace_properties(offer, properties) {
            return Err(TraderError::UnknownOffer { offer });
        }
        Ok(())
    }

    /// Looks up an offer.
    pub fn offer(&self, offer: OfferId) -> Option<&ServiceOffer> {
        self.store.get(offer)
    }

    /// Compiles an import request into a [`QueryPlan`] without running
    /// it — the plan-explain entry point. `plan.to_string()` renders the
    /// full explanation.
    pub fn explain(&self, request: &ImportRequest, repo: Option<&TypeRepository>) -> QueryPlan {
        plan_import(&self.store, request, repo).plan
    }

    /// Serves an import: type conformance (exact or subtype via the type
    /// repository), constraint satisfaction, preference ordering,
    /// cardinality bound.
    ///
    /// The request is compiled into an index-backed query plan first;
    /// only the plan's candidates reach constraint evaluation. The
    /// result — members *and* ordering — is identical to
    /// [`Self::import_scan`]. The plan is traced as a span
    /// (`trader_plan`), with the lookup event inside it.
    pub fn import(&mut self, request: &ImportRequest, repo: Option<&TypeRepository>) -> Vec<Match> {
        use rmodp_observe::{bus, event, EventKind, Layer};
        self.stats.imports += 1;
        let planned = plan_import(&self.store, request, repo);
        if planned.plan.fallback {
            self.stats.plans_fallback += 1;
            bus::counter_add("trader.plan.fallback", 1);
        } else {
            self.stats.plans_indexed += 1;
            bus::counter_add("trader.plan.indexed", 1);
        }
        let span = bus::new_span();
        event(Layer::Trader, EventKind::TraderPlan)
            .span(span)
            .parent_from_context()
            .detail(format!("trader={} {}", self.name, planned.plan.summary()))
            .emit();
        bus::push_context(span);

        let constraint_vars = request
            .constraint
            .as_ref()
            .map(|c| c.variables())
            .unwrap_or_default();
        let mut matches: Vec<Match> = Vec::new();
        for id in &planned.candidates {
            self.stats.offers_considered += 1;
            let Some(offer) = self.store.get(*id) else {
                continue;
            };
            // Candidates come from posting sets, not type buckets: an
            // index can surface offers of other service types, so the
            // type check stays per-offer (against the precomputed
            // conformant set).
            if !planned.matched_types.contains(&offer.service_type) {
                continue;
            }
            if let Some(m) = residual_match(offer, request, &constraint_vars) {
                matches.push(m);
            }
        }
        order_matches(&mut matches, &request.preference);
        matches.truncate(request.max_matches);

        event(Layer::Trader, EventKind::TraderLookup)
            .in_context()
            .detail(format!(
                "trader={} type={} matches={}",
                self.name,
                request.service_type,
                matches.len()
            ))
            .emit();
        bus::counter_add("trader.lookups", 1);
        bus::pop_context();
        matches
    }

    /// The reference implementation of import: a full linear scan of
    /// every offer, exactly as the trader matched before indexes
    /// existed. Kept as the executable specification the planner is
    /// property-tested against, and as the baseline side of
    /// `trader_bench`.
    pub fn import_scan(
        &mut self,
        request: &ImportRequest,
        repo: Option<&TypeRepository>,
    ) -> Vec<Match> {
        self.stats.imports += 1;
        let constraint_vars = request
            .constraint
            .as_ref()
            .map(|c| c.variables())
            .unwrap_or_default();
        let mut matches: Vec<Match> = Vec::new();
        for offer in self.store.iter() {
            self.stats.offers_considered += 1;
            let type_ok = offer.service_type == request.service_type
                || (request.allow_subtypes
                    && repo
                        .is_some_and(|r| r.is_subtype(&offer.service_type, &request.service_type)));
            if !type_ok {
                continue;
            }
            if let Some(m) = residual_match(offer, request, &constraint_vars) {
                matches.push(m);
            }
        }
        order_matches(&mut matches, &request.preference);
        matches.truncate(request.max_matches);
        rmodp_observe::event(
            rmodp_observe::Layer::Trader,
            rmodp_observe::EventKind::TraderLookup,
        )
        .in_context()
        .detail(format!(
            "trader={} type={} matches={} mode=scan",
            self.name,
            request.service_type,
            matches.len()
        ))
        .emit();
        rmodp_observe::bus::counter_add("trader.lookups", 1);
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_computational::signature::{InterfaceSignature, OperationalSignature};
    use rmodp_core::dtype::DataType;

    fn printer_trader() -> Trader {
        let mut t = Trader::new("office");
        t.export(
            "Printer",
            InterfaceId::new(1),
            Value::record([
                ("ppm", Value::Int(30)),
                ("colour", Value::Bool(true)),
                ("floor", Value::Int(2)),
            ]),
        )
        .unwrap();
        t.export(
            "Printer",
            InterfaceId::new(2),
            Value::record([
                ("ppm", Value::Int(55)),
                ("colour", Value::Bool(false)),
                ("floor", Value::Int(1)),
            ]),
        )
        .unwrap();
        t.export(
            "Scanner",
            InterfaceId::new(3),
            Value::record([("dpi", Value::Int(600))]),
        )
        .unwrap();
        t
    }

    #[test]
    fn import_filters_by_type_and_constraint() {
        let mut t = printer_trader();
        let req = ImportRequest::new("Printer")
            .constraint("ppm >= 40")
            .unwrap();
        let matches = t.import(&req, None);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].offer.interface, InterfaceId::new(2));
        // No constraint: both printers, never the scanner.
        let all = t.import(&ImportRequest::new("Printer"), None);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn indexed_import_matches_like_the_scan() {
        let mut t = printer_trader();
        t.index_property("ppm", IndexKind::Ordered);
        t.index_property("colour", IndexKind::Hash);
        for src in [
            "ppm >= 40",
            "colour == true",
            "ppm >= 40 and colour == false",
        ] {
            let req = ImportRequest::new("Printer").constraint(src).unwrap();
            let planned = t.import(&req, None);
            let scanned = t.import_scan(&req, None);
            assert_eq!(planned, scanned, "{src}");
        }
        let s = t.stats();
        assert_eq!(s.plans_indexed, 3);
        // The ppm >= 40 plan pre-filters down to one candidate.
        let plan = t.explain(
            &ImportRequest::new("Printer")
                .constraint("ppm >= 40")
                .unwrap(),
            None,
        );
        assert!(!plan.fallback);
        assert_eq!(plan.candidates, 1);
    }

    #[test]
    fn preference_orders_matches() {
        let mut t = printer_trader();
        let fastest = t.import(
            &ImportRequest::new("Printer").prefer_max("ppm").unwrap(),
            None,
        );
        assert_eq!(fastest[0].offer.interface, InterfaceId::new(2));
        assert_eq!(fastest[0].score, 55.0);
        let lowest_floor = t.import(
            &ImportRequest::new("Printer").prefer_min("floor").unwrap(),
            None,
        );
        assert_eq!(lowest_floor[0].offer.interface, InterfaceId::new(2));
        let limited = t.import(
            &ImportRequest::new("Printer")
                .prefer_max("ppm")
                .unwrap()
                .at_most(1),
            None,
        );
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn offers_missing_constrained_properties_do_not_match() {
        let mut t = printer_trader();
        // Only the scanner has dpi; constraining on dpi excludes printers
        // without failing the import.
        let req = ImportRequest::new("Printer").constraint("dpi > 0").unwrap();
        assert!(t.import(&req, None).is_empty());
    }

    #[test]
    fn subtype_offers_match_via_type_repository() {
        let mut repo = TypeRepository::new();
        let teller =
            OperationalSignature::new("BankTeller").announcement("Deposit", [("d", DataType::Int)]);
        let manager = OperationalSignature::new("BankManager")
            .announcement("Deposit", [("d", DataType::Int)])
            .announcement("CreateAccount", [("c", DataType::Int)]);
        repo.register(InterfaceSignature::Operational(teller))
            .unwrap();
        repo.register(InterfaceSignature::Operational(manager))
            .unwrap();

        let mut t = Trader::new("bank");
        t.export(
            "BankManager",
            InterfaceId::new(9),
            Value::record::<&str, _>([]),
        )
        .unwrap();
        // A BankManager offer satisfies a BankTeller import (Figure 3).
        let matches = t.import(&ImportRequest::new("BankTeller"), Some(&repo));
        assert_eq!(matches.len(), 1);
        // …but not with exact typing.
        let exact = t.import(&ImportRequest::new("BankTeller").exact_type(), Some(&repo));
        assert!(exact.is_empty());
        // And never the reverse direction.
        let t2 = &mut Trader::new("bank2");
        t2.export(
            "BankTeller",
            InterfaceId::new(1),
            Value::record::<&str, _>([]),
        )
        .unwrap();
        assert!(t2
            .import(&ImportRequest::new("BankManager"), Some(&repo))
            .is_empty());
    }

    #[test]
    fn withdraw_and_modify() {
        let mut t = printer_trader();
        t.index_property("dpi", IndexKind::Ordered);
        let id = t.import(&ImportRequest::new("Scanner"), None)[0].offer.id;
        t.modify(id, Value::record([("dpi", Value::Int(1200))]))
            .unwrap();
        let m = t.import(
            &ImportRequest::new("Scanner")
                .constraint("dpi >= 1200")
                .unwrap(),
            None,
        );
        assert_eq!(m.len(), 1);
        t.withdraw(id).unwrap();
        assert!(matches!(
            t.withdraw(id),
            Err(TraderError::UnknownOffer { .. })
        ));
        assert!(t.import(&ImportRequest::new("Scanner"), None).is_empty());
        assert_eq!(t.len(), 2);
        // The withdrawn offer left the index, too.
        assert_eq!(t.store().index("dpi").unwrap().entries(), 0);
    }

    #[test]
    fn export_validates_properties() {
        let mut t = Trader::new("x");
        assert!(matches!(
            t.export("T", InterfaceId::new(1), Value::Int(5)),
            Err(TraderError::BadProperties { .. })
        ));
        let id = t
            .export("T", InterfaceId::new(1), Value::record::<&str, _>([]))
            .unwrap();
        assert!(matches!(
            t.modify(id, Value::Null),
            Err(TraderError::BadProperties { .. })
        ));
    }

    #[test]
    fn stats_count_activity() {
        let mut t = printer_trader();
        t.import(&ImportRequest::new("Printer"), None);
        let s = t.stats();
        assert_eq!(s.exports, 3);
        assert_eq!(s.imports, 1);
        // With no indexes the plan falls back to the type buckets: only
        // the two printers are examined, never the scanner.
        assert_eq!(s.offers_considered, 2);
        assert_eq!(s.plans_fallback, 1);
        assert_eq!(s.plans_indexed, 0);
    }

    #[test]
    fn malformed_request_expressions_fail_fast() {
        assert!(ImportRequest::new("T").constraint("a >").is_err());
        assert!(ImportRequest::new("T").prefer_max("(").is_err());
    }
}
