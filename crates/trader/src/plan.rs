//! The constraint query planner.
//!
//! [`plan_import`] compiles an [`ImportRequest`] against an
//! [`OfferStore`] into a [`QueryPlan`] — which access paths to use, in
//! what order — and executes its candidate-producing half:
//!
//! 1. **Access paths.** The service-type index always provides one
//!    path (the union of matching type buckets). Every sargable atom
//!    of the constraint (see `rmodp_core::expr::Atom`) whose property
//!    has a declared secondary index that can serve it provides
//!    another.
//! 2. **Selectivity-based choice.** Every path's candidate count is
//!    known exactly (posting sizes are maintained by the store), so
//!    the cheapest path drives; other paths join the intersection only
//!    if they are within `INTERSECT_FACTOR`× of the driver — beyond
//!    that, re-checking them per candidate (which the residual does
//!    anyway) is cheaper than materialising them.
//! 3. **Intersection.** Used paths are materialised as ascending
//!    `OfferId` runs and merge-intersected, yielding candidates in
//!    ascending id order — the same order the naive scan visits
//!    offers, which is what keeps planned matching byte-identical.
//! 4. **Residual filter** (performed by the caller, `Trader::import`):
//!    the *full* original constraint is re-evaluated on every
//!    candidate. Index lookups are deliberately over-approximate
//!    (inclusive bounds at float boundaries, lossy `i64→f64` key
//!    unification), so the residual is what makes the planner exactly
//!    — not just approximately — equivalent to the scan.
//!
//! When no atom is servable (no constraint, no declared indexes, or
//! only opaque conjuncts), the plan is a transparent **fallback**: the
//! type-bucket union alone, which degenerates to the original full
//! scan restricted to type-conformant offers.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Bound;

use rmodp_core::expr::{Atom, BinOp};
use rmodp_core::id::OfferId;
use rmodp_core::value::Value;
use rmodp_typerepo::TypeRepository;

use crate::store::{IndexKind, OfferStore, PropKey};
use crate::trader::ImportRequest;

/// A path whose candidate count exceeds the driver's by more than this
/// factor is left to the residual filter instead of being intersected.
const INTERSECT_FACTOR: usize = 8;

/// One secondary-index access path considered by the planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStep {
    /// The indexed property.
    pub property: String,
    /// The physical index shape.
    pub kind: IndexKind,
    /// The atom served, rendered (`ppm >= 40`).
    pub atom: String,
    /// Exact candidate count of this path.
    pub postings: usize,
    /// Whether the path joined the intersection (`false`: served by
    /// the residual filter instead).
    pub used: bool,
}

/// The compiled plan for one import. Everything needed to explain the
/// query: matched type buckets, considered index paths, whether the
/// planner fell back to a type-bucket scan, and the candidate count
/// the residual filter received.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The requested service type.
    pub service_type: String,
    /// Matching type buckets `(type, offers)`, in name order.
    pub types: Vec<(String, usize)>,
    /// Total offers across matching buckets.
    pub type_total: usize,
    /// Index paths considered, in selectivity order.
    pub steps: Vec<IndexStep>,
    /// The residual predicate (the full constraint), rendered.
    pub residual: Option<String>,
    /// `true` when no secondary index pruned the search and the plan
    /// degenerated to the type-bucket scan.
    pub fallback: bool,
    /// Candidates handed to the residual filter.
    pub candidates: usize,
    /// Live offers in the store when the plan ran.
    pub store_len: usize,
}

impl QueryPlan {
    /// A one-line summary for event details.
    pub fn summary(&self) -> String {
        let mode = if self.fallback {
            "fallback-scan"
        } else {
            "indexed"
        };
        let used = self.steps.iter().filter(|s| s.used).count();
        format!(
            "{mode} type={} buckets={} index_paths={used}/{} candidates={}/{}",
            self.service_type,
            self.types.len(),
            self.steps.len(),
            self.candidates,
            self.store_len,
        )
    }
}

impl fmt::Display for QueryPlan {
    /// The multi-line plan-explain rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: import {} ({} offers live)",
            self.service_type, self.store_len
        )?;
        let buckets: Vec<String> = self
            .types
            .iter()
            .map(|(t, n)| format!("{t}({n})"))
            .collect();
        writeln!(
            f,
            "  type-index: [{}] -> {} offers",
            buckets.join(", "),
            self.type_total
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "  {} {}-index {}: ({}) -> {} offers",
                if s.used { "use " } else { "skip" },
                s.kind,
                s.property,
                s.atom,
                s.postings
            )?;
        }
        if self.fallback {
            writeln!(f, "  fallback: scan the type buckets")?;
        }
        match &self.residual {
            Some(r) => writeln!(f, "  residual filter: {r}")?,
            None => writeln!(f, "  residual filter: (none)")?,
        }
        write!(f, "  candidates: {} of {}", self.candidates, self.store_len)
    }
}

/// The planner's output: the plan, the candidate ids in ascending
/// order, and the matched-type set for the caller's per-candidate type
/// check.
#[derive(Debug)]
pub struct PlannedImport {
    /// The compiled, explainable plan.
    pub plan: QueryPlan,
    /// Candidate offer ids, ascending.
    pub candidates: Vec<OfferId>,
    /// The service types that conform to the request.
    pub matched_types: BTreeSet<String>,
}

/// One access path with its materialisable posting sets.
struct Path<'a> {
    step: IndexStep,
    postings: Vec<&'a BTreeSet<OfferId>>,
    count: usize,
}

/// Collects the posting sets for one sargable atom, or `None` when the
/// declared index cannot serve it (range atom on a hash index).
/// Lookups over-approximate: all range bounds are inclusive, and
/// numeric keys unify int/float exactly as the evaluator does.
fn atom_postings<'a>(
    store: &'a OfferStore,
    atom: &Atom,
) -> Option<(String, IndexKind, String, Vec<&'a BTreeSet<OfferId>>)> {
    let [property] = atom.path() else {
        return None; // only top-level properties are indexed
    };
    let index = store.index(property)?;
    match atom {
        Atom::Cmp(c) => {
            let rendered = format!("{} {} {}", property, c.op.symbol(), c.rhs);
            match c.op {
                BinOp::Eq => {
                    let key = PropKey::of(&c.rhs)?;
                    let sets = index.eq_postings(&key).into_iter().collect();
                    Some((property.clone(), index.kind(), rendered, sets))
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if !index.supports_range() {
                        return None;
                    }
                    let upper = matches!(c.op, BinOp::Lt | BinOp::Le);
                    let sets = match &c.rhs {
                        Value::Int(_) | Value::Float(_) => {
                            let key = PropKey::of(&c.rhs)?;
                            let (num_lo, num_hi) = PropKey::num_band();
                            let (lo, hi) = if upper { (num_lo, key) } else { (key, num_hi) };
                            index.range_postings(Bound::Included(&lo), Bound::Included(&hi))
                        }
                        Value::Text(s) => {
                            let key = PropKey::Text(s.clone());
                            if upper {
                                let lo = PropKey::Text(String::new());
                                index.range_postings(Bound::Included(&lo), Bound::Included(&key))
                            } else {
                                index.range_postings(Bound::Included(&key), Bound::Unbounded)
                            }
                        }
                        // Ordering a bool (or anything else) against a
                        // property is an evaluator type error on every
                        // offer: the atom matches nothing.
                        _ => Vec::new(),
                    };
                    Some((property.clone(), index.kind(), rendered, sets))
                }
                _ => None,
            }
        }
        Atom::InSet { values, .. } => {
            let keys: BTreeSet<PropKey> = values.iter().filter_map(PropKey::of).collect();
            let sets = keys.iter().filter_map(|k| index.eq_postings(k)).collect();
            let rendered = format!(
                "{} in [{}]",
                property,
                values
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            Some((property.clone(), index.kind(), rendered, sets))
        }
    }
}

/// Materialises a path's posting sets as one ascending id run. The
/// sets are pairwise disjoint (distinct keys of one index), so a
/// concat-and-sort is enough.
fn materialise(postings: &[&BTreeSet<OfferId>]) -> Vec<OfferId> {
    let mut ids: Vec<OfferId> = postings.iter().flat_map(|s| s.iter().copied()).collect();
    ids.sort_unstable();
    ids
}

/// Merge-intersects two ascending runs.
fn intersect(a: &[OfferId], b: &[OfferId]) -> Vec<OfferId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Compiles and executes the candidate-producing half of an import.
pub fn plan_import(
    store: &OfferStore,
    request: &ImportRequest,
    repo: Option<&TypeRepository>,
) -> PlannedImport {
    // Matching type buckets: the requested type plus, under subtype
    // substitution, every present subtype the repository derives.
    let types: Vec<(String, usize)> = store
        .types()
        .filter(|(t, _)| {
            *t == request.service_type
                || (request.allow_subtypes
                    && repo.is_some_and(|r| r.is_subtype(t, &request.service_type)))
        })
        .map(|(t, n)| (t.to_owned(), n))
        .collect();
    let matched_types: BTreeSet<String> = types.iter().map(|(t, _)| t.clone()).collect();
    let type_total: usize = types.iter().map(|(_, n)| n).sum();

    // Secondary-index access paths from the constraint's atoms.
    let mut paths: Vec<Path<'_>> = Vec::new();
    if let Some(constraint) = &request.constraint {
        for atom in constraint.index_atoms() {
            if let Some((property, kind, atom_text, postings)) = atom_postings(store, &atom) {
                let count = postings.iter().map(|s| s.len()).sum();
                paths.push(Path {
                    step: IndexStep {
                        property,
                        kind,
                        atom: atom_text,
                        postings: count,
                        used: false,
                    },
                    postings,
                    count,
                });
            }
        }
    }
    // Selectivity order: cheapest first; ties break on the rendered
    // atom so planning is deterministic.
    paths.sort_by(|a, b| a.count.cmp(&b.count).then(a.step.atom.cmp(&b.step.atom)));

    let fallback = paths.is_empty();
    let candidates = if fallback {
        // Type buckets are pairwise disjoint: concat + sort.
        let mut ids: Vec<OfferId> = matched_types
            .iter()
            .filter_map(|t| store.type_postings(t))
            .flat_map(|s| s.iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    } else {
        let driver_count = paths[0].count;
        let mut current: Option<Vec<OfferId>> = None;
        for path in &mut paths {
            let within_budget = path.count <= driver_count.saturating_mul(INTERSECT_FACTOR);
            match &mut current {
                None => {
                    path.step.used = true;
                    current = Some(materialise(&path.postings));
                }
                Some(ids) if within_budget && !ids.is_empty() => {
                    path.step.used = true;
                    *ids = intersect(ids, &materialise(&path.postings));
                }
                Some(_) => {} // residual filter re-checks this atom
            }
        }
        current.unwrap_or_default()
    };

    let plan = QueryPlan {
        service_type: request.service_type.clone(),
        types,
        type_total,
        steps: paths.into_iter().map(|p| p.step).collect(),
        residual: request.constraint.as_ref().map(|c| c.to_string()),
        fallback,
        candidates: candidates.len(),
        store_len: store.len(),
    };
    PlannedImport {
        plan,
        candidates,
        matched_types,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::ServiceOffer;
    use rmodp_core::id::InterfaceId;

    fn store() -> OfferStore {
        let mut s = OfferStore::new();
        s.create_index("ppm", IndexKind::Ordered);
        s.create_index("region", IndexKind::Hash);
        for i in 1..=100u64 {
            s.insert(ServiceOffer {
                id: OfferId::new(i),
                service_type: if i % 4 == 0 { "Scanner" } else { "Printer" }.into(),
                interface: InterfaceId::new(i),
                properties: Value::record([
                    ("ppm", Value::Int((i % 10) as i64 * 10)),
                    (
                        "region",
                        Value::text(if i % 2 == 0 { "bne" } else { "syd" }),
                    ),
                ]),
                held_by: "t".into(),
            });
        }
        s
    }

    fn req(constraint: &str) -> ImportRequest {
        ImportRequest::new("Printer")
            .constraint(constraint)
            .unwrap()
    }

    #[test]
    fn unconstrained_imports_fall_back_to_type_buckets() {
        let s = store();
        let planned = plan_import(&s, &ImportRequest::new("Printer"), None);
        assert!(planned.plan.fallback);
        assert_eq!(planned.candidates.len(), 75);
        assert!(planned.candidates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn equality_drives_through_the_hash_index() {
        let s = store();
        let planned = plan_import(&s, &req("region == \"bne\""), None);
        assert!(!planned.plan.fallback);
        assert_eq!(planned.plan.steps.len(), 1);
        assert!(planned.plan.steps[0].used);
        assert_eq!(planned.candidates.len(), 50); // both types; residual fixes type
    }

    #[test]
    fn ranges_need_an_ordered_index() {
        let s = store();
        // ppm has a btree index: servable.
        let planned = plan_import(&s, &req("ppm >= 50"), None);
        assert!(!planned.plan.fallback);
        assert_eq!(planned.candidates.len(), 50);
        // region is hash-only: a range on it is planner-opaque.
        let planned = plan_import(&s, &req("region >= \"bne\""), None);
        assert!(planned.plan.fallback);
    }

    #[test]
    fn intersection_multiplies_selectivity() {
        let s = store();
        let planned = plan_import(&s, &req("ppm == 30 and region == \"syd\""), None);
        assert!(!planned.plan.fallback);
        assert_eq!(planned.plan.steps.iter().filter(|st| st.used).count(), 2);
        // ppm==30 ⇒ i%10==3 ⇒ odd ⇒ all syd: 10 offers.
        assert_eq!(planned.candidates.len(), 10);
    }

    #[test]
    fn incomparable_range_prunes_everything() {
        let s = store();
        let planned = plan_import(&s, &req("ppm < true"), None);
        assert!(!planned.plan.fallback);
        assert!(planned.candidates.is_empty());
    }

    #[test]
    fn explain_renders_every_section() {
        let s = store();
        let planned = plan_import(&s, &req("ppm >= 50 and region == \"bne\""), None);
        let text = planned.plan.to_string();
        assert!(text.contains("type-index"), "{text}");
        assert!(text.contains("btree-index ppm"), "{text}");
        assert!(text.contains("hash-index region"), "{text}");
        assert!(text.contains("residual filter"), "{text}");
        assert!(planned.plan.summary().contains("indexed"));
    }
}
