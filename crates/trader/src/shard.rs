//! Federation-scale sharding: routing offers and imports across many
//! traders by service type.
//!
//! A single trader — even an indexed one — is one address space. At the
//! ROADMAP's "millions of users" scale the offer repository must spread
//! across many traders, and the interesting question becomes *routing*:
//! which traders can possibly hold a conformant offer?
//!
//! [`ShardedFederation`] answers it with a deterministic hash partition:
//! every export routes to `fnv1a(service_type) % shards`, so all offers
//! of one service type live on exactly one shard. Imports then route:
//!
//! - an **exact-type** import (or one with no type repository) goes to
//!   the single owning shard;
//! - a **subtype** import computes the conformant type set from the
//!   repository's subtype lattice and queries only the shards owning
//!   those types — usually a small subset of the federation;
//! - a **broadcast** ([`ShardedFederation::import_all`]) walks every
//!   shard through the underlying [`Federation`]'s links, which is the
//!   escape hatch when the type set cannot be bounded.
//!
//! Results from multiple shards are deduplicated and preference-ordered
//! with the same `(score, holder, offer id)` tie-break as
//! [`Federation::import_federated`], so sharding is invisible in the
//! result — only in the work done.

use std::collections::BTreeSet;

use rmodp_core::id::{InterfaceId, OfferId};
use rmodp_core::value::Value;
use rmodp_typerepo::TypeRepository;

use crate::federation::{Federation, FederationError};
use crate::store::IndexKind;
use crate::trader::{ImportRequest, Match, Preference, Trader, TraderError};

/// FNV-1a, the routing hash: stable across platforms and runs, so shard
/// placement is deterministic.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Routing counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Offers routed to a shard by export.
    pub exports: u64,
    /// Imports answered by querying a bounded set of owning shards.
    pub routed_imports: u64,
    /// Shard queries issued by routed imports (≥ `routed_imports`).
    pub shard_queries: u64,
    /// Imports that had to broadcast across the whole federation.
    pub broadcast_imports: u64,
}

/// A federation of `n` traders with hash-partitioned offer placement
/// and type-directed import routing.
#[derive(Debug)]
pub struct ShardedFederation {
    federation: Federation,
    names: Vec<String>,
    stats: ShardStats,
}

impl ShardedFederation {
    /// Creates `shards` traders named `{prefix}-0 … {prefix}-{n-1}`,
    /// ring-linked (each shard links to the next) so broadcasts can walk
    /// the whole federation through ordinary federation links.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(prefix: &str, shards: usize) -> Self {
        assert!(shards > 0, "a sharded federation needs at least one shard");
        let mut federation = Federation::new();
        let names: Vec<String> = (0..shards).map(|i| format!("{prefix}-{i}")).collect();
        for name in &names {
            federation
                .add_trader(name.clone())
                .expect("fresh shard names are unique");
        }
        for i in 0..shards {
            federation
                .link(&names[i], &names[(i + 1) % shards])
                .expect("shards exist");
        }
        Self {
            federation,
            names,
            stats: ShardStats::default(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.names.len()
    }

    /// Routing counters.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// The underlying federation (e.g. for extra links or direct access).
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The shard that owns a service type.
    pub fn shard_of(&self, service_type: &str) -> &str {
        let i = (fnv1a(service_type) % self.names.len() as u64) as usize;
        &self.names[i]
    }

    /// One shard by index (ascending name order).
    pub fn shard(&self, i: usize) -> Option<&Trader> {
        self.federation.trader(&self.names[i])
    }

    /// Declares a secondary index on every shard (indexes are a
    /// federation-wide schema decision, not a per-shard one).
    pub fn index_property(&mut self, property: &str, kind: IndexKind) {
        for name in &self.names {
            self.federation
                .trader_mut(name)
                .expect("shards exist")
                .index_property(property, kind);
        }
    }

    /// Exports an offer, routed to the owning shard. Returns the shard
    /// name with the offer id.
    ///
    /// # Errors
    ///
    /// As [`Trader::export`].
    pub fn export(
        &mut self,
        service_type: impl Into<String>,
        interface: InterfaceId,
        properties: Value,
    ) -> Result<(String, OfferId), TraderError> {
        let service_type = service_type.into();
        let shard = self.shard_of(&service_type).to_owned();
        let id = self
            .federation
            .trader_mut(&shard)
            .expect("shards exist")
            .export(service_type, interface, properties)?;
        self.stats.exports += 1;
        Ok((shard, id))
    }

    /// Serves an import by routing to the shards that can hold
    /// conformant offers: the requested type's shard, plus — when
    /// subtype substitution is on and a repository is given — the shards
    /// owning each registered subtype. Results are deduplicated by
    /// `(holder, offer id)` and preference-ordered across shards.
    pub fn import(&mut self, request: &ImportRequest, repo: Option<&TypeRepository>) -> Vec<Match> {
        let mut shards: BTreeSet<String> = BTreeSet::new();
        shards.insert(self.shard_of(&request.service_type).to_owned());
        if request.allow_subtypes {
            if let Some(repo) = repo {
                for sub in repo.subtypes_of(&request.service_type) {
                    shards.insert(self.shard_of(sub).to_owned());
                }
            }
        }
        self.stats.routed_imports += 1;
        self.stats.shard_queries += shards.len() as u64;
        rmodp_observe::bus::counter_add("trader.shard.routed", 1);
        rmodp_observe::bus::counter_add("trader.shard.queries", shards.len() as u64);
        let mut matches = Vec::new();
        let mut seen = BTreeSet::new();
        for shard in &shards {
            let trader = self.federation.trader_mut(shard).expect("shards exist");
            for m in trader.import(request, repo) {
                if seen.insert((m.offer.held_by.clone(), m.offer.id)) {
                    matches.push(m);
                }
            }
        }
        order_across_shards(&mut matches, &request.preference);
        matches.truncate(request.max_matches);
        matches
    }

    /// Broadcasts an import to every shard by walking the federation's
    /// ring links — the unrouted baseline, and the fallback when the
    /// conformant type set cannot be derived.
    ///
    /// # Errors
    ///
    /// Never fails for a non-empty federation (the start shard exists).
    pub fn import_all(
        &mut self,
        request: &ImportRequest,
        repo: Option<&TypeRepository>,
    ) -> Result<Vec<Match>, FederationError> {
        self.stats.broadcast_imports += 1;
        rmodp_observe::bus::counter_add("trader.shard.broadcast", 1);
        let start = self.names[0].clone();
        self.federation
            .import_federated(&start, request, repo, self.names.len())
    }
}

/// The federation-wide ordering: preference score, then holder name,
/// then offer id — identical to [`Federation::import_federated`].
fn order_across_shards(matches: &mut [Match], preference: &Preference) {
    match preference {
        Preference::FirstFound => matches.sort_by(|a, b| {
            a.offer
                .held_by
                .cmp(&b.offer.held_by)
                .then(a.offer.id.cmp(&b.offer.id))
        }),
        Preference::Max(_) => matches.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.offer.held_by.cmp(&b.offer.held_by))
                .then(a.offer.id.cmp(&b.offer.id))
        }),
        Preference::Min(_) => matches.sort_by(|a, b| {
            a.score
                .total_cmp(&b.score)
                .then(a.offer.held_by.cmp(&b.offer.held_by))
                .then(a.offer.id.cmp(&b.offer.id))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_computational::signature::{InterfaceSignature, OperationalSignature};
    use rmodp_core::dtype::DataType;

    fn populated(shards: usize) -> ShardedFederation {
        let mut f = ShardedFederation::new("shard", shards);
        for i in 1..=20u64 {
            let ty = if i % 2 == 0 { "Printer" } else { "Scanner" };
            f.export(
                ty,
                InterfaceId::new(i),
                Value::record([("n", Value::Int(i as i64))]),
            )
            .unwrap();
        }
        f
    }

    #[test]
    fn exports_route_by_type() {
        let f = populated(4);
        let printer_shard = f.shard_of("Printer").to_owned();
        // Every printer offer lives on the owning shard, nowhere else.
        let held: usize = (0..f.shards())
            .map(|i| {
                let t = f.shard(i).unwrap();
                let n = t.store().type_postings("Printer").map_or(0, |s| s.len());
                if t.name() != printer_shard {
                    assert_eq!(n, 0);
                }
                n
            })
            .sum();
        assert_eq!(held, 10);
    }

    #[test]
    fn exact_imports_query_one_shard() {
        let mut f = populated(8);
        let matches = f.import(&ImportRequest::new("Printer").exact_type(), None);
        assert_eq!(matches.len(), 10);
        assert_eq!(f.stats().shard_queries, 1);
    }

    #[test]
    fn subtype_imports_query_owning_shards_only() {
        let mut repo = TypeRepository::new();
        let teller =
            OperationalSignature::new("BankTeller").announcement("Deposit", [("d", DataType::Int)]);
        let manager = OperationalSignature::new("BankManager")
            .announcement("Deposit", [("d", DataType::Int)])
            .announcement("CreateAccount", [("c", DataType::Int)]);
        repo.register(InterfaceSignature::Operational(teller))
            .unwrap();
        repo.register(InterfaceSignature::Operational(manager))
            .unwrap();
        let mut f = ShardedFederation::new("bank", 16);
        f.export(
            "BankManager",
            InterfaceId::new(1),
            Value::record::<&str, _>([]),
        )
        .unwrap();
        f.export(
            "BankTeller",
            InterfaceId::new(2),
            Value::record::<&str, _>([]),
        )
        .unwrap();
        // Subtype substitution finds the manager on its own shard.
        let matches = f.import(&ImportRequest::new("BankTeller"), Some(&repo));
        assert_eq!(matches.len(), 2);
        // At most two shards queried (teller's + manager's), not 16.
        assert!(f.stats().shard_queries <= 2);
    }

    #[test]
    fn routed_and_broadcast_agree() {
        let mut f = populated(4);
        let req = ImportRequest::new("Printer").prefer_max("n").unwrap();
        let routed = f.import(&req, None);
        let broadcast = f.import_all(&req, None).unwrap();
        assert_eq!(routed, broadcast);
        assert_eq!(routed[0].offer.interface, InterfaceId::new(20));
        assert_eq!(f.stats().routed_imports, 1);
        assert_eq!(f.stats().broadcast_imports, 1);
    }

    #[test]
    fn placement_is_deterministic() {
        let a = populated(4);
        let b = populated(4);
        for ty in ["Printer", "Scanner"] {
            assert_eq!(a.shard_of(ty), b.shard_of(ty));
        }
    }
}
