//! Property tests for the policy engine: prohibition dominance, default
//! closure, revocation equivalence, and obligation lifecycle laws.

use proptest::prelude::*;

use rmodp_core::value::Value;
use rmodp_enterprise::prelude::*;

#[derive(Debug, Clone)]
struct PolicySpec {
    kind: u8, // 0 permission, 1 prohibition
    role: u8,
    action: u8,
    threshold: Option<i64>,
}

fn arb_policies() -> impl Strategy<Value = Vec<PolicySpec>> {
    proptest::collection::vec(
        (0u8..2, 0u8..3, 0u8..3, proptest::option::of(0i64..100)).prop_map(
            |(kind, role, action, threshold)| PolicySpec {
                kind,
                role,
                action,
                threshold,
            },
        ),
        0..12,
    )
}

fn build(policies: &[PolicySpec]) -> (Community, PolicyEngine) {
    let mut community = Community::new(1, "c", "test");
    for r in 0..3u8 {
        community.add_role(format!("r{r}")).unwrap();
    }
    // Object n fills role n.
    for r in 0..3u8 {
        community.assign(r as u64, format!("r{r}")).unwrap();
    }
    let mut engine = PolicyEngine::new(Default::default());
    for (i, p) in policies.iter().enumerate() {
        let name = format!("p{i}");
        let role = format!("r{}", p.role);
        let action = format!("a{}", p.action);
        let mut policy = if p.kind == 0 {
            Policy::permission(name, role, action)
        } else {
            Policy::prohibition(name, role, action)
        };
        if let Some(t) = p.threshold {
            policy = policy.when(&format!("amount > {t}")).unwrap();
        }
        engine.adopt(policy).unwrap();
    }
    (community, engine)
}

fn request(actor: u8, action: u8, amount: i64) -> ActionRequest {
    ActionRequest::new(actor as u64, format!("a{action}"))
        .with_context(Value::record([("amount", Value::Int(amount))]))
}

/// Ground truth mirror of the documented decision procedure.
fn expected(policies: &[PolicySpec], actor: u8, action: u8, amount: i64) -> bool {
    let applicable = |p: &PolicySpec| {
        p.role == actor && p.action == action && p.threshold.map(|t| amount > t).unwrap_or(true)
    };
    if policies.iter().any(|p| p.kind == 1 && applicable(p)) {
        return false;
    }
    policies.iter().any(|p| p.kind == 0 && applicable(p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The engine agrees with the documented semantics on every input:
    /// prohibitions dominate, then permissions, then default deny.
    #[test]
    fn decisions_match_ground_truth(
        policies in arb_policies(),
        actor in 0u8..3,
        action in 0u8..3,
        amount in 0i64..150,
    ) {
        let (community, mut engine) = build(&policies);
        let d = engine.decide(&community, &request(actor, action, amount)).unwrap();
        prop_assert_eq!(d.is_allowed(), expected(&policies, actor, action, amount));
    }

    /// Adding a prohibition never turns a denied action into an allowed
    /// one (anti-monotonicity of prohibitions).
    #[test]
    fn prohibitions_are_anti_monotone(
        policies in arb_policies(),
        actor in 0u8..3,
        action in 0u8..3,
        amount in 0i64..150,
    ) {
        let (community, mut engine) = build(&policies);
        let before = engine
            .decide(&community, &request(actor, action, amount))
            .unwrap()
            .is_allowed();
        engine
            .adopt(Policy::prohibition("extra-prohibition", format!("r{actor}"), format!("a{action}")))
            .unwrap();
        let after = engine
            .decide(&community, &request(actor, action, amount))
            .unwrap()
            .is_allowed();
        prop_assert!(!after || before);
        prop_assert!(!after, "an unconditional prohibition must deny");
    }

    /// Revoking every policy returns the engine to default-deny.
    #[test]
    fn revoking_everything_restores_default(
        policies in arb_policies(),
        actor in 0u8..3,
        action in 0u8..3,
    ) {
        let (community, mut engine) = build(&policies);
        let names: Vec<String> = engine.policies().iter().map(|p| p.name().to_owned()).collect();
        for name in names {
            prop_assert!(engine.revoke(&name));
        }
        let d = engine.decide(&community, &request(actor, action, 0)).unwrap();
        prop_assert!(!d.is_allowed());
        prop_assert_eq!(d.by(), "default");
    }

    /// Obligation lifecycle: created → exactly one of fulfilled/violated;
    /// discharge after the deadline never succeeds.
    #[test]
    fn obligation_lifecycle_is_linear(
        deadline in 1u64..100,
        discharge_at in 0u64..200,
    ) {
        let mut engine = PolicyEngine::new(Default::default());
        engine.adopt(Policy::obligation("ob", "r0", "act")).unwrap();
        let id = engine.create_obligation("ob", 1, "do it", Some(deadline)).unwrap();
        engine.tick(discharge_at);
        let result = engine.discharge(id);
        if discharge_at <= deadline {
            prop_assert!(result.is_ok());
            prop_assert_eq!(engine.obligations_in(ObligationState::Fulfilled).len(), 1);
        } else {
            prop_assert!(result.is_err());
            prop_assert_eq!(engine.obligations_in(ObligationState::Violated).len(), 1);
        }
        // Never both, never still outstanding.
        prop_assert_eq!(engine.obligations_in(ObligationState::Outstanding).len(), 0);
        prop_assert_eq!(
            engine.obligations_in(ObligationState::Fulfilled).len()
                + engine.obligations_in(ObligationState::Violated).len(),
            1
        );
    }

    /// The audit trail records exactly one entry per decision.
    #[test]
    fn audit_is_complete(requests in proptest::collection::vec((0u8..3, 0u8..3), 0..20)) {
        let (community, mut engine) = build(&[]);
        let adopt_entries = engine.audit().len();
        for (actor, action) in &requests {
            engine.decide(&community, &request(*actor, *action, 0)).unwrap();
        }
        prop_assert_eq!(engine.audit().len() - adopt_entries, requests.len());
    }
}
