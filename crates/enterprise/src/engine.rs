//! The policy engine: decisions, performative actions and obligations.

use std::fmt;

use rmodp_core::expr::EvalError;
use rmodp_core::value::Value;

use crate::community::Community;
use crate::policy::{Decision, Obligation, ObligationState, Policy, PolicyKind};

/// A request by an object to perform an action in some context.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRequest {
    /// The acting object.
    pub actor: u64,
    /// The action name.
    pub action: String,
    /// The action context (a record the policy conditions range over).
    pub context: Value,
}

impl ActionRequest {
    /// Creates a request with an empty context.
    pub fn new(actor: u64, action: impl Into<String>) -> Self {
        Self {
            actor,
            action: action.into(),
            context: Value::record::<&str, _>([]),
        }
    }

    /// Builder: sets the context record.
    pub fn with_context(mut self, context: Value) -> Self {
        self.context = context;
        self
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Whether actions with no applicable permission are allowed.
    /// Enterprise specifications usually close the world: deny by default.
    pub allow_by_default: bool,
}

/// A policy-engine failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A policy with the same name is already adopted.
    DuplicatePolicy { name: String },
    /// A condition failed to evaluate against the request context.
    Condition { policy: String, error: EvalError },
    /// No adopted obligation policy has this name.
    UnknownObligationPolicy { name: String },
    /// The obligation instance does not exist or is not outstanding.
    NotOutstanding { id: u64 },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::DuplicatePolicy { name } => write!(f, "policy {name} already adopted"),
            PolicyError::Condition { policy, error } => {
                write!(f, "condition of policy {policy} failed: {error}")
            }
            PolicyError::UnknownObligationPolicy { name } => {
                write!(f, "no obligation policy named {name}")
            }
            PolicyError::NotOutstanding { id } => {
                write!(f, "obligation {id} is not outstanding")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// One audit-trail entry.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEntry {
    /// A decision was rendered.
    Decision {
        actor: u64,
        action: String,
        decision: Decision,
        at: u64,
    },
    /// A performative action changed the policy set.
    Performative { description: String, at: u64 },
    /// An obligation changed state.
    ObligationChange {
        id: u64,
        state: ObligationState,
        at: u64,
    },
}

/// Evaluates action requests against adopted policies, manages obligation
/// instances, and keeps an audit trail.
///
/// Time is logical: callers pass monotonically increasing instants to
/// [`tick`](Self::tick)-sensitive methods so the engine composes with the
/// deterministic simulator.
#[derive(Debug)]
pub struct PolicyEngine {
    config: EngineConfig,
    policies: Vec<Policy>,
    obligations: Vec<Obligation>,
    audit: Vec<AuditEntry>,
    next_obligation: u64,
    now: u64,
}

impl Default for PolicyEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl PolicyEngine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            policies: Vec::new(),
            obligations: Vec::new(),
            audit: Vec::new(),
            next_obligation: 1,
            now: 0,
        }
    }

    /// Advances logical time (checks obligation deadlines).
    pub fn tick(&mut self, now: u64) {
        self.now = self.now.max(now);
        for ob in &mut self.obligations {
            if ob.state == ObligationState::Outstanding {
                if let Some(deadline) = ob.deadline {
                    if self.now > deadline {
                        ob.state = ObligationState::Violated;
                        self.audit.push(AuditEntry::ObligationChange {
                            id: ob.id,
                            state: ObligationState::Violated,
                            at: self.now,
                        });
                    }
                }
            }
        }
    }

    /// Adopts a policy. Adopting a policy is itself performative.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::DuplicatePolicy`] on a name collision.
    pub fn adopt(&mut self, policy: Policy) -> Result<(), PolicyError> {
        if self.policies.iter().any(|p| p.name() == policy.name()) {
            return Err(PolicyError::DuplicatePolicy {
                name: policy.name().to_owned(),
            });
        }
        self.audit.push(AuditEntry::Performative {
            description: format!("adopt {policy}"),
            at: self.now,
        });
        self.policies.push(policy);
        Ok(())
    }

    /// Revokes a policy by name (performative); returns whether it existed.
    pub fn revoke(&mut self, name: &str) -> bool {
        let before = self.policies.len();
        self.policies.retain(|p| p.name() != name);
        let removed = self.policies.len() != before;
        if removed {
            self.audit.push(AuditEntry::Performative {
                description: format!("revoke {name}"),
                at: self.now,
            });
        }
        removed
    }

    /// The adopted policies.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Decides whether a request may proceed.
    ///
    /// Prohibitions dominate permissions; with no applicable policy the
    /// configured default applies. The actor's roles come from the
    /// community.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::Condition`] if an applicable policy's
    /// condition cannot be evaluated.
    pub fn decide(
        &mut self,
        community: &Community,
        request: &ActionRequest,
    ) -> Result<Decision, PolicyError> {
        let roles = community.roles_of(request.actor);
        let decision = self.decide_for_roles(&roles, request)?;
        self.audit.push(AuditEntry::Decision {
            actor: request.actor,
            action: request.action.clone(),
            decision: decision.clone(),
            at: self.now,
        });
        Ok(decision)
    }

    fn decide_for_roles(
        &self,
        roles: &[&str],
        request: &ActionRequest,
    ) -> Result<Decision, PolicyError> {
        let applicable = |p: &Policy| -> Result<bool, PolicyError> {
            let speaks = roles.iter().any(|r| p.matches(r, &request.action));
            if !speaks {
                return Ok(false);
            }
            match p.condition() {
                None => Ok(true),
                Some(cond) => {
                    cond.eval_bool(&request.context)
                        .map_err(|error| PolicyError::Condition {
                            policy: p.name().to_owned(),
                            error,
                        })
                }
            }
        };
        for p in &self.policies {
            if p.kind() == PolicyKind::Prohibition && applicable(p)? {
                return Ok(Decision::Denied {
                    by: p.name().to_owned(),
                });
            }
        }
        for p in &self.policies {
            if p.kind() == PolicyKind::Permission && applicable(p)? {
                return Ok(Decision::Allowed {
                    by: p.name().to_owned(),
                });
            }
        }
        Ok(if self.config.allow_by_default {
            Decision::Allowed {
                by: "default".to_owned(),
            }
        } else {
            Decision::Denied {
                by: "default".to_owned(),
            }
        })
    }

    /// Performs a performative action that *creates an obligation
    /// instance* under an adopted obligation policy — e.g. an interest-rate
    /// change obliging the manager to notify a customer.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::UnknownObligationPolicy`] if no adopted
    /// obligation policy has the given name.
    pub fn create_obligation(
        &mut self,
        policy_name: &str,
        obligor: u64,
        description: impl Into<String>,
        deadline: Option<u64>,
    ) -> Result<u64, PolicyError> {
        let policy = self
            .policies
            .iter()
            .find(|p| p.name() == policy_name && p.kind() == PolicyKind::Obligation)
            .ok_or_else(|| PolicyError::UnknownObligationPolicy {
                name: policy_name.to_owned(),
            })?;
        let id = self.next_obligation;
        self.next_obligation += 1;
        let ob = Obligation {
            id,
            policy: policy.name().to_owned(),
            obligor,
            action: policy.action().to_owned(),
            description: description.into(),
            created_at: self.now,
            deadline,
            state: ObligationState::Outstanding,
        };
        self.audit.push(AuditEntry::ObligationChange {
            id,
            state: ObligationState::Outstanding,
            at: self.now,
        });
        self.obligations.push(ob);
        Ok(id)
    }

    /// Discharges an outstanding obligation (the obligor performed the
    /// required action).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::NotOutstanding`] if the instance is unknown,
    /// already fulfilled, or already violated.
    pub fn discharge(&mut self, id: u64) -> Result<(), PolicyError> {
        let ob = self
            .obligations
            .iter_mut()
            .find(|o| o.id == id && o.state == ObligationState::Outstanding)
            .ok_or(PolicyError::NotOutstanding { id })?;
        ob.state = ObligationState::Fulfilled;
        self.audit.push(AuditEntry::ObligationChange {
            id,
            state: ObligationState::Fulfilled,
            at: self.now,
        });
        Ok(())
    }

    /// Obligation instances in a given state.
    pub fn obligations_in(&self, state: ObligationState) -> Vec<&Obligation> {
        self.obligations
            .iter()
            .filter(|o| o.state == state)
            .collect()
    }

    /// All obligation instances.
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    /// The audit trail.
    pub fn audit(&self) -> &[AuditEntry] {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch() -> Community {
        let mut c = Community::new(1, "branch", "banking");
        c.add_role("manager").unwrap();
        c.add_role("teller").unwrap();
        c.add_role("customer").unwrap();
        c.assign(1, "manager").unwrap();
        c.assign(2, "teller").unwrap();
        c.assign(3, "customer").unwrap();
        c
    }

    fn engine() -> PolicyEngine {
        let mut e = PolicyEngine::new(EngineConfig::default());
        e.adopt(Policy::permission("deposit-open", "*", "deposit"))
            .unwrap();
        e.adopt(
            Policy::permission("customer-withdraw", "customer", "withdraw")
                .when("amount > 0")
                .unwrap(),
        )
        .unwrap();
        e.adopt(
            Policy::prohibition("daily-limit", "customer", "withdraw")
                .when("amount + withdrawn_today > 500")
                .unwrap(),
        )
        .unwrap();
        e.adopt(Policy::permission(
            "manager-create",
            "manager",
            "create_account",
        ))
        .unwrap();
        e.adopt(Policy::obligation(
            "advise-rate",
            "manager",
            "notify_customer",
        ))
        .unwrap();
        e
    }

    fn withdraw_ctx(amount: i64, withdrawn: i64) -> Value {
        Value::record([
            ("amount", Value::Int(amount)),
            ("withdrawn_today", Value::Int(withdrawn)),
        ])
    }

    #[test]
    fn prohibition_dominates_permission() {
        let c = branch();
        let mut e = engine();
        let ok = ActionRequest::new(3, "withdraw").with_context(withdraw_ctx(400, 0));
        assert_eq!(
            e.decide(&c, &ok).unwrap(),
            Decision::Allowed {
                by: "customer-withdraw".into()
            }
        );
        let too_much = ActionRequest::new(3, "withdraw").with_context(withdraw_ctx(200, 400));
        assert_eq!(
            e.decide(&c, &too_much).unwrap(),
            Decision::Denied {
                by: "daily-limit".into()
            }
        );
    }

    #[test]
    fn default_denies_unpermitted_actions() {
        let c = branch();
        let mut e = engine();
        // A teller has no permission to create accounts; only the manager.
        let req = ActionRequest::new(2, "create_account");
        assert_eq!(
            e.decide(&c, &req).unwrap(),
            Decision::Denied {
                by: "default".into()
            }
        );
        let req = ActionRequest::new(1, "create_account");
        assert!(e.decide(&c, &req).unwrap().is_allowed());
    }

    #[test]
    fn allow_by_default_flips_the_open_world() {
        let c = branch();
        let mut e = PolicyEngine::new(EngineConfig {
            allow_by_default: true,
        });
        let req = ActionRequest::new(2, "anything");
        assert!(e.decide(&c, &req).unwrap().is_allowed());
    }

    #[test]
    fn wildcard_role_policies_apply_to_everyone() {
        let c = branch();
        let mut e = engine();
        for actor in [1, 2, 3] {
            let req = ActionRequest::new(actor, "deposit");
            assert!(e.decide(&c, &req).unwrap().is_allowed(), "actor {actor}");
        }
    }

    #[test]
    fn condition_errors_are_reported() {
        let c = branch();
        let mut e = engine();
        // Missing context fields make the daily-limit condition unevaluable.
        let req = ActionRequest::new(3, "withdraw");
        let err = e.decide(&c, &req).unwrap_err();
        assert!(matches!(err, PolicyError::Condition { .. }));
    }

    #[test]
    fn revoking_permission_is_performative() {
        let c = branch();
        let mut e = engine();
        assert!(e.revoke("customer-withdraw"));
        assert!(!e.revoke("customer-withdraw"));
        let req = ActionRequest::new(3, "withdraw").with_context(withdraw_ctx(100, 0));
        assert_eq!(
            e.decide(&c, &req).unwrap(),
            Decision::Denied {
                by: "default".into()
            }
        );
        assert!(e
            .audit()
            .iter()
            .any(|a| matches!(a, AuditEntry::Performative { description, .. } if description.contains("revoke"))));
    }

    #[test]
    fn interest_rate_change_creates_obligations() {
        let mut e = engine();
        e.tick(10);
        // The performative action: rate changed → obligation per customer.
        let ob1 = e
            .create_obligation("advise-rate", 1, "notify customer 3", Some(100))
            .unwrap();
        let ob2 = e
            .create_obligation("advise-rate", 1, "notify customer 4", Some(100))
            .unwrap();
        assert_eq!(e.obligations_in(ObligationState::Outstanding).len(), 2);
        e.discharge(ob1).unwrap();
        assert_eq!(e.obligations_in(ObligationState::Fulfilled).len(), 1);
        // Deadline passes: the second obligation is violated.
        e.tick(101);
        assert_eq!(e.obligations_in(ObligationState::Violated).len(), 1);
        assert!(matches!(
            e.discharge(ob2),
            Err(PolicyError::NotOutstanding { .. })
        ));
        // Double-discharge is also rejected.
        assert!(matches!(
            e.discharge(ob1),
            Err(PolicyError::NotOutstanding { .. })
        ));
    }

    #[test]
    fn obligations_need_an_adopted_policy() {
        let mut e = engine();
        assert!(matches!(
            e.create_obligation("no-such", 1, "x", None),
            Err(PolicyError::UnknownObligationPolicy { .. })
        ));
        // Permissions are not obligation policies.
        assert!(matches!(
            e.create_obligation("deposit-open", 1, "x", None),
            Err(PolicyError::UnknownObligationPolicy { .. })
        ));
    }

    #[test]
    fn duplicate_policy_names_rejected() {
        let mut e = engine();
        assert!(matches!(
            e.adopt(Policy::permission("deposit-open", "x", "y")),
            Err(PolicyError::DuplicatePolicy { .. })
        ));
    }

    #[test]
    fn audit_records_decisions() {
        let c = branch();
        let mut e = engine();
        let req = ActionRequest::new(3, "deposit");
        e.decide(&c, &req).unwrap();
        assert!(e.audit().iter().any(|a| matches!(
            a,
            AuditEntry::Decision { actor: 3, action, .. } if action == "deposit"
        )));
    }
}
