//! Communities: objects grouped to achieve a purpose, filling roles.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A community error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommunityError {
    /// The role already exists.
    DuplicateRole { role: String },
    /// The role does not exist.
    UnknownRole { role: String },
    /// The object already fills the role.
    AlreadyAssigned { object: u64, role: String },
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityError::DuplicateRole { role } => write!(f, "role {role} already exists"),
            CommunityError::UnknownRole { role } => write!(f, "unknown role {role}"),
            CommunityError::AlreadyAssigned { object, role } => {
                write!(f, "object {object} already fills role {role}")
            }
        }
    }
}

impl std::error::Error for CommunityError {}

/// A grouping of enterprise objects intended to achieve some purpose —
/// e.g. "a bank branch consists of a bank manager, some tellers, and some
/// bank accounts; the branch provides banking services to a geographical
/// area" (§3).
#[derive(Debug, Clone, PartialEq)]
pub struct Community {
    id: u64,
    name: String,
    objective: String,
    roles: BTreeSet<String>,
    members: BTreeMap<u64, BTreeSet<String>>,
}

impl Community {
    /// Creates a community with a stated objective.
    pub fn new(id: u64, name: impl Into<String>, objective: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            objective: objective.into(),
            roles: BTreeSet::new(),
            members: BTreeMap::new(),
        }
    }

    /// The community identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The community name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The community's objective.
    pub fn objective(&self) -> &str {
        &self.objective
    }

    /// Declares a role.
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::DuplicateRole`] if it exists.
    pub fn add_role(&mut self, role: impl Into<String>) -> Result<(), CommunityError> {
        let role = role.into();
        if !self.roles.insert(role.clone()) {
            return Err(CommunityError::DuplicateRole { role });
        }
        Ok(())
    }

    /// The declared roles.
    pub fn roles(&self) -> impl Iterator<Item = &str> {
        self.roles.iter().map(String::as_str)
    }

    /// Assigns an object to a role (objects may fill several roles).
    ///
    /// # Errors
    ///
    /// Returns [`CommunityError::UnknownRole`] or
    /// [`CommunityError::AlreadyAssigned`].
    pub fn assign(&mut self, object: u64, role: impl Into<String>) -> Result<(), CommunityError> {
        let role = role.into();
        if !self.roles.contains(&role) {
            return Err(CommunityError::UnknownRole { role });
        }
        let filled = self.members.entry(object).or_default();
        if !filled.insert(role.clone()) {
            return Err(CommunityError::AlreadyAssigned { object, role });
        }
        Ok(())
    }

    /// Removes an object from a role; returns whether it was assigned.
    pub fn unassign(&mut self, object: u64, role: &str) -> bool {
        let Some(filled) = self.members.get_mut(&object) else {
            return false;
        };
        let removed = filled.remove(role);
        if filled.is_empty() {
            self.members.remove(&object);
        }
        removed
    }

    /// The roles an object fills.
    pub fn roles_of(&self, object: u64) -> Vec<&str> {
        self.members
            .get(&object)
            .map(|r| r.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// The objects filling a role.
    pub fn members_in(&self, role: &str) -> Vec<u64> {
        self.members
            .iter()
            .filter(|(_, roles)| roles.contains(role))
            .map(|(id, _)| *id)
            .collect()
    }

    /// All member objects.
    pub fn members(&self) -> Vec<u64> {
        self.members.keys().copied().collect()
    }

    /// Whether the object fills the role.
    pub fn fills(&self, object: u64, role: &str) -> bool {
        self.members
            .get(&object)
            .is_some_and(|roles| roles.contains(role))
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "community {} ({}): {} roles, {} members",
            self.name,
            self.objective,
            self.roles.len(),
            self.members.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch() -> Community {
        let mut c = Community::new(1, "toowong-branch", "banking services for Toowong");
        c.add_role("manager").unwrap();
        c.add_role("teller").unwrap();
        c.add_role("customer").unwrap();
        c
    }

    #[test]
    fn roles_are_unique() {
        let mut c = branch();
        assert_eq!(
            c.add_role("teller"),
            Err(CommunityError::DuplicateRole {
                role: "teller".into()
            })
        );
        assert_eq!(c.roles().count(), 3);
    }

    #[test]
    fn assignment_and_queries() {
        let mut c = branch();
        c.assign(1, "manager").unwrap();
        c.assign(2, "teller").unwrap();
        c.assign(3, "teller").unwrap();
        // One object can fill several roles (a manager can also tell).
        c.assign(1, "teller").unwrap();
        assert_eq!(c.members_in("teller"), vec![1, 2, 3]);
        assert_eq!(c.roles_of(1), vec!["manager", "teller"]);
        assert!(c.fills(1, "manager"));
        assert!(!c.fills(2, "manager"));
        assert_eq!(c.members(), vec![1, 2, 3]);
    }

    #[test]
    fn unknown_role_and_double_assignment_rejected() {
        let mut c = branch();
        assert_eq!(
            c.assign(1, "auditor"),
            Err(CommunityError::UnknownRole {
                role: "auditor".into()
            })
        );
        c.assign(1, "teller").unwrap();
        assert_eq!(
            c.assign(1, "teller"),
            Err(CommunityError::AlreadyAssigned {
                object: 1,
                role: "teller".into()
            })
        );
    }

    #[test]
    fn unassign_removes_membership() {
        let mut c = branch();
        c.assign(1, "teller").unwrap();
        assert!(c.unassign(1, "teller"));
        assert!(!c.unassign(1, "teller"));
        assert!(!c.fills(1, "teller"));
        assert!(c.members().is_empty());
    }
}
