//! Policies: permissions, prohibitions and obligations.

use std::fmt;

use rmodp_core::expr::{Expr, ParseError};

/// The three policy kinds of the enterprise language (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// What can be done — "money can be deposited into an open account".
    Permission,
    /// What must not be done — "customers must not withdraw more than
    /// $500 per day".
    Prohibition,
    /// What must be done — "the bank manager must advise customers when
    /// the interest rate changes".
    Obligation,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Permission => write!(f, "permission"),
            PolicyKind::Prohibition => write!(f, "prohibition"),
            PolicyKind::Obligation => write!(f, "obligation"),
        }
    }
}

/// A policy: a kind, the role it constrains, the action it concerns, and
/// an optional condition over the action context.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    name: String,
    kind: PolicyKind,
    role: String,
    action: String,
    condition: Option<Expr>,
}

impl Policy {
    /// A permission for `role` to perform `action`.
    pub fn permission(
        name: impl Into<String>,
        role: impl Into<String>,
        action: impl Into<String>,
    ) -> Self {
        Self::new(name, PolicyKind::Permission, role, action)
    }

    /// A prohibition on `role` performing `action`.
    pub fn prohibition(
        name: impl Into<String>,
        role: impl Into<String>,
        action: impl Into<String>,
    ) -> Self {
        Self::new(name, PolicyKind::Prohibition, role, action)
    }

    /// An obligation on `role` to perform `action`.
    pub fn obligation(
        name: impl Into<String>,
        role: impl Into<String>,
        action: impl Into<String>,
    ) -> Self {
        Self::new(name, PolicyKind::Obligation, role, action)
    }

    fn new(
        name: impl Into<String>,
        kind: PolicyKind,
        role: impl Into<String>,
        action: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            kind,
            role: role.into(),
            action: action.into(),
            condition: None,
        }
    }

    /// Restricts the policy to contexts satisfying a predicate.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed predicates.
    pub fn when(mut self, predicate: &str) -> Result<Self, ParseError> {
        self.condition = Some(Expr::parse(predicate)?);
        Ok(self)
    }

    /// The policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The policy kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The constrained role.
    pub fn role(&self) -> &str {
        &self.role
    }

    /// The action the policy concerns (`"*"` matches any action).
    pub fn action(&self) -> &str {
        &self.action
    }

    /// The condition, if any.
    pub fn condition(&self) -> Option<&Expr> {
        self.condition.as_ref()
    }

    /// Whether this policy speaks to the given role and action at all
    /// (ignoring the condition).
    pub fn matches(&self, role: &str, action: &str) -> bool {
        (self.role == role || self.role == "*") && (self.action == action || self.action == "*")
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {} may", self.name, self.kind, self.role)?;
        if self.kind == PolicyKind::Prohibition {
            write!(f, " not")?;
        }
        write!(f, " {}", self.action)?;
        if let Some(c) = &self.condition {
            write!(f, " when {c}")?;
        }
        Ok(())
    }
}

/// The outcome of evaluating an action request against the policy set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Allowed, naming the permission that granted it (or "default").
    Allowed { by: String },
    /// Denied, naming the prohibition (or "default") that blocked it.
    Denied { by: String },
}

impl Decision {
    /// Whether the action may proceed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, Decision::Allowed { .. })
    }

    /// The policy name responsible for the decision.
    pub fn by(&self) -> &str {
        match self {
            Decision::Allowed { by } | Decision::Denied { by } => by,
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Allowed { by } => write!(f, "allowed by {by}"),
            Decision::Denied { by } => write!(f, "denied by {by}"),
        }
    }
}

/// The lifecycle state of an obligation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationState {
    /// Created but not yet discharged.
    Outstanding,
    /// Discharged by the obligor performing the action.
    Fulfilled,
    /// The deadline passed without discharge.
    Violated,
}

impl fmt::Display for ObligationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObligationState::Outstanding => write!(f, "outstanding"),
            ObligationState::Fulfilled => write!(f, "fulfilled"),
            ObligationState::Violated => write!(f, "violated"),
        }
    }
}

/// A live obligation created by a performative action.
#[derive(Debug, Clone, PartialEq)]
pub struct Obligation {
    /// Instance identity.
    pub id: u64,
    /// The obligation policy this instance stems from.
    pub policy: String,
    /// The object that must act.
    pub obligor: u64,
    /// The action that discharges the obligation.
    pub action: String,
    /// Human-readable description (e.g. "notify customer 12 of new rate").
    pub description: String,
    /// Logical time of creation.
    pub created_at: u64,
    /// Logical deadline, if any.
    pub deadline: Option<u64>,
    /// Current lifecycle state.
    pub state: ObligationState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(
            Policy::permission("p", "r", "a").kind(),
            PolicyKind::Permission
        );
        assert_eq!(
            Policy::prohibition("p", "r", "a").kind(),
            PolicyKind::Prohibition
        );
        assert_eq!(
            Policy::obligation("p", "r", "a").kind(),
            PolicyKind::Obligation
        );
    }

    #[test]
    fn matching_supports_wildcards() {
        let p = Policy::permission("p", "*", "deposit");
        assert!(p.matches("teller", "deposit"));
        assert!(p.matches("manager", "deposit"));
        assert!(!p.matches("teller", "withdraw"));
        let p = Policy::prohibition("p", "customer", "*");
        assert!(p.matches("customer", "anything"));
        assert!(!p.matches("teller", "anything"));
    }

    #[test]
    fn when_parses_or_fails() {
        assert!(Policy::permission("p", "r", "a").when("x > 0").is_ok());
        assert!(Policy::permission("p", "r", "a").when("x >").is_err());
    }

    #[test]
    fn display_reads_like_a_policy() {
        let p = Policy::prohibition("limit", "customer", "withdraw")
            .when("amount > 500")
            .unwrap();
        let s = p.to_string();
        assert!(s.contains("may not withdraw"), "{s}");
        assert!(s.contains("when"), "{s}");
        assert!(Decision::Allowed { by: "p".into() }
            .to_string()
            .contains("allowed"));
    }

    #[test]
    fn decision_accessors() {
        let d = Decision::Denied { by: "limit".into() };
        assert!(!d.is_allowed());
        assert_eq!(d.by(), "limit");
    }
}
