//! # rmodp-enterprise — the enterprise viewpoint (§3)
//!
//! The enterprise language expresses *purpose, scope and policies*:
//!
//! - **objects** — active (bank managers, tellers, customers) and passive
//!   (accounts, money);
//! - **communities** — groupings of objects intended to achieve some
//!   purpose (a bank branch providing banking services);
//! - **roles** whose behaviour is constrained by **policies**:
//!   *permissions* (what can be done), *prohibitions* (what must not be
//!   done) and *obligations* (what must be done).
//!
//! The language is specifically concerned with **performative actions**
//! that change policy — e.g. changing the interest rate *creates an
//! obligation* on the bank manager to inform customers. The
//! [`PolicyEngine`](engine::PolicyEngine) evaluates action requests
//! against the policy set, tracks obligation instances through their
//! lifecycle, and keeps an audit trail.
//!
//! # Example
//!
//! ```
//! use rmodp_enterprise::prelude::*;
//! use rmodp_core::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut community = Community::new(1, "branch", "provide banking services");
//! community.add_role("teller")?;
//! community.assign(10, "teller")?;
//!
//! let mut engine = PolicyEngine::new(Default::default());
//! engine.adopt(Policy::permission("teller-ops", "teller", "withdraw")
//!     .when("amount <= 500")?)?;
//! engine.adopt(Policy::prohibition("limit", "teller", "withdraw")
//!     .when("amount > 500")?)?;
//!
//! let small = ActionRequest::new(10, "withdraw")
//!     .with_context(Value::record([("amount", Value::Int(100))]));
//! assert!(engine.decide(&community, &small)?.is_allowed());
//!
//! let big = ActionRequest::new(10, "withdraw")
//!     .with_context(Value::record([("amount", Value::Int(800))]));
//! assert!(!engine.decide(&community, &big)?.is_allowed());
//! # Ok(())
//! # }
//! ```

pub mod community;
pub mod engine;
pub mod policy;

/// Commonly used items.
pub mod prelude {
    pub use crate::community::{Community, CommunityError};
    pub use crate::engine::{ActionRequest, AuditEntry, PolicyEngine, PolicyError};
    pub use crate::policy::{Decision, Obligation, ObligationState, Policy, PolicyKind};
}
