//! A minimal, offline stand-in for `serde`.
//!
//! The workspace annotates its data model with `Serialize`/`Deserialize`
//! derives but performs all real encoding through the hand-written
//! transfer syntaxes in `rmodp-core::codec`. With no crates.io access in
//! the build environment, this crate supplies the names those derives
//! need: marker traits plus no-op derive macros re-exported from the
//! sibling `serde_derive` stub.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
