//! A small, offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_recursive`, range and tuple and string-pattern
//! strategies, `collection::{vec, btree_map}`, `option::of`, `Just`,
//! `any`, and the `proptest!` / `prop_assert*` / `prop_oneof!` macros.
//!
//! Differences from the real crate: generation is purely random (no
//! shrinking), string strategies support only the character-class subset
//! of regex actually used in this workspace, and failures panic with the
//! case number instead of a minimised input. The RNG is deterministic,
//! so every failure reproduces exactly.

use std::rc::Rc;

pub mod test_runner {
    //! Test-run configuration and plumbing.

    pub use rand::rngs::StdRng as InnerRng;
    use rand::SeedableRng;

    /// The deterministic RNG driving generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub InnerRng);

    impl TestRng {
        /// A fixed-seed RNG: every test run generates the same cases.
        pub fn deterministic() -> Self {
            TestRng(InnerRng::seed_from_u64(0x5EED_CAFE_F00D_0001))
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.0.next_u64()
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            TestRng::next_u64(self)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }
}

use test_runner::TestRng;

/// A generator of values of one type.
///
/// Unlike the real crate there is no value tree or shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.gen_value(rng))
    }

    /// Maps generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.gen_value(rng)))
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized + 'static,
        S2: Strategy + 'static,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.gen_value(rng)).gen_value(rng))
    }

    /// Regenerates until `f` accepts the value (bounded; panics if the
    /// filter rejects persistently).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let s = self;
        let reason = reason.into();
        BoxedStrategy::new(move |rng| {
            for _ in 0..1000 {
                let v = s.gen_value(rng);
                if f(&v) {
                    return v;
                }
            }
            panic!("prop_filter({reason}) rejected 1000 candidates in a row");
        })
    }

    /// Builds recursive structures: at each of `depth` levels the result
    /// is either a leaf (this strategy) or a branch built by `recurse`
    /// from the previous level.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy::new(move |rng| {
                use rand::Rng;
                if rng.gen::<f64>() < 0.5 {
                    l.gen_value(rng)
                } else {
                    branch.gen_value(rng)
                }
            });
        }
        cur
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { gen: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of ordinary magnitudes and raw bit patterns (which can be
        // NaN/inf — callers filter what they cannot use).
        let bits = rng.next_u64();
        if bits & 3 == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            use rand::Rng;
            (rng.gen::<f64>() - 0.5) * 2e6
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        // Mostly ASCII, occasionally any scalar value.
        if rng.gen::<f64>() < 0.9 {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0u32..=0x10FFFF)).unwrap_or('\u{FFFD}')
        }
    }
}

/// The canonical strategy for a type: `any::<T>()`.
pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy::new(|rng| T::arbitrary(rng))
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range");
                let unit = rng.next_u64() as $t / (u64::MAX as $t + 1.0);
                self.start + (self.end - self.start) * unit
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty float range");
                let unit = rng.next_u64() as $t / u64::MAX as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

mod pattern {
    //! The character-class subset of regex used by string strategies.

    use super::test_runner::TestRng;
    use rand::Rng;

    enum Atom {
        Class(Vec<char>),
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn printable() -> Vec<char> {
        (0x20u8..0x7f).map(|b| b as char).collect()
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => return out,
                '\\' => {
                    let e = chars.next().unwrap_or('\\');
                    let lit = match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    out.push(lit);
                    prev = Some(lit);
                }
                '-' => {
                    // A range if we have a previous char and a next one
                    // before the closing bracket.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            let (lo, hi) = (lo as u32, hi as u32);
                            for v in lo..=hi {
                                if let Some(ch) = char::from_u32(v) {
                                    out.push(ch);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            out.push('-');
                            prev = Some('-');
                        }
                    }
                }
                other => {
                    out.push(other);
                    prev = Some(other);
                }
            }
        }
        out
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    let lo = lo.trim().parse().unwrap_or(0);
                    let hi = hi.trim().parse().unwrap_or(lo);
                    (lo, hi)
                } else {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse(pat: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    // `\PC` / `\pC`: proptest's "any non-control char";
                    // approximated by printable ASCII.
                    Some('P') | Some('p') => {
                        chars.next(); // the category letter
                        Atom::Class(printable())
                    }
                    Some('n') => Atom::Literal('\n'),
                    Some('t') => Atom::Literal('\t'),
                    Some('r') => Atom::Literal('\r'),
                    Some(other) => Atom::Literal(other),
                    None => Atom::Literal('\\'),
                },
                '.' => Atom::Class(printable()),
                other => Atom::Literal(other),
            };
            let (min, max) = parse_quantifier(&mut chars);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching the pattern subset.
    pub fn gen_string(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pat) {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min..=piece.max)
            };
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        if !set.is_empty() {
                            out.push(set[rng.gen_range(0..set.len())]);
                        }
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        pattern::gen_string(self, rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{BoxedStrategy, Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by collection strategies.
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive) on the element count.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    fn pick_len(rng: &mut TestRng, size: &impl IntoSizeRange) -> usize {
        let (lo, hi) = size.bounds();
        if lo >= hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        }
    }

    /// A strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S>(element: S, size: impl IntoSizeRange + 'static) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::new(move |rng| {
            let n = pick_len(rng, &size);
            (0..n).map(|_| element.gen_value(rng)).collect()
        })
    }

    /// A strategy for `BTreeMap`s. Duplicate generated keys collapse, so
    /// the map may be smaller than the requested size (as in the real
    /// crate).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl IntoSizeRange + 'static,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy + 'static,
        V: Strategy + 'static,
        K::Value: Ord,
    {
        BoxedStrategy::new(move |rng| {
            let n = pick_len(rng, &size);
            (0..n)
                .map(|_| (keys.gen_value(rng), values.gen_value(rng)))
                .collect()
        })
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{BoxedStrategy, Strategy};
    use rand::Rng;

    /// Generates `None` about a quarter of the time, otherwise `Some`.
    pub fn of<S: Strategy + 'static>(inner: S) -> BoxedStrategy<Option<S::Value>> {
        BoxedStrategy::new(move |rng| {
            if rng.gen::<f64>() < 0.25 {
                None
            } else {
                Some(inner.gen_value(rng))
            }
        })
    }
}

pub mod strategy {
    //! Strategy combinator support types.

    pub use super::{BoxedStrategy, Just, Strategy};

    /// Uniform choice between type-erased alternatives (what
    /// `prop_oneof!` builds).
    pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy::new(move |rng| {
            use rand::Rng;
            let i = rng.gen_range(0..arms.len());
            arms[i].gen_value(rng)
        })
    }
}

pub mod prelude {
    //! The commonly used names, mirroring `proptest::prelude`.

    pub use super::strategy::union as __union;
    pub use super::test_runner::ProptestConfig;
    pub use super::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias module as in the real prelude (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                let __strategy = ( $($strat,)+ );
                let mut __ran: u32 = 0;
                let mut __rejected: u32 = 0;
                while __ran < __cfg.cases {
                    let ($($arg,)+) = $crate::Strategy::gen_value(&__strategy, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {
                            __ran += 1;
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __cfg.cases.saturating_mul(50).max(1000),
                                "too many cases rejected by prop_assume!"
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!("property failed at case #{}: {}", __ran, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = prop_oneof![(-50i64..50).prop_map(Tree::Leaf), Just(Tree::Leaf(0)),];
        leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "s={s:?}");
        }

        #[test]
        fn collections_respect_sizes(v in crate::collection::vec(0u8..10, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn recursion_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 4, "depth {}", depth(&t));
        }

        #[test]
        fn assume_skips(v in 0u64..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 1);
        }
    }

    #[test]
    fn string_pattern_escapes_and_pc() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..50 {
            let s = crate::Strategy::gen_value(&"[a-z_][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let p = crate::Strategy::gen_value(&"\\PC{0,64}", &mut rng);
            assert!(p.len() <= 64);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");
            let h = crate::Strategy::gen_value(&"[a-zA-Z0-9 _\\-./\"\\\\\n]{0,12}", &mut rng);
            assert!(
                h.chars()
                    .all(|c| c.is_ascii_alphanumeric() || " _-./\"\\\n".contains(c)),
                "{h:?}"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen_once = || {
            let mut rng = crate::test_runner::TestRng::deterministic();
            let s = arb_tree();
            (0..20)
                .map(|_| format!("{:?}", crate::Strategy::gen_value(&s, &mut rng)))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_once(), gen_once());
    }
}
