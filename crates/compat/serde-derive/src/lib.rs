//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace. The workspace only uses the derives as schema annotations;
//! nothing serialises through serde at runtime (the codecs in
//! `rmodp-core` are hand-written), so deriving nothing is sound.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
