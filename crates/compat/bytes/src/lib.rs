//! A minimal, offline subset of the `bytes` crate: the [`Buf`] /
//! [`BufMut`] traits over `&[u8]` / `Vec<u8>`, covering exactly the
//! little-endian accessors the workspace's codecs use.

/// Sequential reader over a byte source. Implemented for `&[u8]`, where
/// reads advance the slice itself (as in the real crate).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential writer into a growable byte sink. Implemented for
/// `Vec<u8>`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip_all_accessors() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(42);
        out.put_i64_le(-42);
        out.put_f64_le(1.5);
        out.put_slice(b"xy");

        let mut r: &[u8] = &out;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r, b"y");
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
