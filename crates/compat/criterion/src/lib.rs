//! A small, offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of the criterion API the workspace's `harness = false`
//! benches use: [`Criterion::benchmark_group`], group configuration
//! chaining, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a fixed warm-up then a timed
//! batch, reporting mean time per iteration — with none of the real
//! crate's statistics, plotting, or baselines. It exists so benches
//! compile and produce useful first-order numbers offline.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{name}/{parameter}"),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Times closures over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, first warming up briefly, then measuring for roughly
    /// the group's configured measurement time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warmup_end {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Aim for the measurement window, capped to keep offline runs fast.
        let budget = self.measurement_time.min(Duration::from_secs(1));
        let target = ((budget.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.iters = target;
        self.last_ns = elapsed.as_nanos() as f64 / target as f64;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; sampling is not configurable here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            last_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            last_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, bench: &str, b: &Bencher) {
    let ns = b.last_ns;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!(
        "{group}/{bench}: {value:.3} {unit}/iter ({} iters)",
        b.iters
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Bundles benchmark functions under one name, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .measurement_time(Duration::from_millis(1))
            .sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert!(ran);
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
    }
}
