//! A tiny, offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the handful of `rand` 0.8 APIs the workspace actually uses are
//! re-implemented here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], and [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. It is fully
//! deterministic for a given seed, which is all the simulator needs; it
//! makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full bit stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a generator can sample from uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling (span ≤ 2^64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    // Largest multiple of span representable in u64, for unbiased rejection.
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span64) as u128;
        }
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let i = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
