//! Information objects: schema-governed state with a transition log.

use rmodp_core::value::Value;

use crate::schema::{DynamicSchema, InvariantSchema, SchemaError, StaticSchema};

/// One applied state transition, for audit and replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionRecord {
    /// Monotone sequence number within the object (starting at 1).
    pub seq: u64,
    /// The dynamic schema that was applied.
    pub schema: String,
    /// The arguments it was applied with.
    pub args: Value,
    /// State before the transition.
    pub before: Value,
    /// State after the transition.
    pub after: Value,
}

/// An object in the information viewpoint: typed state, invariants that
/// always hold, and a log of the dynamic-schema applications that produced
/// the current state.
#[derive(Debug, Clone, PartialEq)]
pub struct InformationObject {
    id: u64,
    schema: StaticSchema,
    invariants: Vec<InvariantSchema>,
    state: Value,
    log: Vec<TransitionRecord>,
}

impl InformationObject {
    /// Creates an object in the static schema's initial state.
    ///
    /// # Panics
    ///
    /// Panics if the initial state violates an invariant — an inconsistent
    /// specification is a programming error, not a runtime condition.
    pub fn new(id: u64, schema: StaticSchema, invariants: Vec<InvariantSchema>) -> Self {
        let state = schema.initial().clone();
        for inv in &invariants {
            assert!(
                inv.holds(&state).unwrap_or(false),
                "initial state of {} violates invariant {}",
                schema.name(),
                inv.name()
            );
        }
        Self {
            id,
            schema,
            invariants,
            state,
            log: Vec::new(),
        }
    }

    /// The object identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The static schema.
    pub fn schema(&self) -> &StaticSchema {
        &self.schema
    }

    /// The invariants.
    pub fn invariants(&self) -> &[InvariantSchema] {
        &self.invariants
    }

    /// The current state.
    pub fn state(&self) -> &Value {
        &self.state
    }

    /// The transition log.
    pub fn log(&self) -> &[TransitionRecord] {
        &self.log
    }

    /// Applies a dynamic schema: computes the successor state, checks the
    /// static type and every invariant, then commits and records the
    /// transition. On error the state is unchanged.
    ///
    /// # Errors
    ///
    /// Any [`SchemaError`] from guard, arguments, typing or invariants.
    pub fn apply(
        &mut self,
        schema: &DynamicSchema,
        args: Value,
    ) -> Result<&TransitionRecord, SchemaError> {
        let new_state = schema.apply_checked(&self.state, &args, &self.invariants)?;
        self.schema.check(&new_state)?;
        let record = TransitionRecord {
            seq: self.log.len() as u64 + 1,
            schema: schema.name().to_owned(),
            args,
            before: self.state.clone(),
            after: new_state.clone(),
        };
        self.state = new_state;
        self.log.push(record);
        Ok(self.log.last().expect("just pushed"))
    }

    /// Replaces the state wholesale (used by checkpoint restore), still
    /// subject to the static schema and invariants.
    ///
    /// # Errors
    ///
    /// Returns typing or invariant violations; the state is unchanged on
    /// error.
    pub fn restore(&mut self, state: Value) -> Result<(), SchemaError> {
        self.schema.check(&state)?;
        for inv in &self.invariants {
            if !inv.holds(&state)? {
                return Err(SchemaError::InvariantViolated {
                    invariant: inv.name().to_owned(),
                });
            }
        }
        self.state = state;
        Ok(())
    }

    /// Replays the transition log from the initial state and checks it
    /// reproduces the current state — the consistency check used by the
    /// recovery function's tests.
    pub fn replay_consistent(&self) -> bool {
        let mut state = self.schema.initial().clone();
        for rec in &self.log {
            if rec.before != state {
                return false;
            }
            state = rec.after.clone();
        }
        state == self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::dtype::DataType;

    fn counter() -> InformationObject {
        let schema = StaticSchema::new(
            "Counter",
            DataType::record([("n", DataType::Int)]),
            Value::record([("n", Value::Int(0))]),
        )
        .unwrap();
        let invariants = vec![InvariantSchema::parse("NonNegative", "n >= 0").unwrap()];
        InformationObject::new(7, schema, invariants)
    }

    fn add() -> DynamicSchema {
        DynamicSchema::builder("Add")
            .param("k", DataType::Int)
            .effect("n", "n + k")
            .build()
            .unwrap()
    }

    #[test]
    fn apply_commits_and_logs() {
        let mut obj = counter();
        let rec = obj
            .apply(&add(), Value::record([("k", Value::Int(5))]))
            .unwrap()
            .clone();
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.schema, "Add");
        assert_eq!(rec.before.field("n"), Some(&Value::Int(0)));
        assert_eq!(rec.after.field("n"), Some(&Value::Int(5)));
        assert_eq!(obj.state().field("n"), Some(&Value::Int(5)));
        assert_eq!(obj.log().len(), 1);
    }

    #[test]
    fn failed_apply_leaves_state_and_log_untouched() {
        let mut obj = counter();
        obj.apply(&add(), Value::record([("k", Value::Int(3))]))
            .unwrap();
        let err = obj
            .apply(&add(), Value::record([("k", Value::Int(-10))]))
            .unwrap_err();
        assert!(matches!(err, SchemaError::InvariantViolated { .. }));
        assert_eq!(obj.state().field("n"), Some(&Value::Int(3)));
        assert_eq!(obj.log().len(), 1);
    }

    #[test]
    fn restore_checks_type_and_invariants() {
        let mut obj = counter();
        assert!(obj.restore(Value::record([("n", Value::Int(9))])).is_ok());
        assert_eq!(obj.state().field("n"), Some(&Value::Int(9)));
        assert!(obj.restore(Value::record([("n", Value::Int(-1))])).is_err());
        assert!(obj
            .restore(Value::record([("n", Value::text("x"))]))
            .is_err());
        // Failed restores leave the state alone.
        assert_eq!(obj.state().field("n"), Some(&Value::Int(9)));
    }

    #[test]
    fn replay_reproduces_state() {
        let mut obj = counter();
        for k in [1, 2, 3] {
            obj.apply(&add(), Value::record([("k", Value::Int(k))]))
                .unwrap();
        }
        assert!(obj.replay_consistent());
        assert_eq!(obj.state().field("n"), Some(&Value::Int(6)));
        // A restore that bypasses the log breaks replay consistency.
        obj.restore(Value::record([("n", Value::Int(100))]))
            .unwrap();
        assert!(!obj.replay_consistent());
    }

    #[test]
    #[should_panic(expected = "violates invariant")]
    fn inconsistent_initial_state_panics() {
        let schema = StaticSchema::new(
            "Bad",
            DataType::record([("n", DataType::Int)]),
            Value::record([("n", Value::Int(-5))]),
        )
        .unwrap();
        let invariants = vec![InvariantSchema::parse("NonNegative", "n >= 0").unwrap()];
        let _ = InformationObject::new(1, schema, invariants);
    }
}
