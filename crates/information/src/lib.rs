//! # rmodp-information — the information viewpoint (§4)
//!
//! The information language describes the state of an ODP application with
//! three kinds of schema:
//!
//! - a [`schema::StaticSchema`] captures the state and
//!   structure of an object at some particular instant — e.g. *at midnight
//!   the amount-withdrawn-today is $0*;
//! - an [`schema::InvariantSchema`] restricts the state at
//!   all times — e.g. *the amount-withdrawn-today is ≤ $500*;
//! - a [`schema::DynamicSchema`] defines a permitted change
//!   of state — e.g. *a withdrawal of $X decreases the balance by $X and
//!   increases the amount-withdrawn-today by $X* — **always constrained by
//!   the invariant schemas**.
//!
//! [`object::InformationObject`] ties the three together
//! and keeps a transition log; [`association`] provides relationship
//! schemas (*owns account*) and composite schemas (*a bank branch is a set
//! of customers, accounts, and the owns-account relationships*).
//!
//! # The paper's worked example
//!
//! ```
//! use rmodp_information::object::InformationObject;
//! use rmodp_information::schema::{DynamicSchema, InvariantSchema, StaticSchema};
//! use rmodp_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let account = StaticSchema::new(
//!     "Account",
//!     DataType::record([("balance", DataType::Int), ("withdrawn_today", DataType::Int)]),
//!     Value::record([("balance", Value::Int(1_000)), ("withdrawn_today", Value::Int(0))]),
//! )?;
//! let limit = InvariantSchema::parse("DailyLimit", "withdrawn_today <= 500")?;
//! let withdraw = DynamicSchema::builder("Withdraw")
//!     .param("x", DataType::Int)
//!     .guard("x > 0")
//!     .effect("balance", "balance - x")
//!     .effect("withdrawn_today", "withdrawn_today + x")
//!     .build()?;
//!
//! let mut obj = InformationObject::new(1, account, vec![limit]);
//! // $400 in the morning succeeds…
//! obj.apply(&withdraw, Value::record([("x", Value::Int(400))]))?;
//! // …but another $200 in the afternoon violates the invariant.
//! assert!(obj.apply(&withdraw, Value::record([("x", Value::Int(200))])).is_err());
//! assert_eq!(obj.state().field("balance"), Some(&Value::Int(600)));
//! # Ok(())
//! # }
//! ```

pub mod association;
pub mod object;
pub mod schema;

pub use association::{AssociationSchema, AssociationSet, Cardinality, CompositeSchema};
pub use object::{InformationObject, TransitionRecord};
pub use schema::{DynamicSchema, InvariantSchema, SchemaError, StaticSchema};
