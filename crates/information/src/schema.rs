//! Static, invariant and dynamic schemas.

use std::collections::BTreeMap;
use std::fmt;

use rmodp_core::dtype::{DataType, TypeError};
use rmodp_core::expr::{EvalError, Expr, ParseError, Scope};
use rmodp_core::value::Value;

/// An error raised while building or applying schemas.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// A predicate or effect failed to parse.
    Parse(ParseError),
    /// A predicate or effect failed to evaluate.
    Eval(EvalError),
    /// A value did not conform to a static schema's type.
    Type(TypeError),
    /// A dynamic schema's guard rejected the transition.
    GuardFailed { schema: String },
    /// The new state would violate an invariant schema.
    InvariantViolated { invariant: String },
    /// Arguments did not match the dynamic schema's parameters.
    BadArguments { schema: String, detail: String },
    /// An effect assigns to a field the state does not have.
    UnknownField { schema: String, field: String },
    /// The schema definition itself is inconsistent.
    BadDefinition { detail: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse(e) => write!(f, "schema parse error: {e}"),
            SchemaError::Eval(e) => write!(f, "schema evaluation error: {e}"),
            SchemaError::Type(e) => write!(f, "schema type error: {e}"),
            SchemaError::GuardFailed { schema } => {
                write!(
                    f,
                    "guard of dynamic schema {schema} rejected the transition"
                )
            }
            SchemaError::InvariantViolated { invariant } => {
                write!(f, "invariant schema {invariant} violated")
            }
            SchemaError::BadArguments { schema, detail } => {
                write!(f, "bad arguments for {schema}: {detail}")
            }
            SchemaError::UnknownField { schema, field } => {
                write!(f, "{schema} assigns unknown field {field}")
            }
            SchemaError::BadDefinition { detail } => write!(f, "bad schema definition: {detail}"),
        }
    }
}

impl std::error::Error for SchemaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchemaError::Parse(e) => Some(e),
            SchemaError::Eval(e) => Some(e),
            SchemaError::Type(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for SchemaError {
    fn from(e: ParseError) -> Self {
        SchemaError::Parse(e)
    }
}

impl From<EvalError> for SchemaError {
    fn from(e: EvalError) -> Self {
        SchemaError::Eval(e)
    }
}

impl From<TypeError> for SchemaError {
    fn from(e: TypeError) -> Self {
        SchemaError::Type(e)
    }
}

/// A static schema: the structure of an object's state (a record type) and
/// a conforming initial state.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticSchema {
    name: String,
    dtype: DataType,
    initial: Value,
}

impl StaticSchema {
    /// Creates a static schema, validating that the initial state conforms
    /// to the type and that the type is a record.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::BadDefinition`] for non-record types and
    /// [`SchemaError::Type`] if the initial state does not conform.
    pub fn new(
        name: impl Into<String>,
        dtype: DataType,
        initial: Value,
    ) -> Result<Self, SchemaError> {
        if !matches!(dtype, DataType::Record(_)) {
            return Err(SchemaError::BadDefinition {
                detail: "static schema type must be a record".into(),
            });
        }
        dtype.check(&initial)?;
        Ok(Self {
            name: name.into(),
            dtype,
            initial,
        })
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state type.
    pub fn dtype(&self) -> &DataType {
        &self.dtype
    }

    /// The initial state.
    pub fn initial(&self) -> &Value {
        &self.initial
    }

    /// Checks a state against the schema's type.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Type`] on mismatch.
    pub fn check(&self, state: &Value) -> Result<(), SchemaError> {
        Ok(self.dtype.check(state)?)
    }
}

/// An invariant schema: a predicate that must hold in every state.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantSchema {
    name: String,
    predicate: Expr,
}

impl InvariantSchema {
    /// Creates an invariant from an already-parsed predicate.
    pub fn new(name: impl Into<String>, predicate: Expr) -> Self {
        Self {
            name: name.into(),
            predicate,
        }
    }

    /// Parses the predicate from source text.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Parse`] for malformed predicates.
    pub fn parse(name: impl Into<String>, predicate: &str) -> Result<Self, SchemaError> {
        Ok(Self::new(name, Expr::parse(predicate)?))
    }

    /// The invariant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The predicate.
    pub fn predicate(&self) -> &Expr {
        &self.predicate
    }

    /// Evaluates the invariant in a state.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::Eval`] if the predicate cannot be evaluated
    /// in this state (e.g. missing fields).
    pub fn holds(&self, state: &Value) -> Result<bool, SchemaError> {
        Ok(self.predicate.eval_bool(state)?)
    }
}

/// A dynamic schema: a guarded, parameterised state transition.
///
/// Effects are *simultaneous assignments*: every right-hand side is
/// evaluated against the **old** state (plus parameters, plus `old.`-
/// prefixed paths), then all assignments are applied at once.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicSchema {
    name: String,
    params: Vec<(String, DataType)>,
    guard: Option<Expr>,
    effects: Vec<(String, Expr)>,
}

impl DynamicSchema {
    /// Starts building a dynamic schema.
    pub fn builder(name: impl Into<String>) -> DynamicSchemaBuilder {
        DynamicSchemaBuilder {
            name: name.into(),
            params: Vec::new(),
            guard: None,
            effects: Vec::new(),
            error: None,
        }
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared parameters.
    pub fn params(&self) -> &[(String, DataType)] {
        &self.params
    }

    /// Validates arguments against the declared parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::BadArguments`] on missing, extra or
    /// ill-typed arguments.
    pub fn check_args(&self, args: &Value) -> Result<(), SchemaError> {
        let bad = |detail: String| SchemaError::BadArguments {
            schema: self.name.clone(),
            detail,
        };
        let record = args
            .as_record()
            .ok_or_else(|| bad(format!("arguments must be a record, got {}", args.kind())))?;
        for (name, dtype) in &self.params {
            let v = record
                .get(name)
                .ok_or_else(|| bad(format!("missing parameter {name}")))?;
            dtype
                .check(v)
                .map_err(|e| bad(format!("parameter {name}: {e}")))?;
        }
        for key in record.keys() {
            if !self.params.iter().any(|(n, _)| n == key) {
                return Err(bad(format!("unexpected argument {key}")));
            }
        }
        Ok(())
    }

    /// Computes the successor state, without checking any invariants
    /// (callers that hold invariants use
    /// [`apply_checked`](Self::apply_checked)).
    ///
    /// # Errors
    ///
    /// Returns guard, argument or evaluation failures.
    pub fn apply(&self, state: &Value, args: &Value) -> Result<Value, SchemaError> {
        self.check_args(args)?;
        let record = state
            .as_record()
            .ok_or_else(|| SchemaError::BadDefinition {
                detail: format!("state must be a record, got {}", state.kind()),
            })?;

        // Environment: state fields and parameters at top level (parameters
        // shadow state fields), and the whole old state under `old`.
        let mut scope = Scope::new();
        for (k, v) in record {
            scope.bind(k.clone(), v.clone());
        }
        if let Some(args_record) = args.as_record() {
            for (k, v) in args_record {
                scope.bind(k.clone(), v.clone());
            }
        }
        scope.bind("old", state.clone());

        if let Some(guard) = &self.guard {
            if !guard.eval_bool(&scope)? {
                return Err(SchemaError::GuardFailed {
                    schema: self.name.clone(),
                });
            }
        }

        let mut new_state = state.clone();
        for (field, expr) in &self.effects {
            if record.get(field).is_none() {
                return Err(SchemaError::UnknownField {
                    schema: self.name.clone(),
                    field: field.clone(),
                });
            }
            let v = expr.eval(&scope)?;
            new_state.set_field(field.clone(), v);
        }
        Ok(new_state)
    }

    /// Computes the successor state and checks it against a set of
    /// invariants — "a dynamic schema is always constrained by the
    /// invariant schemas" (§4).
    ///
    /// # Errors
    ///
    /// As [`apply`](Self::apply), plus
    /// [`SchemaError::InvariantViolated`] naming the first failing
    /// invariant.
    pub fn apply_checked(
        &self,
        state: &Value,
        args: &Value,
        invariants: &[InvariantSchema],
    ) -> Result<Value, SchemaError> {
        let new_state = self.apply(state, args)?;
        for inv in invariants {
            if !inv.holds(&new_state)? {
                return Err(SchemaError::InvariantViolated {
                    invariant: inv.name().to_owned(),
                });
            }
        }
        Ok(new_state)
    }
}

/// Builder for [`DynamicSchema`]; parse errors are deferred to
/// [`build`](Self::build) so construction can be written fluently.
#[derive(Debug)]
pub struct DynamicSchemaBuilder {
    name: String,
    params: Vec<(String, DataType)>,
    guard: Option<Expr>,
    effects: Vec<(String, Expr)>,
    error: Option<SchemaError>,
}

impl DynamicSchemaBuilder {
    /// Declares a parameter.
    pub fn param(mut self, name: impl Into<String>, dtype: DataType) -> Self {
        self.params.push((name.into(), dtype));
        self
    }

    /// Sets the guard predicate (source text).
    pub fn guard(mut self, predicate: &str) -> Self {
        match Expr::parse(predicate) {
            Ok(e) => self.guard = Some(e),
            Err(e) => self.error = self.error.or(Some(SchemaError::Parse(e))),
        }
        self
    }

    /// Adds an effect `field := expr` (source text).
    pub fn effect(mut self, field: impl Into<String>, expr: &str) -> Self {
        match Expr::parse(expr) {
            Ok(e) => self.effects.push((field.into(), e)),
            Err(e) => self.error = self.error.or(Some(SchemaError::Parse(e))),
        }
        self
    }

    /// Adds an effect with an already-parsed expression.
    pub fn effect_expr(mut self, field: impl Into<String>, expr: Expr) -> Self {
        self.effects.push((field.into(), expr));
        self
    }

    /// Finishes the schema.
    ///
    /// # Errors
    ///
    /// Returns the first deferred parse error, or
    /// [`SchemaError::BadDefinition`] for duplicate parameters/effects or
    /// an effect-free schema.
    pub fn build(self) -> Result<DynamicSchema, SchemaError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.effects.is_empty() {
            return Err(SchemaError::BadDefinition {
                detail: format!("dynamic schema {} has no effects", self.name),
            });
        }
        let mut seen = BTreeMap::new();
        for (p, _) in &self.params {
            if seen.insert(p.clone(), ()).is_some() {
                return Err(SchemaError::BadDefinition {
                    detail: format!("duplicate parameter {p}"),
                });
            }
        }
        let mut seen = BTreeMap::new();
        for (f, _) in &self.effects {
            if seen.insert(f.clone(), ()).is_some() {
                return Err(SchemaError::BadDefinition {
                    detail: format!("duplicate effect on field {f}"),
                });
            }
        }
        Ok(DynamicSchema {
            name: self.name,
            params: self.params,
            guard: self.guard,
            effects: self.effects,
        })
    }
}

/// Evaluates a set of invariants in a state, returning the names of all
/// violated ones (empty when the state is consistent).
///
/// # Errors
///
/// Returns [`SchemaError::Eval`] if any predicate cannot be evaluated.
pub fn violated<'a>(
    invariants: &'a [InvariantSchema],
    state: &Value,
) -> Result<Vec<&'a str>, SchemaError> {
    let mut out = Vec::new();
    for inv in invariants {
        if !inv.holds(state)? {
            out.push(inv.name());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account_schema() -> StaticSchema {
        StaticSchema::new(
            "Account",
            DataType::record([
                ("balance", DataType::Int),
                ("withdrawn_today", DataType::Int),
            ]),
            Value::record([
                ("balance", Value::Int(1_000)),
                ("withdrawn_today", Value::Int(0)),
            ]),
        )
        .unwrap()
    }

    fn withdraw() -> DynamicSchema {
        DynamicSchema::builder("Withdraw")
            .param("x", DataType::Int)
            .guard("x > 0 and balance - x >= 0")
            .effect("balance", "balance - x")
            .effect("withdrawn_today", "withdrawn_today + x")
            .build()
            .unwrap()
    }

    #[test]
    fn static_schema_validates_initial_state() {
        let err = StaticSchema::new(
            "Bad",
            DataType::record([("x", DataType::Int)]),
            Value::record([("x", Value::text("oops"))]),
        )
        .unwrap_err();
        assert!(matches!(err, SchemaError::Type(_)));
        let err = StaticSchema::new("Bad", DataType::Int, Value::Int(1)).unwrap_err();
        assert!(matches!(err, SchemaError::BadDefinition { .. }));
    }

    #[test]
    fn dynamic_schema_applies_simultaneously() {
        // swap(a, b) must read both old values.
        let swap = DynamicSchema::builder("Swap")
            .effect("a", "b")
            .effect("b", "a")
            .build()
            .unwrap();
        let state = Value::record([("a", Value::Int(1)), ("b", Value::Int(2))]);
        let new = swap.apply(&state, &Value::record::<&str, _>([])).unwrap();
        assert_eq!(new.field("a"), Some(&Value::Int(2)));
        assert_eq!(new.field("b"), Some(&Value::Int(1)));
    }

    #[test]
    fn old_prefix_reads_pre_state_even_when_shadowed() {
        // Parameter `balance` shadows the state field; `old.balance` still
        // reaches the pre-state.
        let schema = DynamicSchema::builder("Set")
            .param("balance", DataType::Int)
            .effect("balance", "old.balance + balance")
            .build()
            .unwrap();
        let state = Value::record([("balance", Value::Int(10))]);
        let new = schema
            .apply(&state, &Value::record([("balance", Value::Int(5))]))
            .unwrap();
        assert_eq!(new.field("balance"), Some(&Value::Int(15)));
    }

    #[test]
    fn guard_rejects() {
        let state = account_schema().initial().clone();
        let err = withdraw()
            .apply(&state, &Value::record([("x", Value::Int(-5))]))
            .unwrap_err();
        assert!(matches!(err, SchemaError::GuardFailed { .. }));
        let err = withdraw()
            .apply(&state, &Value::record([("x", Value::Int(2_000))]))
            .unwrap_err();
        assert!(matches!(err, SchemaError::GuardFailed { .. }));
    }

    #[test]
    fn argument_validation() {
        let state = account_schema().initial().clone();
        let w = withdraw();
        for (args, expect) in [
            (Value::record::<&str, _>([]), "missing parameter"),
            (Value::record([("x", Value::text("9"))]), "parameter x"),
            (
                Value::record([("x", Value::Int(1)), ("y", Value::Int(2))]),
                "unexpected argument",
            ),
            (Value::Int(0), "must be a record"),
        ] {
            let err = w.apply(&state, &args).unwrap_err();
            match err {
                SchemaError::BadArguments { detail, .. } => {
                    assert!(detail.contains(expect), "{detail} !~ {expect}")
                }
                other => panic!("expected BadArguments, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_effect_field_is_rejected() {
        let schema = DynamicSchema::builder("Oops")
            .effect("ghost", "1")
            .build()
            .unwrap();
        let err = schema
            .apply(
                &Value::record([("x", Value::Int(1))]),
                &Value::record::<&str, _>([]),
            )
            .unwrap_err();
        assert!(matches!(err, SchemaError::UnknownField { .. }));
    }

    #[test]
    fn invariants_constrain_dynamic_schemas() {
        // The paper's exact scenario: $400 then $200 against a $500 limit.
        let limit = InvariantSchema::parse("DailyLimit", "withdrawn_today <= 500").unwrap();
        let invariants = vec![limit];
        let w = withdraw();
        let s0 = account_schema().initial().clone();
        let s1 = w
            .apply_checked(&s0, &Value::record([("x", Value::Int(400))]), &invariants)
            .unwrap();
        assert_eq!(s1.field("withdrawn_today"), Some(&Value::Int(400)));
        let err = w
            .apply_checked(&s1, &Value::record([("x", Value::Int(200))]), &invariants)
            .unwrap_err();
        assert_eq!(
            err,
            SchemaError::InvariantViolated {
                invariant: "DailyLimit".into()
            }
        );
    }

    #[test]
    fn builder_rejects_malformed_definitions() {
        assert!(matches!(
            DynamicSchema::builder("E").build(),
            Err(SchemaError::BadDefinition { .. })
        ));
        assert!(matches!(
            DynamicSchema::builder("E").effect("x", "1 +").build(),
            Err(SchemaError::Parse(_))
        ));
        assert!(matches!(
            DynamicSchema::builder("E")
                .guard("(")
                .effect("x", "1")
                .build(),
            Err(SchemaError::Parse(_))
        ));
        assert!(matches!(
            DynamicSchema::builder("E")
                .param("a", DataType::Int)
                .param("a", DataType::Int)
                .effect("x", "1")
                .build(),
            Err(SchemaError::BadDefinition { .. })
        ));
        assert!(matches!(
            DynamicSchema::builder("E")
                .effect("x", "1")
                .effect("x", "2")
                .build(),
            Err(SchemaError::BadDefinition { .. })
        ));
    }

    #[test]
    fn violated_lists_all_failures() {
        let invs = vec![
            InvariantSchema::parse("A", "x >= 0").unwrap(),
            InvariantSchema::parse("B", "x <= 10").unwrap(),
            InvariantSchema::parse("C", "x != 99").unwrap(),
        ];
        let state = Value::record([("x", Value::Int(99))]);
        assert_eq!(violated(&invs, &state).unwrap(), vec!["B", "C"]);
        let state = Value::record([("x", Value::Int(5))]);
        assert!(violated(&invs, &state).unwrap().is_empty());
    }

    #[test]
    fn invariant_eval_errors_surface() {
        let inv = InvariantSchema::parse("Bad", "missing > 0").unwrap();
        let err = inv.holds(&Value::record::<&str, _>([])).unwrap_err();
        assert!(matches!(err, SchemaError::Eval(_)));
    }
}
