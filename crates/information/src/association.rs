//! Relationship and composite schemas.
//!
//! §4: "Schemas can also be used to describe relationships or associations
//! between objects; e.g., the static schema *owns account* could associate
//! each account with a customer. A schema can be composed from other
//! schemas to describe complex or composite objects; e.g., a bank branch
//! consists of a set of customers, a set of accounts, and the
//! owns-account relationships."

use std::collections::BTreeMap;
use std::fmt;

use crate::schema::{SchemaError, StaticSchema};

/// How many links a participant may appear in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// At most one link per participant.
    One,
    /// Any number of links.
    Many,
}

/// A binary association schema between two roles, with per-role
/// cardinalities. (`owns_account`: customer `Many` ↔ account `One` — a
/// customer may own many accounts, an account has one owner. §3 notes a
/// customer "should not be limited to having only one bank account".)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssociationSchema {
    name: String,
    left_role: String,
    left_cardinality: Cardinality,
    right_role: String,
    right_cardinality: Cardinality,
}

impl AssociationSchema {
    /// Defines an association schema.
    pub fn new(
        name: impl Into<String>,
        left_role: impl Into<String>,
        left_cardinality: Cardinality,
        right_role: impl Into<String>,
        right_cardinality: Cardinality,
    ) -> Self {
        Self {
            name: name.into(),
            left_role: left_role.into(),
            left_cardinality,
            right_role: right_role.into(),
            right_cardinality,
        }
    }

    /// The association name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The left role name.
    pub fn left_role(&self) -> &str {
        &self.left_role
    }

    /// The right role name.
    pub fn right_role(&self) -> &str {
        &self.right_role
    }
}

/// An instantiated association: a set of links between object identities,
/// maintained under the schema's cardinality constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationSet {
    schema: AssociationSchema,
    links: Vec<(u64, u64)>,
}

/// A cardinality constraint was violated, or the link is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssociationError {
    /// The left participant already has a link and the left cardinality is
    /// [`Cardinality::One`].
    LeftCardinality { association: String, left: u64 },
    /// The right participant already has a link and the right cardinality
    /// is [`Cardinality::One`].
    RightCardinality { association: String, right: u64 },
    /// The identical link already exists.
    DuplicateLink { association: String },
}

impl fmt::Display for AssociationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssociationError::LeftCardinality { association, left } => write!(
                f,
                "{association}: left participant {left} may appear in at most one link"
            ),
            AssociationError::RightCardinality { association, right } => write!(
                f,
                "{association}: right participant {right} may appear in at most one link"
            ),
            AssociationError::DuplicateLink { association } => {
                write!(f, "{association}: link already exists")
            }
        }
    }
}

impl std::error::Error for AssociationError {}

impl AssociationSet {
    /// Creates an empty association set for a schema.
    pub fn new(schema: AssociationSchema) -> Self {
        Self {
            schema,
            links: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &AssociationSchema {
        &self.schema
    }

    /// Adds a link, enforcing cardinalities.
    ///
    /// # Errors
    ///
    /// Returns an [`AssociationError`] if the link would violate a
    /// cardinality or duplicates an existing link.
    pub fn link(&mut self, left: u64, right: u64) -> Result<(), AssociationError> {
        if self.links.contains(&(left, right)) {
            return Err(AssociationError::DuplicateLink {
                association: self.schema.name.clone(),
            });
        }
        if self.schema.left_cardinality == Cardinality::One
            && self.links.iter().any(|(l, _)| *l == left)
        {
            return Err(AssociationError::LeftCardinality {
                association: self.schema.name.clone(),
                left,
            });
        }
        if self.schema.right_cardinality == Cardinality::One
            && self.links.iter().any(|(_, r)| *r == right)
        {
            return Err(AssociationError::RightCardinality {
                association: self.schema.name.clone(),
                right,
            });
        }
        self.links.push((left, right));
        Ok(())
    }

    /// Removes a link; returns whether it existed.
    pub fn unlink(&mut self, left: u64, right: u64) -> bool {
        let before = self.links.len();
        self.links.retain(|&l| l != (left, right));
        before != self.links.len()
    }

    /// The right participants linked to a left participant.
    pub fn rights_of(&self, left: u64) -> Vec<u64> {
        self.links
            .iter()
            .filter(|(l, _)| *l == left)
            .map(|(_, r)| *r)
            .collect()
    }

    /// The left participants linked to a right participant.
    pub fn lefts_of(&self, right: u64) -> Vec<u64> {
        self.links
            .iter()
            .filter(|(_, r)| *r == right)
            .map(|(l, _)| *l)
            .collect()
    }

    /// All links.
    pub fn links(&self) -> &[(u64, u64)] {
        &self.links
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether there are no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// A composite schema: named component schemas plus the associations that
/// relate them (the paper's "bank branch" example).
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeSchema {
    name: String,
    components: BTreeMap<String, StaticSchema>,
    associations: Vec<AssociationSchema>,
}

impl CompositeSchema {
    /// Starts an empty composite schema.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            components: BTreeMap::new(),
            associations: Vec::new(),
        }
    }

    /// Adds a component schema under a role name.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::BadDefinition`] on duplicate role names.
    pub fn with_component(
        mut self,
        role: impl Into<String>,
        schema: StaticSchema,
    ) -> Result<Self, SchemaError> {
        let role = role.into();
        if self.components.contains_key(&role) {
            return Err(SchemaError::BadDefinition {
                detail: format!("duplicate component role {role}"),
            });
        }
        self.components.insert(role, schema);
        Ok(self)
    }

    /// Adds an association whose roles must name existing components.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::BadDefinition`] if either role is unknown.
    pub fn with_association(mut self, assoc: AssociationSchema) -> Result<Self, SchemaError> {
        for role in [assoc.left_role(), assoc.right_role()] {
            if !self.components.contains_key(role) {
                return Err(SchemaError::BadDefinition {
                    detail: format!(
                        "association {} names unknown component {role}",
                        assoc.name()
                    ),
                });
            }
        }
        self.associations.push(assoc);
        Ok(self)
    }

    /// The composite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component schemas by role.
    pub fn components(&self) -> &BTreeMap<String, StaticSchema> {
        &self.components
    }

    /// The associations.
    pub fn associations(&self) -> &[AssociationSchema] {
        &self.associations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmodp_core::dtype::DataType;
    use rmodp_core::value::Value;

    fn owns_account() -> AssociationSchema {
        AssociationSchema::new(
            "owns_account",
            "customer",
            Cardinality::Many,
            "account",
            Cardinality::One,
        )
    }

    #[test]
    fn many_to_one_cardinality() {
        let mut set = AssociationSet::new(owns_account());
        // Customer 1 may own many accounts…
        set.link(1, 100).unwrap();
        set.link(1, 101).unwrap();
        // …but account 100 has exactly one owner.
        let err = set.link(2, 100).unwrap_err();
        assert!(matches!(
            err,
            AssociationError::RightCardinality { right: 100, .. }
        ));
        assert_eq!(set.rights_of(1), vec![100, 101]);
        assert_eq!(set.lefts_of(100), vec![1]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn one_to_one_cardinality() {
        let schema = AssociationSchema::new(
            "manages",
            "manager",
            Cardinality::One,
            "branch",
            Cardinality::One,
        );
        let mut set = AssociationSet::new(schema);
        set.link(1, 10).unwrap();
        assert!(matches!(
            set.link(1, 11),
            Err(AssociationError::LeftCardinality { left: 1, .. })
        ));
        assert!(matches!(
            set.link(2, 10),
            Err(AssociationError::RightCardinality { right: 10, .. })
        ));
    }

    #[test]
    fn duplicate_links_rejected_and_unlink_works() {
        let mut set = AssociationSet::new(owns_account());
        set.link(1, 100).unwrap();
        assert!(matches!(
            set.link(1, 100),
            Err(AssociationError::DuplicateLink { .. })
        ));
        assert!(set.unlink(1, 100));
        assert!(!set.unlink(1, 100));
        assert!(set.is_empty());
        // After unlinking, the slot is free again.
        set.link(2, 100).unwrap();
    }

    #[test]
    fn composite_schema_checks_roles() {
        let customer = StaticSchema::new(
            "Customer",
            DataType::record([("name", DataType::Text)]),
            Value::record([("name", Value::text(""))]),
        )
        .unwrap();
        let account = StaticSchema::new(
            "Account",
            DataType::record([("balance", DataType::Int)]),
            Value::record([("balance", Value::Int(0))]),
        )
        .unwrap();
        let branch = CompositeSchema::new("BankBranch")
            .with_component("customer", customer)
            .unwrap()
            .with_component("account", account)
            .unwrap()
            .with_association(owns_account())
            .unwrap();
        assert_eq!(branch.components().len(), 2);
        assert_eq!(branch.associations().len(), 1);

        let bad = CompositeSchema::new("Broken").with_association(owns_account());
        assert!(matches!(bad, Err(SchemaError::BadDefinition { .. })));
    }

    #[test]
    fn duplicate_component_role_rejected() {
        let c = StaticSchema::new(
            "C",
            DataType::record([("x", DataType::Int)]),
            Value::record([("x", Value::Int(0))]),
        )
        .unwrap();
        let result = CompositeSchema::new("X")
            .with_component("c", c.clone())
            .unwrap()
            .with_component("c", c);
        assert!(matches!(result, Err(SchemaError::BadDefinition { .. })));
    }
}
