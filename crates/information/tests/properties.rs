//! Property tests for the information viewpoint: accepted transitions
//! never violate invariants, rejected transitions never change state, and
//! transition logs always replay.

use proptest::prelude::*;

use rmodp_core::dtype::DataType;
use rmodp_core::value::Value;
use rmodp_information::object::InformationObject;
use rmodp_information::schema::{violated, DynamicSchema, InvariantSchema, StaticSchema};

fn account(opening: i64) -> InformationObject {
    let schema = StaticSchema::new(
        "Account",
        DataType::record([
            ("balance", DataType::Int),
            ("withdrawn_today", DataType::Int),
        ]),
        Value::record([
            ("balance", Value::Int(opening)),
            ("withdrawn_today", Value::Int(0)),
        ]),
    )
    .unwrap();
    let invariants = vec![
        InvariantSchema::parse("DailyLimit", "withdrawn_today <= 500").unwrap(),
        InvariantSchema::parse("NonNegativeBalance", "balance >= 0").unwrap(),
        InvariantSchema::parse("NonNegativeWithdrawn", "withdrawn_today >= 0").unwrap(),
    ];
    InformationObject::new(1, schema, invariants)
}

fn withdraw() -> DynamicSchema {
    DynamicSchema::builder("Withdraw")
        .param("x", DataType::Int)
        .guard("x > 0")
        .effect("balance", "balance - x")
        .effect("withdrawn_today", "withdrawn_today + x")
        .build()
        .unwrap()
}

fn deposit() -> DynamicSchema {
    DynamicSchema::builder("Deposit")
        .param("x", DataType::Int)
        .guard("x > 0")
        .effect("balance", "balance + x")
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// THE information-viewpoint safety property: no sequence of schema
    /// applications, whatever succeeds or fails, ever leaves the object
    /// in an invariant-violating state.
    #[test]
    fn invariants_hold_after_any_schema_sequence(
        opening in 0i64..2_000,
        ops in proptest::collection::vec((any::<bool>(), -200i64..800), 0..30),
    ) {
        let mut obj = account(opening);
        let w = withdraw();
        let d = deposit();
        for (is_withdraw, amount) in ops {
            let schema = if is_withdraw { &w } else { &d };
            let _ = obj.apply(schema, Value::record([("x", Value::Int(amount))]));
            let broken = violated(obj.invariants(), obj.state()).unwrap();
            prop_assert!(broken.is_empty(), "violated: {:?}", broken);
        }
    }

    /// Rejected transitions are exactly side-effect free.
    #[test]
    fn rejected_transitions_do_not_change_state(
        opening in 0i64..500,
        amount in -100i64..1_000,
    ) {
        let mut obj = account(opening);
        let before = obj.state().clone();
        let log_len = obj.log().len();
        let result = obj.apply(&withdraw(), Value::record([("x", Value::Int(amount))]));
        if result.is_err() {
            prop_assert_eq!(obj.state(), &before);
            prop_assert_eq!(obj.log().len(), log_len);
        } else {
            prop_assert!(amount > 0 && amount <= opening.min(500));
        }
    }

    /// The transition log always replays to the current state.
    #[test]
    fn logs_always_replay(
        opening in 0i64..2_000,
        ops in proptest::collection::vec((any::<bool>(), 1i64..300), 0..25),
    ) {
        let mut obj = account(opening);
        let w = withdraw();
        let d = deposit();
        for (is_withdraw, amount) in ops {
            let schema = if is_withdraw { &w } else { &d };
            let _ = obj.apply(schema, Value::record([("x", Value::Int(amount))]));
        }
        prop_assert!(obj.replay_consistent());
    }

    /// Accounting identity: balance always equals opening + deposits -
    /// withdrawals that committed.
    #[test]
    fn balance_is_the_sum_of_committed_transitions(
        opening in 0i64..2_000,
        ops in proptest::collection::vec((any::<bool>(), 1i64..300), 0..25),
    ) {
        let mut obj = account(opening);
        let w = withdraw();
        let d = deposit();
        let mut expected = opening;
        for (is_withdraw, amount) in ops {
            let schema = if is_withdraw { &w } else { &d };
            if obj.apply(schema, Value::record([("x", Value::Int(amount))])).is_ok() {
                expected += if is_withdraw { -amount } else { amount };
            }
        }
        prop_assert_eq!(obj.state().field("balance"), Some(&Value::Int(expected)));
    }
}
