//! The kernel's event queue: one totally ordered virtual-time schedule.
//!
//! Every virtual-time advance in the workspace funnels through this
//! queue. Entries are keyed by `(SimTime, seq)` where `seq` is a dense
//! submission counter, so ordering is total and equal-timestamp entries
//! fire in submission order — the stable FIFO tie-break that makes whole
//! simulations replay byte-identically from a seed.
//!
//! Popping an entry advances the queue's clock and publishes it to the
//! observe bus ([`bus::set_time_us`]), so traces from every layer are
//! stamped from this single clock by construction.

use std::collections::BinaryHeap;

use rmodp_observe::bus;

use crate::time::SimTime;

/// One queued entry: `item` fires at `at`; `seq` breaks ties FIFO.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    item: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the BinaryHeap pops the earliest entry; ties broken
        // by submission order for determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic event queue over virtual time.
///
/// The queue owns the clock: [`EventQueue::pop`] advances it to the
/// popped entry's timestamp and [`EventQueue::advance_to`] idles it
/// forward when nothing is due. Both publish the new time to the observe
/// bus, so everything recorded anywhere in the process is stamped with
/// this clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    now: SimTime,
    seq: u64,
    stride: u64,
    heap: BinaryHeap<Entry<E>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at the epoch.
    pub fn new() -> Self {
        Self::with_seq_stride(0, 1)
    }

    /// An empty queue whose submission counter starts at `offset` and
    /// advances by `stride` — shard `i` of `n` uses `(i, n)` so every
    /// sequence number across a sharded kernel is globally unique and the
    /// canonical cross-shard merge order `(SimTime, shard, seq)` never
    /// collides.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_seq_stride(offset: u64, stride: u64) -> Self {
        assert!(stride > 0, "seq stride must be positive");
        Self {
            now: SimTime::ZERO,
            seq: offset,
            stride,
            heap: BinaryHeap::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `item` to fire at absolute time `at`; returns the dense
    /// submission sequence number used for the FIFO tie-break.
    pub fn schedule(&mut self, at: SimTime, item: E) -> u64 {
        let seq = self.seq;
        self.seq += self.stride;
        self.heap.push(Entry { at, seq, item });
        seq
    }

    /// The timestamp of the next entry, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest entry, advancing the clock to its timestamp and
    /// publishing the new time to the observe bus.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        bus::set_time_us(self.now.as_micros());
        Some((entry.at, entry.item))
    }

    /// Idles the clock forward to `at` (never backward) without firing
    /// anything, publishing the new time to the observe bus.
    ///
    /// # Panics
    ///
    /// Panics if an entry is still scheduled at or before `at`: idling
    /// the clock past a due event would silently reorder it after later
    /// submissions, breaking the total `(SimTime, seq)` order every
    /// replay guarantee in the workspace rests on. Drain due entries
    /// with [`EventQueue::pop`] first.
    pub fn advance_to(&mut self, at: SimTime) {
        if let Some(next) = self.peek_time() {
            assert!(
                next > at,
                "advance_to({at}) would skip an entry still scheduled at {next}"
            );
        }
        if self.now < at {
            self.now = at;
            bus::set_time_us(self.now.as_micros());
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), "b");
        q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(5), "c");
        assert_eq!(q.pop(), Some((SimTime::from_micros(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_advances_the_shared_clock() {
        bus::reset();
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(42));
        assert_eq!(bus::now_us(), 42);
    }

    #[test]
    fn advance_to_never_moves_backward() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_micros(10));
        q.advance_to(SimTime::from_micros(3));
        assert_eq!(q.now(), SimTime::from_micros(10));
    }

    #[test]
    #[should_panic(expected = "would skip an entry still scheduled")]
    fn advance_to_panics_when_a_due_entry_remains() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), ());
        q.advance_to(SimTime::from_micros(5));
    }

    #[test]
    fn advance_to_is_fine_short_of_the_next_entry() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), ());
        q.advance_to(SimTime::from_micros(4));
        assert_eq!(q.now(), SimTime::from_micros(4));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), ())));
    }

    #[test]
    fn equal_timestamps_fire_in_submission_order() {
        // The FIFO tie-break: a burst of entries at one instant pops in
        // exactly the order it was scheduled, interleaved or not.
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(9);
        for label in ["first", "second", "third", "fourth"] {
            q.schedule(t, label);
        }
        q.schedule(SimTime::from_micros(1), "early");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["early", "first", "second", "third", "fourth"]);
    }

    #[test]
    fn strided_queues_allocate_disjoint_seqs() {
        let mut a = EventQueue::with_seq_stride(0, 2);
        let mut b = EventQueue::with_seq_stride(1, 2);
        let sa: Vec<u64> = (0..3).map(|_| a.schedule(SimTime::ZERO, ())).collect();
        let sb: Vec<u64> = (0..3).map(|_| b.schedule(SimTime::ZERO, ())).collect();
        assert_eq!(sa, vec![0, 2, 4]);
        assert_eq!(sb, vec![1, 3, 5]);
    }
}
