//! Shared, immutable message payloads.
//!
//! The invocation hot path used to deep-clone `Vec<u8>` payloads at
//! every hop: once per retransmission, once per dedup-cache entry and
//! replay, once per replica in a fan-out. [`Payload`] replaces those
//! clones with a reference-counted slice of one immutable buffer:
//! cloning shares, [`Payload::slice`] reslices without copying, and the
//! only ways to touch bytes are [`Payload::new`] (materialise a fresh
//! buffer from an owned `Vec<u8>`) and [`Payload::copy_of`] (deep-copy
//! borrowed bytes).
//!
//! Both materialisation paths are metered on the observe bus —
//! `kernel.payload.allocs` for fresh buffers, `kernel.payload.copies`
//! for deep copies — so benchmarks can *assert* the hot path performs
//! zero payload copies rather than merely hope so.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use rmodp_observe::bus;

/// Counter name for fresh payload buffers (marshalling an owned vec).
pub const PAYLOAD_ALLOCS: &str = "kernel.payload.allocs";

/// Counter name for deep copies of borrowed bytes. The hot path must
/// keep this at zero; `mechanisms_bench` asserts it.
pub const PAYLOAD_COPIES: &str = "kernel.payload.copies";

/// An immutable, cheaply shareable byte payload.
///
/// `Clone` shares the backing buffer (an `Arc` bump, no bytes move);
/// [`Payload::slice`] produces sub-views of the same buffer. Derefs to
/// `[u8]`, so read sites need no changes.
#[derive(Clone)]
pub struct Payload {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Payload {
    /// An empty payload (no allocation).
    pub fn empty() -> Self {
        Payload {
            data: Arc::from([] as [u8; 0]),
            start: 0,
            end: 0,
        }
    }

    /// Materialises a payload from an owned buffer. This is the normal
    /// way bytes enter the system (marshalling); it is metered as an
    /// allocation, not a copy.
    pub fn new(bytes: Vec<u8>) -> Self {
        bus::counter_add(PAYLOAD_ALLOCS, 1);
        let end = bytes.len();
        Payload {
            data: Arc::from(bytes),
            start: 0,
            end,
        }
    }

    /// Deep-copies borrowed bytes into a fresh payload. Metered as a
    /// copy — the invocation hot path must never take this route.
    pub fn copy_of(bytes: &[u8]) -> Self {
        bus::counter_add(PAYLOAD_COPIES, 1);
        let end = bytes.len();
        Payload {
            data: Arc::from(bytes.to_vec()),
            start: 0,
            end,
        }
    }

    /// A zero-copy sub-view `[start, end)` of this payload's bytes.
    ///
    /// # Panics
    ///
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, start: usize, end: usize) -> Payload {
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Payload {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// The payload's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether two payloads share one backing buffer (diagnostic).
    pub fn shares_buffer_with(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload::new(bytes)
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload::copy_of(bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(bytes: &[u8; N]) -> Self {
        Payload::copy_of(bytes)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.len())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_bytes() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_bytes() == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_bytes() == *other as &[u8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_slice_does_not_copy() {
        bus::reset();
        let p = Payload::new(b"hello world".to_vec());
        let q = p.clone();
        let h = p.slice(0, 5);
        assert!(p.shares_buffer_with(&q));
        assert!(p.shares_buffer_with(&h));
        assert_eq!(&h[..], b"hello");
        assert_eq!(bus::counter(PAYLOAD_ALLOCS), 1);
        assert_eq!(bus::counter(PAYLOAD_COPIES), 0);
    }

    #[test]
    fn copy_of_is_metered_as_a_copy() {
        bus::reset();
        let p = Payload::copy_of(b"abc");
        assert_eq!(p, b"abc".to_vec());
        assert_eq!(bus::counter(PAYLOAD_COPIES), 1);
    }

    #[test]
    fn equality_against_vecs_and_arrays() {
        bus::reset();
        let p = Payload::new(b"ping".to_vec());
        assert_eq!(p, b"ping".to_vec());
        assert_eq!(p, b"ping");
        assert!(p == *b"ping".as_slice());
        assert_eq!(b"ping".to_vec(), p);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_are_checked() {
        let p = Payload::new(vec![1, 2, 3]);
        let _ = p.slice(2, 5);
    }
}
