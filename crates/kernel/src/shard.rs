//! Sharded execution: partitioned event queues under conservative
//! lookahead, merged deterministically.
//!
//! The single [`crate::queue::EventQueue`] was the last serial advance
//! site in the workspace. This module splits a world into N *shards*,
//! each owning a disjoint partition of nodes (see
//! [`crate::actor::PartitionMap`]) with its own queue, clock, and RNG
//! stream, and synchronizes them with the classic conservative
//! (Chandy–Misra–Bryant style) argument:
//!
//! * every cross-shard interaction travels over a link whose one-way
//!   latency is at least `lookahead` (> 0);
//! * per epoch, let `m` be the global minimum next-event time; every
//!   shard may safely process all events strictly before the horizon
//!   `h = m + lookahead`, because a message *sent* during the epoch is
//!   sent at some `t ≥ m` and thus *arrives* at `t + latency ≥ h`;
//! * at the epoch barrier, cross-shard messages are exchanged in the
//!   canonical `(SimTime, src_shard, src_seq)` merge order, so the
//!   target queue's tie-break sequence assignment — and therefore the
//!   whole run — is independent of thread scheduling.
//!
//! The same epoch loop runs serially or on real threads
//! ([`std::thread::scope`]); both paths perform the identical sequence
//! of `run_before` / `take_outbox` / `deposit` operations, so a
//! threaded run is bit-identical to a serial one by construction.

use std::sync::mpsc;

use crate::time::{SimDuration, SimTime};

/// A message crossing from one shard to another, carried through the
/// epoch barrier. `src_seq` is the sending shard's deterministic
/// submission counter for the message, so the canonical merge order
/// `(at, src_shard, src_seq)` is a total order.
#[derive(Debug, Clone)]
pub struct CrossShardEvent<M> {
    /// Arrival instant at the destination shard (≥ the epoch horizon,
    /// by the lookahead guarantee).
    pub at: SimTime,
    /// The shard that sent it.
    pub src_shard: usize,
    /// The sending shard's submission counter for this message.
    pub src_seq: u64,
    /// The shard that owns the destination node.
    pub dst_shard: usize,
    /// The message itself.
    pub msg: M,
}

/// One shard of a partitioned world: a disjoint set of nodes with their
/// own event queue and clock, able to run independently up to a horizon
/// and to exchange messages with other shards at epoch barriers.
pub trait ShardWorld: Send {
    /// The cross-shard message type.
    type Msg: Send;
    /// A topology/fault action applied at an epoch barrier (all shards
    /// receive every action, keeping their world views identical).
    type Action: Clone + Send;

    /// This shard's index.
    fn shard_id(&self) -> usize;

    /// This shard's clock (the time of its last processed event).
    fn now(&self) -> SimTime;

    /// The time of this shard's next queued event, if any.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Processes every queued event strictly before `horizon`,
    /// including events the processing itself schedules below the
    /// horizon. Returns the number of events processed. Must not
    /// process anything at or after `horizon`.
    fn run_before(&mut self, horizon: SimTime) -> u64;

    /// Takes the cross-shard messages emitted since the last take, in
    /// deterministic send order.
    fn take_outbox(&mut self) -> Vec<CrossShardEvent<Self::Msg>>;

    /// Accepts a message routed to this shard; it must be scheduled at
    /// exactly `event.at`, which the kernel guarantees is not in this
    /// shard's past.
    fn deposit(&mut self, event: CrossShardEvent<Self::Msg>);

    /// Applies a barrier action (crash, partition, heal, …) to this
    /// shard's copy of the shared world view.
    fn apply_action(&mut self, action: &Self::Action);
}

/// A pacing hook fired at exact virtual instants between epochs —
/// the seam fault injectors use to act at precise times against the
/// merged global clock.
///
/// The kernel caps each epoch's horizon at [`EpochHook::next_instant`],
/// and once every event before that instant has been processed it calls
/// [`EpochHook::fire`], broadcasting the returned actions to all shards
/// before any event at or after the instant runs. `fire` must consume
/// the instant (the next `next_instant` must be strictly later, or
/// `None`), otherwise the run cannot make progress.
pub trait EpochHook<A> {
    /// The next instant this hook wants control at, if any.
    fn next_instant(&self) -> Option<SimTime>;

    /// Performs the work due at `at`; the returned actions are applied
    /// to every shard before time passes `at`.
    fn fire(&mut self, at: SimTime) -> Vec<A>;
}

/// A hook that never fires (the default).
pub struct NoHook;

impl<A> EpochHook<A> for NoHook {
    fn next_instant(&self) -> Option<SimTime> {
        None
    }

    fn fire(&mut self, _at: SimTime) -> Vec<A> {
        Vec::new()
    }
}

/// Counters describing one sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Synchronization epochs executed.
    pub epochs: u64,
    /// Events processed across all shards.
    pub events: u64,
    /// Messages exchanged across shard boundaries.
    pub cross_shard_messages: u64,
    /// Epoch-hook firings.
    pub hook_firings: u64,
}

/// What one epoch should do, derived from the global queue state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EpochPlan {
    /// Nothing queued anywhere and no hook instant: the run is over.
    Idle,
    /// Fire the hook at this instant before processing anything else.
    Fire(SimTime),
    /// Advance every shard strictly below this horizon.
    Run(SimTime),
}

fn plan_epoch(
    next_times: &[Option<SimTime>],
    hook_next: Option<SimTime>,
    lookahead: SimDuration,
) -> EpochPlan {
    let min_next = next_times.iter().flatten().min().copied();
    match (min_next, hook_next) {
        (None, None) => EpochPlan::Idle,
        (None, Some(f)) => EpochPlan::Fire(f),
        (Some(m), hook) => {
            if let Some(f) = hook {
                if f <= m {
                    // Everything before `f` is already processed (the
                    // global minimum is at or after it): act now, before
                    // any event at `f` or later runs.
                    return EpochPlan::Fire(f);
                }
            }
            let mut horizon = m + lookahead;
            if let Some(f) = hook {
                horizon = horizon.min(f);
            }
            EpochPlan::Run(horizon)
        }
    }
}

/// Sorts an epoch's cross-shard messages into the canonical merge order.
fn canonical_sort<M>(outbox: &mut [CrossShardEvent<M>]) {
    outbox.sort_by_key(|e| (e.at, e.src_shard, e.src_seq));
}

/// Commands sent to a shard worker thread, one round at a time.
enum Cmd<M, A> {
    RunBefore(SimTime),
    Deposit(Vec<CrossShardEvent<M>>),
    Apply(Vec<A>),
}

/// A worker's answer to one command.
struct Reply<M> {
    shard: usize,
    next_time: Option<SimTime>,
    outbox: Vec<CrossShardEvent<M>>,
    events: u64,
}

/// The sharded scheduler: owns N [`ShardWorld`]s and drives them epoch
/// by epoch until every queue is empty and the hook is exhausted.
///
/// Construction checks `lookahead > 0`: with zero lookahead the safe
/// horizon equals the minimum next-event time and no epoch could make
/// progress.
pub struct ShardedKernel<W: ShardWorld> {
    shards: Vec<W>,
    lookahead: SimDuration,
    threaded: bool,
}

impl<W: ShardWorld> ShardedKernel<W> {
    /// Creates a kernel over pre-partitioned shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, a shard's `shard_id` does not match
    /// its index, or `lookahead` is zero.
    pub fn new(shards: Vec<W>, lookahead: SimDuration) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative synchronization needs positive lookahead"
        );
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(shard.shard_id(), i, "shard id must equal its index");
        }
        let threaded = shards.len() > 1;
        Self {
            shards,
            lookahead,
            threaded,
        }
    }

    /// Chooses between the serial epoch loop and one OS thread per shard
    /// (the default for more than one shard). Both paths perform the
    /// identical operation sequence, so results do not depend on this.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
    }

    /// The configured lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The shards, for post-run inspection.
    pub fn shards(&self) -> &[W] {
        &self.shards
    }

    /// The shards, mutably (e.g. to seed initial events).
    pub fn shards_mut(&mut self) -> &mut [W] {
        &mut self.shards
    }

    /// Consumes the kernel, returning its shards.
    pub fn into_shards(self) -> Vec<W> {
        self.shards
    }

    /// Runs to global quiescence with no epoch hook.
    pub fn run(&mut self) -> SyncStats {
        self.run_with_hook(&mut NoHook)
    }

    /// Runs to global quiescence, pacing the given hook against the
    /// merged global clock.
    pub fn run_with_hook(&mut self, hook: &mut dyn EpochHook<W::Action>) -> SyncStats {
        if self.threaded && self.shards.len() > 1 {
            self.run_threaded(hook)
        } else {
            self.run_serial(hook)
        }
    }

    fn run_serial(&mut self, hook: &mut dyn EpochHook<W::Action>) -> SyncStats {
        let mut stats = SyncStats::default();
        loop {
            let next_times: Vec<Option<SimTime>> =
                self.shards.iter().map(|s| s.next_event_time()).collect();
            match plan_epoch(&next_times, hook.next_instant(), self.lookahead) {
                EpochPlan::Idle => break,
                EpochPlan::Fire(at) => {
                    let actions = hook.fire(at);
                    stats.hook_firings += 1;
                    assert!(
                        hook.next_instant().is_none_or(|n| n > at),
                        "epoch hook did not consume its instant"
                    );
                    for action in &actions {
                        for shard in &mut self.shards {
                            shard.apply_action(action);
                        }
                    }
                }
                EpochPlan::Run(horizon) => {
                    stats.epochs += 1;
                    let mut outbox = Vec::new();
                    for shard in &mut self.shards {
                        stats.events += shard.run_before(horizon);
                        outbox.append(&mut shard.take_outbox());
                    }
                    canonical_sort(&mut outbox);
                    stats.cross_shard_messages += outbox.len() as u64;
                    for event in outbox {
                        debug_assert!(
                            event.at >= horizon,
                            "cross-shard message at {} violates the lookahead \
                             horizon {horizon}",
                            event.at
                        );
                        self.shards[event.dst_shard].deposit(event);
                    }
                }
            }
        }
        stats
    }

    /// The threaded epoch loop: one persistent worker per shard, two
    /// command rounds per epoch (advance, then deposit). The main thread
    /// makes every ordering decision; workers only execute, so the
    /// operation sequence is identical to [`Self::run_serial`].
    fn run_threaded(&mut self, hook: &mut dyn EpochHook<W::Action>) -> SyncStats {
        let mut stats = SyncStats::default();
        let lookahead = self.lookahead;
        let n = self.shards.len();
        std::thread::scope(|scope| {
            let (reply_tx, reply_rx) = mpsc::channel::<Reply<W::Msg>>();
            let mut cmd_txs = Vec::with_capacity(n);
            for shard in self.shards.iter_mut() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<W::Msg, W::Action>>();
                let reply_tx = reply_tx.clone();
                cmd_txs.push(cmd_tx);
                scope.spawn(move || {
                    while let Ok(cmd) = cmd_rx.recv() {
                        let mut reply = Reply {
                            shard: shard.shard_id(),
                            next_time: None,
                            outbox: Vec::new(),
                            events: 0,
                        };
                        match cmd {
                            Cmd::RunBefore(horizon) => {
                                reply.events = shard.run_before(horizon);
                                reply.outbox = shard.take_outbox();
                            }
                            Cmd::Deposit(events) => {
                                for event in events {
                                    shard.deposit(event);
                                }
                            }
                            Cmd::Apply(actions) => {
                                for action in &actions {
                                    shard.apply_action(action);
                                }
                            }
                        }
                        reply.next_time = shard.next_event_time();
                        if reply_tx.send(reply).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(reply_tx);

            // One round: broadcast a command per shard, await all replies.
            let round = |cmds: Vec<Cmd<W::Msg, W::Action>>| -> Vec<Reply<W::Msg>> {
                for (tx, cmd) in cmd_txs.iter().zip(cmds) {
                    tx.send(cmd).expect("shard worker alive");
                }
                let mut replies: Vec<Option<Reply<W::Msg>>> = (0..n).map(|_| None).collect();
                for _ in 0..n {
                    let reply = reply_rx.recv().expect("shard worker alive");
                    let shard = reply.shard;
                    replies[shard] = Some(reply);
                }
                replies
                    .into_iter()
                    .map(|r| r.expect("every shard replied"))
                    .collect()
            };

            let mut next_times: Vec<Option<SimTime>> =
                round((0..n).map(|_| Cmd::Deposit(Vec::new())).collect())
                    .into_iter()
                    .map(|r| r.next_time)
                    .collect();

            loop {
                match plan_epoch(&next_times, hook.next_instant(), lookahead) {
                    EpochPlan::Idle => break,
                    EpochPlan::Fire(at) => {
                        let actions = hook.fire(at);
                        stats.hook_firings += 1;
                        assert!(
                            hook.next_instant().is_none_or(|n| n > at),
                            "epoch hook did not consume its instant"
                        );
                        let replies = round((0..n).map(|_| Cmd::Apply(actions.clone())).collect());
                        for reply in replies {
                            next_times[reply.shard] = reply.next_time;
                        }
                    }
                    EpochPlan::Run(horizon) => {
                        stats.epochs += 1;
                        let replies = round((0..n).map(|_| Cmd::RunBefore(horizon)).collect());
                        let mut outbox = Vec::new();
                        for mut reply in replies {
                            stats.events += reply.events;
                            next_times[reply.shard] = reply.next_time;
                            outbox.append(&mut reply.outbox);
                        }
                        canonical_sort(&mut outbox);
                        stats.cross_shard_messages += outbox.len() as u64;
                        let mut per_shard: Vec<Vec<CrossShardEvent<W::Msg>>> =
                            (0..n).map(|_| Vec::new()).collect();
                        for event in outbox {
                            debug_assert!(
                                event.at >= horizon,
                                "cross-shard message at {} violates the lookahead \
                                 horizon {horizon}",
                                event.at
                            );
                            per_shard[event.dst_shard].push(event);
                        }
                        let replies = round(per_shard.into_iter().map(Cmd::Deposit).collect());
                        for reply in replies {
                            next_times[reply.shard] = reply.next_time;
                        }
                    }
                }
            }
        });
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOP: SimDuration = SimDuration::from_micros(100);

    /// A toy shard: tokens hop between shards with latency `HOP`,
    /// decrementing a time-to-live; every processed hop is logged.
    struct TokenShard {
        id: usize,
        shards: usize,
        queue: crate::queue::EventQueue<u32>,
        outbox: Vec<CrossShardEvent<u32>>,
        sent: u64,
        log: Vec<(SimTime, u32)>,
        halted: bool,
    }

    impl TokenShard {
        fn new(id: usize, shards: usize) -> Self {
            Self {
                id,
                shards,
                queue: crate::queue::EventQueue::with_seq_stride(id as u64, shards as u64),
                outbox: Vec::new(),
                sent: 0,
                log: Vec::new(),
                halted: false,
            }
        }
    }

    impl ShardWorld for TokenShard {
        type Msg = u32;
        type Action = ();

        fn shard_id(&self) -> usize {
            self.id
        }

        fn now(&self) -> SimTime {
            self.queue.now()
        }

        fn next_event_time(&self) -> Option<SimTime> {
            self.queue.peek_time()
        }

        fn run_before(&mut self, horizon: SimTime) -> u64 {
            let mut events = 0;
            while self.queue.peek_time().is_some_and(|t| t < horizon) {
                let (at, ttl) = self.queue.pop().expect("peeked");
                events += 1;
                self.log.push((at, ttl));
                if ttl == 0 || self.halted {
                    continue;
                }
                // Forward the token to the next shard (or locally for a
                // single shard — still via the queue, so shard counts
                // only change *where* work runs, not what happens).
                let dst = (self.id + 1) % self.shards;
                let arrive = at + HOP;
                if dst == self.id {
                    self.queue.schedule(arrive, ttl - 1);
                } else {
                    let src_seq = self.sent;
                    self.sent += 1;
                    self.outbox.push(CrossShardEvent {
                        at: arrive,
                        src_shard: self.id,
                        src_seq,
                        dst_shard: dst,
                        msg: ttl - 1,
                    });
                }
            }
            events
        }

        fn take_outbox(&mut self) -> Vec<CrossShardEvent<u32>> {
            std::mem::take(&mut self.outbox)
        }

        fn deposit(&mut self, event: CrossShardEvent<u32>) {
            assert!(event.at >= self.queue.now(), "deposit in the past");
            self.queue.schedule(event.at, event.msg);
        }

        fn apply_action(&mut self, _action: &()) {
            self.halted = true;
        }
    }

    fn run_tokens(
        shards: usize,
        threaded: bool,
        ttl: u32,
        tokens: u32,
    ) -> Vec<Vec<(SimTime, u32)>> {
        let mut worlds: Vec<TokenShard> = (0..shards).map(|i| TokenShard::new(i, shards)).collect();
        for t in 0..tokens {
            // All tokens start on shard 0 at distinct instants.
            worlds[0]
                .queue
                .schedule(SimTime::from_micros(u64::from(t) + 1), ttl);
        }
        let mut kernel = ShardedKernel::new(worlds, HOP);
        kernel.set_threaded(threaded);
        let stats = kernel.run();
        assert!(stats.events > 0);
        kernel.into_shards().into_iter().map(|s| s.log).collect()
    }

    #[test]
    fn serial_and_threaded_runs_are_identical() {
        for shards in [2, 4] {
            let serial = run_tokens(shards, false, 13, 5);
            let threaded = run_tokens(shards, true, 13, 5);
            assert_eq!(serial, threaded, "{shards} shards");
        }
    }

    #[test]
    fn every_shard_log_is_time_ordered() {
        for log in run_tokens(4, true, 20, 7) {
            let times: Vec<SimTime> = log.iter().map(|e| e.0).collect();
            let mut sorted = times.clone();
            sorted.sort();
            assert_eq!(times, sorted, "conservative horizon was violated");
        }
    }

    #[test]
    fn total_hops_are_shard_count_invariant() {
        let total = |logs: Vec<Vec<(SimTime, u32)>>| -> usize { logs.iter().map(Vec::len).sum() };
        let one = total(run_tokens(1, false, 9, 3));
        let two = total(run_tokens(2, true, 9, 3));
        let four = total(run_tokens(4, true, 9, 3));
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn merge_order_is_canonical_for_simultaneous_arrivals() {
        // Shards 1 and 2 each send a token that arrives at shard 0 at
        // the same instant; the canonical order deposits shard 1's
        // message first, so it gets the earlier tie-break seq.
        struct Probe {
            id: usize,
            queue: crate::queue::EventQueue<u32>,
            outbox: Vec<CrossShardEvent<u32>>,
            deposits: Vec<(SimTime, usize, u64)>,
        }
        impl ShardWorld for Probe {
            type Msg = u32;
            type Action = ();
            fn shard_id(&self) -> usize {
                self.id
            }
            fn now(&self) -> SimTime {
                self.queue.now()
            }
            fn next_event_time(&self) -> Option<SimTime> {
                self.queue.peek_time()
            }
            fn run_before(&mut self, horizon: SimTime) -> u64 {
                let mut events = 0;
                while self.queue.peek_time().is_some_and(|t| t < horizon) {
                    let (at, _) = self.queue.pop().expect("peeked");
                    events += 1;
                    if self.id != 0 {
                        self.outbox.push(CrossShardEvent {
                            at: at + HOP,
                            src_shard: self.id,
                            src_seq: 0,
                            dst_shard: 0,
                            msg: 0,
                        });
                    }
                }
                events
            }
            fn take_outbox(&mut self) -> Vec<CrossShardEvent<u32>> {
                std::mem::take(&mut self.outbox)
            }
            fn deposit(&mut self, event: CrossShardEvent<u32>) {
                self.deposits
                    .push((event.at, event.src_shard, event.src_seq));
                self.queue.schedule(event.at, event.msg);
            }
            fn apply_action(&mut self, _action: &()) {}
        }
        let mk = |id: usize| Probe {
            id,
            queue: crate::queue::EventQueue::with_seq_stride(id as u64, 3),
            outbox: Vec::new(),
            deposits: Vec::new(),
        };
        let mut shards = vec![mk(0), mk(1), mk(2)];
        // Seed shard 2 *before* shard 1, at the same instant: canonical
        // order must still put shard 1 first.
        shards[2].queue.schedule(SimTime::from_micros(1), 0);
        shards[1].queue.schedule(SimTime::from_micros(1), 0);
        let mut kernel = ShardedKernel::new(shards, HOP);
        kernel.set_threaded(false);
        kernel.run();
        assert_eq!(
            kernel.shards()[0].deposits,
            vec![
                (SimTime::from_micros(101), 1, 0),
                (SimTime::from_micros(101), 2, 0),
            ]
        );
    }

    #[test]
    fn hook_fires_at_exact_instants_and_halts_tokens() {
        struct At {
            at: Option<SimTime>,
        }
        impl EpochHook<()> for At {
            fn next_instant(&self) -> Option<SimTime> {
                self.at
            }
            fn fire(&mut self, at: SimTime) -> Vec<()> {
                assert_eq!(Some(at), self.at.take());
                vec![()]
            }
        }
        let run = |threaded: bool| -> Vec<Vec<(SimTime, u32)>> {
            let mut worlds: Vec<TokenShard> = (0..2).map(|i| TokenShard::new(i, 2)).collect();
            worlds[0].queue.schedule(SimTime::from_micros(1), 50);
            let mut kernel = ShardedKernel::new(worlds, HOP);
            kernel.set_threaded(threaded);
            let mut hook = At {
                at: Some(SimTime::from_micros(450)),
            };
            let stats = kernel.run_with_hook(&mut hook);
            assert_eq!(stats.hook_firings, 1);
            kernel.into_shards().into_iter().map(|s| s.log).collect()
        };
        let serial = run(false);
        let threaded = run(true);
        assert_eq!(serial, threaded);
        // Hops land at 1, 101, 201, 301, 401; the hop sent at 401 is in
        // flight when the halt fires at 450, still arrives at 501 (and
        // is logged), but stops propagating there.
        let hops: usize = serial.iter().map(Vec::len).sum();
        assert_eq!(hops, 6, "five hops before the halt plus one in flight");
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let shards = vec![TokenShard::new(0, 1)];
        let _ = ShardedKernel::new(shards, SimDuration::ZERO);
    }
}
