//! Actors scheduled on one kernel.
//!
//! RM-ODP's engineering viewpoint gives each node a *nucleus* that owns
//! scheduling and communication. Before this crate, three drivers each
//! advanced virtual time on their own (the network simulator, the
//! workload loops, the chaos injector); here they become [`Actor`]s
//! registered on one [`Kernel`], which interleaves their due instants
//! with simulation progress in a single totally ordered schedule.
//!
//! Determinism rules:
//! * due actors fire in time order; equal times fire in registration
//!   order (stable, like the queue's FIFO tie-break);
//! * the world's clock never moves backward;
//! * when no actor is due but one still has work in flight, the kernel
//!   steps the world one event at a time, polling actors between steps.
//!
//! Profiling: every tick is accounted to its actor through the observe
//! bus — `kernel.actor.<name>.ticks` counts firings and
//! `kernel.actor.<name>.tick_advance_us` records how much virtual time
//! each tick consumed (an engine-driving tick that blocks on a call
//! consumes the call's latency). The kernel also samples
//! `kernel.queue_depth` (the world's event queue) and `kernel.due_lag_us`
//! (how far behind its requested instant an actor fired) on every
//! advance. Metric names are precomputed at [`Kernel::register`], so the
//! hot loop formats nothing.

use crate::time::SimTime;
use rmodp_observe::bus;

/// The substrate the kernel drives: anything with a virtual clock and an
/// event queue (the network simulator, or an engine wrapping one).
pub trait World {
    /// The current virtual time.
    fn now(&self) -> SimTime;

    /// Processes every queued event due at or before `at`, then idles
    /// the clock to `at` (never backward).
    fn advance_to(&mut self, at: SimTime);

    /// Drains the event queue to quiescence.
    fn run_until_idle(&mut self);

    /// Processes exactly one queued event; `false` if none remained.
    fn step(&mut self) -> bool;

    /// How many events are queued right now (0 if the world does not
    /// expose its queue). Sampled into the `kernel.queue_depth` gauge on
    /// every kernel advance.
    fn queue_len(&self) -> usize {
        0
    }
}

/// Assignment of a world's nodes to shards: node `i` belongs to shard
/// `owner[i]`. The map is built once, before any event runs, and never
/// changes mid-run — conservative synchronization (see
/// [`crate::shard`]) depends on the ownership relation being static.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    shards: usize,
    owner: Vec<usize>,
}

impl PartitionMap {
    /// Builds a map from an explicit owner-per-node table.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or any owner is out of range.
    pub fn new(shards: usize, owner: Vec<usize>) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(
            owner.iter().all(|&s| s < shards),
            "owner out of range for {shards} shard(s)"
        );
        Self { shards, owner }
    }

    /// Round-robin assignment: node `i` goes to shard `i % shards`.
    pub fn round_robin(nodes: usize, shards: usize) -> Self {
        Self::new(shards, (0..nodes).map(|i| i % shards).collect())
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The number of mapped nodes.
    pub fn nodes(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning `node`. Nodes beyond the mapped range (e.g. an
    /// external injector pseudo-node) fold onto shard 0 so every address
    /// has a deterministic owner.
    pub fn owner(&self, node: usize) -> usize {
        self.owner.get(node).copied().unwrap_or(0)
    }

    /// Whether two nodes live on the same shard (their messages need no
    /// cross-shard exchange).
    pub fn co_located(&self, a: usize, b: usize) -> bool {
        self.owner(a) == self.owner(b)
    }
}

/// A participant scheduled on the kernel.
pub trait Actor<W: World + ?Sized> {
    /// The next instant this actor wants control, if any. The kernel
    /// advances the world to that instant and calls [`Actor::tick`].
    fn next_due(&self, world: &W) -> Option<SimTime>;

    /// Performs the work due at `at`. The world's clock has already been
    /// advanced to `at` (or later, if it was already past).
    fn tick(&mut self, world: &mut W, at: SimTime);

    /// Whether the actor is waiting on in-flight work that only world
    /// progress can complete. While any actor is pending and none is
    /// due, the kernel single-steps the world and polls between steps.
    fn pending(&self, _world: &W) -> bool {
        false
    }

    /// Called after each single step taken on the actor's behalf (see
    /// [`Actor::pending`]); typically drains completions.
    fn poll(&mut self, _world: &mut W) {}

    /// A stable name for per-actor accounting
    /// (`kernel.actor.<name>.ticks` etc.). Actors sharing a name share
    /// the metric.
    fn name(&self) -> &'static str {
        "actor"
    }
}

/// A registered actor plus its precomputed metric names.
struct Slot<'a, W: World + ?Sized> {
    actor: &'a mut dyn Actor<W>,
    ticks_metric: String,
    advance_metric: String,
}

/// The one deterministic scheduler: interleaves registered actors' due
/// instants with world progress.
pub struct Kernel<'a, W: World> {
    actors: Vec<Slot<'a, W>>,
}

impl<W: World> Default for Kernel<'_, W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, W: World> Kernel<'a, W> {
    /// A kernel with no actors.
    pub fn new() -> Self {
        Kernel { actors: Vec::new() }
    }

    /// Registers an actor. Registration order breaks equal-time ties, so
    /// register higher-priority actors (e.g. fault injectors) first.
    /// Per-actor metric names are formatted once here, not per tick.
    pub fn register(&mut self, actor: &'a mut dyn Actor<W>) -> &mut Self {
        let name = actor.name();
        self.actors.push(Slot {
            actor,
            ticks_metric: format!("kernel.actor.{name}.ticks"),
            advance_metric: format!("kernel.actor.{name}.tick_advance_us"),
        });
        self
    }

    /// The earliest due instant across actors (ties resolve to the
    /// earliest-registered actor), optionally bounded by `limit`.
    fn earliest_due(&self, world: &W, limit: Option<SimTime>) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, slot) in self.actors.iter().enumerate() {
            if let Some(t) = slot.actor.next_due(world) {
                if limit.is_some_and(|l| t > l) {
                    continue;
                }
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        best
    }

    /// Advances the world to the due instant, samples the kernel gauges,
    /// fires the actor, and accounts the virtual time its tick consumed.
    fn fire(&mut self, world: &mut W, t: SimTime, i: usize) {
        let lag = world.now().as_micros().saturating_sub(t.as_micros());
        world.advance_to(t);
        bus::gauge_set("kernel.queue_depth", world.queue_len() as i64);
        bus::gauge_set("kernel.due_lag_us", lag as i64);
        let before = world.now().as_micros();
        let slot = &mut self.actors[i];
        slot.actor.tick(world, t);
        bus::counter_add(&slot.ticks_metric, 1);
        bus::observe(
            &slot.advance_metric,
            world.now().as_micros().saturating_sub(before),
        );
    }

    /// Advances the world to `target`, firing every actor due on the
    /// way, each at its exact instant. The world never runs past a
    /// pending due.
    pub fn advance_to(&mut self, world: &mut W, target: SimTime) {
        while let Some((t, i)) = self.earliest_due(world, Some(target)) {
            self.fire(world, t, i);
        }
        world.advance_to(target);
    }

    /// Runs the schedule to completion: fires all dues in time order;
    /// when none remain but an actor still has work in flight, steps the
    /// world one event at a time, polling actors between steps. Returns
    /// when no actor is due or pending (the world's own queue may still
    /// hold events — drain with [`World::run_until_idle`] if the run
    /// should end quiescent).
    pub fn run(&mut self, world: &mut W) {
        loop {
            if let Some((t, i)) = self.earliest_due(world, None) {
                self.fire(world, t, i);
                continue;
            }
            if self.actors.iter().any(|s| s.actor.pending(world)) {
                if !world.step() {
                    break;
                }
                for slot in self.actors.iter_mut() {
                    slot.actor.poll(world);
                }
            } else {
                break;
            }
        }
    }

    /// Fires every remaining due, then drains the world to quiescence.
    pub fn finish(&mut self, world: &mut W) {
        while let Some((t, i)) = self.earliest_due(world, None) {
            self.fire(world, t, i);
        }
        world.run_until_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::time::SimDuration;

    /// A minimal world: an event queue of `u32` markers; stepping
    /// records the marker.
    struct ToyWorld {
        queue: EventQueue<u32>,
        fired: Vec<(SimTime, u32)>,
    }

    impl ToyWorld {
        fn new() -> Self {
            ToyWorld {
                queue: EventQueue::new(),
                fired: Vec::new(),
            }
        }
    }

    impl World for ToyWorld {
        fn now(&self) -> SimTime {
            self.queue.now()
        }

        fn advance_to(&mut self, at: SimTime) {
            while self.queue.peek_time().is_some_and(|t| t <= at) {
                self.step();
            }
            self.queue.advance_to(at);
        }

        fn run_until_idle(&mut self) {
            while self.step() {}
        }

        fn step(&mut self) -> bool {
            match self.queue.pop() {
                Some((t, m)) => {
                    self.fired.push((t, m));
                    true
                }
                None => false,
            }
        }

        fn queue_len(&self) -> usize {
            self.queue.len()
        }
    }

    /// Ticks at fixed instants, recording `(instant, tag)`.
    struct Metronome {
        tag: u32,
        beats: Vec<SimTime>,
        next: usize,
        log: Vec<(SimTime, u32)>,
    }

    impl Metronome {
        fn at(tag: u32, beats: &[u64]) -> Self {
            Metronome {
                tag,
                beats: beats.iter().map(|&b| SimTime::from_micros(b)).collect(),
                next: 0,
                log: Vec::new(),
            }
        }
    }

    impl Actor<ToyWorld> for Metronome {
        fn next_due(&self, _world: &ToyWorld) -> Option<SimTime> {
            self.beats.get(self.next).copied()
        }

        fn tick(&mut self, world: &mut ToyWorld, at: SimTime) {
            self.next += 1;
            self.log.push((world.now(), self.tag));
            let _ = at;
        }

        fn name(&self) -> &'static str {
            "metronome"
        }
    }

    #[test]
    fn dues_fire_in_time_order_with_registration_ties() {
        let mut world = ToyWorld::new();
        let mut a = Metronome::at(1, &[10, 30]);
        let mut b = Metronome::at(2, &[10, 20]);
        let mut kernel = Kernel::new();
        kernel.register(&mut a).register(&mut b);
        kernel.run(&mut world);
        let mut merged: Vec<(SimTime, u32)> = a.log;
        merged.extend(b.log);
        merged.sort_by_key(|&(t, _)| t);
        // t=10 tie fires a (registered first) before b; then 20, 30.
        assert_eq!(
            merged,
            vec![
                (SimTime::from_micros(10), 1),
                (SimTime::from_micros(10), 2),
                (SimTime::from_micros(20), 2),
                (SimTime::from_micros(30), 1),
            ]
        );
    }

    #[test]
    fn advance_to_stops_at_target_and_fires_only_earlier_dues() {
        let mut world = ToyWorld::new();
        world.queue.schedule(SimTime::from_micros(5), 50);
        world.queue.schedule(SimTime::from_micros(50), 51);
        let mut a = Metronome::at(1, &[10, 40]);
        {
            let mut kernel = Kernel::new();
            kernel.register(&mut a);
            kernel.advance_to(&mut world, SimTime::from_micros(20));
        }
        assert_eq!(a.log, vec![(SimTime::from_micros(10), 1)]);
        assert_eq!(world.now(), SimTime::from_micros(20));
        // The world event at t=5 ran; the one at t=50 did not.
        assert_eq!(world.fired, vec![(SimTime::from_micros(5), 50)]);
        let mut kernel = Kernel::new();
        kernel.register(&mut a);
        kernel.advance_to(
            &mut world,
            SimTime::from_micros(20) + SimDuration::from_micros(30),
        );
        assert_eq!(a.log.len(), 2);
        assert_eq!(world.fired.len(), 2);
    }

    /// Pends until the world's queue drains, polling a counter.
    struct Waiter {
        polls: usize,
        outstanding: usize,
    }

    impl Actor<ToyWorld> for Waiter {
        fn next_due(&self, _world: &ToyWorld) -> Option<SimTime> {
            None
        }

        fn tick(&mut self, _world: &mut ToyWorld, _at: SimTime) {}

        fn pending(&self, _world: &ToyWorld) -> bool {
            self.outstanding > 0
        }

        fn poll(&mut self, world: &mut ToyWorld) {
            self.polls += 1;
            self.outstanding = world.queue.len();
        }
    }

    #[test]
    fn kernel_accounts_ticks_and_samples_gauges() {
        bus::reset();
        let mut world = ToyWorld::new();
        world.queue.schedule(SimTime::from_micros(5), 99);
        let mut a = Metronome::at(1, &[10, 30]);
        let mut kernel = Kernel::new();
        kernel.register(&mut a);
        kernel.run(&mut world);
        let m = bus::snapshot_metrics();
        assert_eq!(m.counter("kernel.actor.metronome.ticks"), 2);
        assert_eq!(
            m.histogram("kernel.actor.metronome.tick_advance_us")
                .map(|h| h.count()),
            Some(2),
            "each tick's virtual-time advance is recorded"
        );
        assert_eq!(m.gauge("kernel.queue_depth"), Some(0));
        assert_eq!(m.gauge("kernel.due_lag_us"), Some(0));
        bus::reset();
    }

    #[test]
    fn pending_actor_drives_single_steps_until_satisfied() {
        let mut world = ToyWorld::new();
        for i in 0..3 {
            world.queue.schedule(SimTime::from_micros(i * 10), i as u32);
        }
        let mut w = Waiter {
            polls: 0,
            outstanding: 3,
        };
        let mut kernel = Kernel::new();
        kernel.register(&mut w);
        kernel.run(&mut world);
        assert_eq!(world.fired.len(), 3);
        assert_eq!(w.polls, 3);
        assert_eq!(w.outstanding, 0);
    }
}
