//! Virtual time for the kernel.
//!
//! Time is measured in whole microseconds to keep arithmetic exact and the
//! event ordering total — floating-point time is a classic source of
//! non-determinism in simulators.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant of virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration elapsed since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// A duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// A duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float (for rates).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl From<Duration> for SimDuration {
    fn from(d: Duration) -> Self {
        SimDuration(d.as_micros().min(u128::from(u64::MAX)) as u64)
    }
}

impl From<SimDuration> for Duration {
    fn from(d: SimDuration) -> Self {
        Duration::from_micros(d.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(2));
        // `since` saturates rather than underflowing.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn std_duration_conversions() {
        let d: SimDuration = Duration::from_millis(5).into();
        assert_eq!(d, SimDuration::from_millis(5));
        let back: Duration = d.into();
        assert_eq!(back, Duration::from_millis(5));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
        assert_eq!(SimTime::from_micros(3).to_string(), "t=3us");
    }
}
