//! `rmodp-kernel` — the deterministic scheduling kernel.
//!
//! RM-ODP's engineering language places a single *nucleus* under every
//! node: the component that owns scheduling, timing, and communication
//! for everything above it. This crate is that nucleus for the whole
//! workspace:
//!
//! * [`time`] — exact microsecond virtual time ([`SimTime`],
//!   [`SimDuration`]);
//! * [`queue`] — the one totally ordered event queue, keyed by
//!   `(SimTime, seq)` with a stable FIFO tie-break, whose clock feeds
//!   the observe bus;
//! * [`rng`] — seeded randomness handles ([`KernelRng`]);
//! * [`actor`] — the [`World`]/[`Actor`]/[`Kernel`] traits that let the
//!   network simulator, workload loops, and fault injectors share one
//!   schedule instead of each advancing time on their own;
//! * [`payload`] — shared immutable byte buffers ([`Payload`]) that make
//!   the invocation hot path allocation-light (clone = share, slice =
//!   view, and deep copies are metered so benchmarks can assert there
//!   are none);
//! * [`shard`] — partitioned execution: N disjoint shards, each with its
//!   own queue/clock/RNG stream, synchronized by conservative lookahead
//!   and a deterministic cross-shard merge ([`ShardedKernel`]).

pub mod actor;
pub mod payload;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;

pub use actor::{Actor, Kernel, PartitionMap, World};
pub use payload::{Payload, PAYLOAD_ALLOCS, PAYLOAD_COPIES};
pub use queue::EventQueue;
pub use rng::KernelRng;
pub use shard::{CrossShardEvent, EpochHook, ShardWorld, ShardedKernel, SyncStats};
pub use time::{SimDuration, SimTime};
