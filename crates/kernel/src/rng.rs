//! Seeded randomness handles.
//!
//! Every stochastic decision in the workspace draws from a [`KernelRng`]
//! seeded from the run's seed (possibly salted so independent concerns
//! get independent streams without consuming each other's draws). The
//! wrapper derefs to the underlying [`StdRng`], so existing `Rng` call
//! sites keep their exact draw order — and therefore their bit-identical
//! streams — across the kernel refactor.

use std::ops::{Deref, DerefMut};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a seed and a salt into a well-distributed 64-bit value
/// (splitmix64 finalizer). Unlike a [`KernelRng`] stream, the result
/// depends only on the two inputs — never on how many draws anyone else
/// has made — so per-entity decisions derived this way are invariant
/// under any re-partitioning of the entities across shards.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic RNG handle owned by the kernel.
#[derive(Debug, Clone)]
pub struct KernelRng(StdRng);

impl KernelRng {
    /// A stream seeded directly from `seed`.
    pub fn seeded(seed: u64) -> Self {
        KernelRng(StdRng::seed_from_u64(seed))
    }

    /// An independent stream derived from `seed` by XOR-ing a salt, so
    /// two concerns sharing one run seed never consume each other's
    /// draws.
    pub fn salted(seed: u64, salt: u64) -> Self {
        KernelRng(StdRng::seed_from_u64(seed ^ salt))
    }
}

impl Deref for KernelRng {
    type Target = StdRng;

    fn deref(&self) -> &StdRng {
        &self.0
    }
}

impl DerefMut for KernelRng {
    fn deref_mut(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_matches_raw_stdrng() {
        let mut a = KernelRng::seeded(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn mix_is_pure_and_spreads_inputs() {
        assert_eq!(mix(7, 1), mix(7, 1));
        assert_ne!(mix(7, 1), mix(7, 2));
        assert_ne!(mix(7, 1), mix(8, 1));
        // Consecutive salts land far apart (avalanche), so using dense
        // entity ids as salts still gives well-spread draws.
        let a = mix(7, 100);
        let b = mix(7, 101);
        assert!((a ^ b).count_ones() > 16, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn salted_matches_xored_seed() {
        let mut a = KernelRng::salted(7, 0xdead_beef);
        let mut b = StdRng::seed_from_u64(7 ^ 0xdead_beef);
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }
}
