//! Property tests for the kernel's ordering guarantees: the schedule is
//! a total order, equal-timestamp entries fire in submission order, and
//! the same submissions always replay the same firing sequence.

use proptest::prelude::*;

use rmodp_kernel::queue::EventQueue;
use rmodp_kernel::time::SimTime;

/// Drains a queue built from `entries` (each `(at_us, id)`), returning
/// the firing order as `(at_us, id)` pairs.
fn firing_order(entries: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut q = EventQueue::new();
    for &(at, id) in entries {
        q.schedule(SimTime::from_micros(at), id);
    }
    let mut out = Vec::with_capacity(entries.len());
    while let Some((t, id)) = q.pop() {
        out.push((t.as_micros(), id));
    }
    out
}

proptest! {
    /// Firing order is totally ordered by time: timestamps never
    /// decrease, and every submission fires exactly once.
    #[test]
    fn ordering_is_total(entries in proptest::collection::vec((0u64..10_000, 0u32..1000), 0..200)) {
        let fired = firing_order(&entries);
        prop_assert_eq!(fired.len(), entries.len());
        prop_assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut expected: Vec<_> = entries.iter().map(|&(at, id)| (at, id)).collect();
        expected.sort_by_key(|&(at, _)| at);
        let mut got = fired.clone();
        got.sort_by_key(|&(at, _)| at);
        // Same multiset of (time, id): nothing lost, nothing invented.
        let mut a = expected;
        let mut b = got;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Equal-timestamp entries fire in submission order (stable FIFO
    /// tie-break).
    #[test]
    fn equal_timestamps_fire_in_submission_order(
        times in proptest::collection::vec(0u64..50, 1..200)
    ) {
        // Ids are submission indices, so within any timestamp class the
        // fired ids must be increasing.
        let entries: Vec<(u64, u32)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        let fired = firing_order(&entries);
        for w in fired.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke out of submission order: {w:?}");
            }
        }
    }

    /// The same submissions always produce the identical firing
    /// sequence — replay is deterministic.
    #[test]
    fn same_submissions_same_sequence(
        entries in proptest::collection::vec((0u64..10_000, 0u32..1000), 0..200)
    ) {
        prop_assert_eq!(firing_order(&entries), firing_order(&entries));
    }
}
