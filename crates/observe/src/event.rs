//! The structured event model: one cross-layer taxonomy of everything
//! the RM-ODP stack does that is worth seeing.

use std::fmt;

/// Which part of the stack emitted an event.
///
/// The layers mirror the workspace's crate structure, which in turn
/// mirrors the model: the network simulator at the bottom, the
/// engineering viewpoint's channel machinery above it, the transparency
/// functions, the ODP functions (trading, transactions), and finally the
/// application itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The discrete-event network simulator (`rmodp-netsim`).
    Netsim,
    /// Nucleus, capsules, channels (`rmodp-engineering`).
    Engineering,
    /// Distribution transparencies (`rmodp-transparency`).
    Transparency,
    /// Atomic commitment (`rmodp-transactions`).
    Transactions,
    /// The trading function (`rmodp-trader`).
    Trader,
    /// Common ODP functions (`rmodp-functions`).
    Functions,
    /// The durable object store (`rmodp-store`).
    Store,
    /// Code driving the stack: examples, tests, benches.
    Application,
}

impl Layer {
    /// The stable lower-case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Netsim => "netsim",
            Layer::Engineering => "engineering",
            Layer::Transparency => "transparency",
            Layer::Transactions => "transactions",
            Layer::Trader => "trader",
            Layer::Functions => "functions",
            Layer::Store => "store",
            Layer::Application => "application",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened. One flat taxonomy across every layer, so a single
/// trace can show a trader lookup causing a channel hop causing a
/// message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    // ---- netsim ----
    /// A message entered the network.
    Send,
    /// A message reached its destination process.
    Deliver,
    /// A message was dropped (loss, partition, crash, unroutable).
    Drop,
    /// A timer fired.
    TimerFired,
    /// A free-form annotation from a simulated process.
    Note,
    // ---- engineering ----
    /// An envelope traversed one channel component (stub/binder/...).
    ChannelHop,
    /// A value was re-encoded between transfer syntaxes.
    Marshal,
    /// An operation invocation began.
    CallStart,
    /// An operation invocation completed (ok or error).
    CallEnd,
    /// A timed-out attempt was retried.
    Retry,
    /// A cluster checkpoint was taken.
    Checkpoint,
    /// A cluster was deactivated.
    Deactivate,
    /// A cluster was reactivated from a checkpoint.
    Reactivate,
    /// A cluster migration began.
    MigrateStart,
    /// A cluster migration completed.
    MigrateEnd,
    /// A client was redirected to a relocated interface.
    Relocate,
    /// A channel's circuit breaker changed state (closed/open/half-open).
    BreakerTransition,
    /// A request entered a node's admission queue (start of queue wait).
    AdmissionEnqueue,
    /// A queued request left the admission queue for service (end of
    /// queue wait, start of service).
    AdmissionDispatch,
    // ---- transparency ----
    /// A write was applied to replicas.
    ReplicaUpdate,
    /// A read was served by a replica.
    ReplicaRead,
    /// A replica voted / was reconciled in a read-all.
    ReplicaVote,
    /// Failure recovery began.
    RecoveryStart,
    /// Failure recovery completed.
    RecoveryEnd,
    /// A cluster state was persisted / restored by persistence fns.
    Persist,
    // ---- trader ----
    /// A service offer was exported to a trader.
    TraderExport,
    /// An importer queried a trader.
    TraderLookup,
    /// The trader compiled a constraint into an index-backed query plan
    /// (detail carries the plan summary).
    TraderPlan,
    /// A query was forwarded across a federation link.
    FederationHop,
    // ---- transactions ----
    /// A coordinator asked a participant to prepare.
    TxPrepare,
    /// A participant voted.
    TxVote,
    /// A transaction committed.
    TxCommit,
    /// A transaction aborted.
    TxAbort,
    // ---- group robustness (detector / views / quorum) ----
    /// A failure-detector heartbeat probe completed (detail says
    /// `ack` or `miss`).
    Heartbeat,
    /// The failure detector started suspecting a group member.
    Suspect,
    /// A previously suspected member answered again and was restored.
    Restore,
    /// A new epoch-numbered group view was installed by majority
    /// acknowledgement (detail carries group/epoch/leader/watermark).
    ViewChange,
    /// An update reached its majority quorum and committed (detail
    /// carries group/epoch/seq).
    QuorumCommit,
    /// A stale-epoch write was rejected by a fencing replica.
    FencedWrite,
    // ---- chaos / fault injection ----
    /// A scheduled fault was injected (crash, partition, loss burst…).
    FaultInject,
    /// A scheduled fault was cleared (restart, heal, window end).
    FaultClear,
    // ---- durable store ----
    /// A batch of writes was made stable in the write-ahead log
    /// (`store.wal` span).
    WalCommit,
    /// A snapshot of the full committed state was written
    /// (`store.snapshot` span).
    StoreSnapshot,
    /// The log was compacted behind a snapshot (`store.compaction` span).
    StoreCompaction,
    /// A store recovered its state from snapshot + log replay.
    StoreRecovery,
}

impl EventKind {
    /// The stable snake_case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Deliver => "deliver",
            EventKind::Drop => "drop",
            EventKind::TimerFired => "timer_fired",
            EventKind::Note => "note",
            EventKind::ChannelHop => "channel_hop",
            EventKind::Marshal => "marshal",
            EventKind::CallStart => "call_start",
            EventKind::CallEnd => "call_end",
            EventKind::Retry => "retry",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Deactivate => "deactivate",
            EventKind::Reactivate => "reactivate",
            EventKind::MigrateStart => "migrate_start",
            EventKind::MigrateEnd => "migrate_end",
            EventKind::Relocate => "relocate",
            EventKind::BreakerTransition => "breaker_transition",
            EventKind::AdmissionEnqueue => "admission_enqueue",
            EventKind::AdmissionDispatch => "admission_dispatch",
            EventKind::ReplicaUpdate => "replica_update",
            EventKind::ReplicaRead => "replica_read",
            EventKind::ReplicaVote => "replica_vote",
            EventKind::RecoveryStart => "recovery_start",
            EventKind::RecoveryEnd => "recovery_end",
            EventKind::Persist => "persist",
            EventKind::TraderExport => "trader_export",
            EventKind::TraderLookup => "trader_lookup",
            EventKind::TraderPlan => "trader_plan",
            EventKind::FederationHop => "federation_hop",
            EventKind::TxPrepare => "tx_prepare",
            EventKind::TxVote => "tx_vote",
            EventKind::TxCommit => "tx_commit",
            EventKind::TxAbort => "tx_abort",
            EventKind::Heartbeat => "heartbeat",
            EventKind::Suspect => "suspect",
            EventKind::Restore => "restore",
            EventKind::ViewChange => "view_change",
            EventKind::QuorumCommit => "quorum_commit",
            EventKind::FencedWrite => "fenced_write",
            EventKind::FaultInject => "fault_inject",
            EventKind::FaultClear => "fault_clear",
            EventKind::WalCommit => "store.wal",
            EventKind::StoreSnapshot => "store.snapshot",
            EventKind::StoreCompaction => "store.compaction",
            EventKind::StoreRecovery => "store.recovery",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A causal span identifier. Spans are allocated by the bus; an event's
/// `span` ties it to one causal activity (one message in flight, one
/// invocation, one migration), and `parent` links that activity to the
/// one that started it.
pub type SpanId = u64;

/// One structured trace event.
///
/// Coordinates are plain integers (node index, port, channel id, capsule
/// id) rather than the emitting crate's id types, so the bus depends on
/// nothing and every crate can emit without dependency cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global emission order (dense, starting at 0).
    pub seq: u64,
    /// Virtual simulation time, microseconds.
    pub t_us: u64,
    /// Emitting layer.
    pub layer: Layer,
    /// What happened.
    pub kind: EventKind,
    /// Causal span this event belongs to, if any.
    pub span: Option<SpanId>,
    /// Span that caused this span to exist, if any.
    pub parent: Option<SpanId>,
    /// Node index, if the event is located at a node.
    pub node: Option<u64>,
    /// Port on the node, if meaningful.
    pub port: Option<u64>,
    /// Channel id, if the event belongs to a channel.
    pub channel: Option<u64>,
    /// Capsule id, if the event belongs to a capsule.
    pub capsule: Option<u64>,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} t={}us [{}] {}",
            self.seq, self.t_us, self.layer, self.kind
        )?;
        if let Some(s) = self.span {
            write!(f, " span={s}")?;
        }
        if let Some(p) = self.parent {
            write!(f, " parent={p}")?;
        }
        if let Some(n) = self.node {
            write!(f, " node={n}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " {}", self.detail)?;
        }
        Ok(())
    }
}

/// Builder for an [`Event`]; all coordinates optional.
#[derive(Debug, Clone)]
pub struct EventBuilder {
    pub(crate) layer: Layer,
    pub(crate) kind: EventKind,
    pub(crate) span: Option<SpanId>,
    pub(crate) parent: Option<SpanId>,
    pub(crate) node: Option<u64>,
    pub(crate) port: Option<u64>,
    pub(crate) channel: Option<u64>,
    pub(crate) capsule: Option<u64>,
    pub(crate) detail: String,
}

impl EventBuilder {
    /// Starts an event of the given layer and kind.
    pub fn new(layer: Layer, kind: EventKind) -> Self {
        Self {
            layer,
            kind,
            span: None,
            parent: None,
            node: None,
            port: None,
            channel: None,
            capsule: None,
            detail: String::new(),
        }
    }

    /// Attaches the causal span.
    pub fn span(mut self, span: SpanId) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches the parent span.
    pub fn parent(mut self, parent: SpanId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Attaches the node coordinate.
    pub fn node(mut self, node: u64) -> Self {
        self.node = Some(node);
        self
    }

    /// Attaches the port coordinate.
    pub fn port(mut self, port: u64) -> Self {
        self.port = Some(port);
        self
    }

    /// Attaches the channel coordinate.
    pub fn channel(mut self, channel: u64) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Attaches the capsule coordinate.
    pub fn capsule(mut self, capsule: u64) -> Self {
        self.capsule = Some(capsule);
        self
    }

    /// Attaches the bus's current context span as this event's span
    /// (no-op if a span is already set or no context is active). Lets
    /// mid-activity events — a checkpoint inside a migration, a vote
    /// inside a transaction — land on the enclosing causal span.
    pub fn in_context(mut self) -> Self {
        if self.span.is_none() {
            self.span = crate::bus::current_context();
        }
        self
    }

    /// Attaches the bus's current context span as this event's *parent*
    /// (no-op if a parent is already set or no context is active).
    pub fn parent_from_context(mut self) -> Self {
        if self.parent.is_none() {
            self.parent = crate::bus::current_context();
        }
        self
    }

    /// Attaches free-form detail text.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Records the event on the thread's bus. Returns the sequence
    /// number, or `None` if the bus is disabled.
    pub fn emit(self) -> Option<u64> {
        crate::bus::record(self)
    }
}
