//! The observability layer as a correctness oracle.
//!
//! A trace is not just for reading: it encodes invariants the stack must
//! uphold. [`verify_causality`] checks them and is run by the property
//! tests over every scenario's trace.

use crate::event::{Event, EventKind};
use std::collections::{BTreeMap, BTreeSet};

/// Violations found by [`verify_causality`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalityViolation {
    /// A `Deliver` event whose span has no earlier `Send` event.
    DeliverWithoutSend {
        /// Sequence number of the offending deliver.
        seq: u64,
    },
    /// A `Deliver` that happened at an earlier sim time than its `Send`.
    DeliverBeforeSend {
        /// Sequence number of the offending deliver.
        seq: u64,
    },
    /// The span parent graph contains a cycle through this span.
    SpanCycle {
        /// A span on the cycle.
        span: u64,
    },
    /// Events are not in strictly increasing `seq` order, or sim time
    /// moves backwards between consecutive events.
    DisorderedStream {
        /// Sequence number where order breaks.
        seq: u64,
    },
}

impl std::fmt::Display for CausalityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CausalityViolation::DeliverWithoutSend { seq } => {
                write!(
                    f,
                    "deliver #{seq} has no causally-preceding send in its span"
                )
            }
            CausalityViolation::DeliverBeforeSend { seq } => {
                write!(f, "deliver #{seq} precedes its send in sim time")
            }
            CausalityViolation::SpanCycle { span } => {
                write!(f, "span {span} participates in a parent cycle")
            }
            CausalityViolation::DisorderedStream { seq } => {
                write!(f, "event stream loses order at #{seq}")
            }
        }
    }
}

/// Checks the core causal invariants of a trace:
///
/// 1. the stream is ordered — `seq` strictly increases and `t_us` never
///    decreases;
/// 2. every `Deliver` has a causally-preceding `Send` in the same span,
///    at an equal or earlier sim time;
/// 3. the span parent graph is acyclic.
///
/// Returns every violation found (empty = trace is causally sound).
pub fn verify_causality(events: &[Event]) -> Vec<CausalityViolation> {
    let mut violations = Vec::new();

    // 1. Stream order.
    for pair in events.windows(2) {
        if pair[1].seq <= pair[0].seq || pair[1].t_us < pair[0].t_us {
            violations.push(CausalityViolation::DisorderedStream { seq: pair[1].seq });
        }
    }

    // 2. Every Deliver has a prior Send in its span.
    let mut send_time_by_span: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::Send => {
                if let Some(span) = e.span {
                    send_time_by_span.entry(span).or_insert(e.t_us);
                }
            }
            EventKind::Deliver => match e.span.and_then(|s| send_time_by_span.get(&s)) {
                None => violations.push(CausalityViolation::DeliverWithoutSend { seq: e.seq }),
                Some(&sent_at) if e.t_us < sent_at => {
                    violations.push(CausalityViolation::DeliverBeforeSend { seq: e.seq })
                }
                Some(_) => {}
            },
            _ => {}
        }
    }

    // 3. Acyclic span parent graph.
    let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        if let (Some(span), Some(parent)) = (e.span, e.parent) {
            parent_of.entry(span).or_insert(parent);
        }
    }
    let mut cleared: BTreeSet<u64> = BTreeSet::new();
    for &start in parent_of.keys() {
        if cleared.contains(&start) {
            continue;
        }
        let mut path: BTreeSet<u64> = BTreeSet::new();
        let mut cur = start;
        loop {
            if !path.insert(cur) {
                violations.push(CausalityViolation::SpanCycle { span: cur });
                break;
            }
            match parent_of.get(&cur) {
                Some(&p) if !cleared.contains(&p) => cur = p,
                _ => break,
            }
        }
        cleared.extend(path);
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, Layer};

    fn ev(seq: u64, t_us: u64, kind: EventKind, span: Option<u64>, parent: Option<u64>) -> Event {
        Event {
            seq,
            t_us,
            layer: Layer::Netsim,
            kind,
            span,
            parent,
            node: None,
            port: None,
            channel: None,
            capsule: None,
            detail: String::new(),
        }
    }

    #[test]
    fn sound_trace_passes() {
        let evs = vec![
            ev(0, 0, EventKind::Send, Some(1), None),
            ev(1, 5, EventKind::Deliver, Some(1), None),
            ev(2, 5, EventKind::Send, Some(2), Some(1)),
            ev(3, 9, EventKind::Deliver, Some(2), Some(1)),
        ];
        assert!(verify_causality(&evs).is_empty());
    }

    #[test]
    fn orphan_deliver_is_flagged() {
        let evs = vec![ev(0, 3, EventKind::Deliver, Some(7), None)];
        assert_eq!(
            verify_causality(&evs),
            vec![CausalityViolation::DeliverWithoutSend { seq: 0 }]
        );
    }

    #[test]
    fn time_travel_is_flagged() {
        let evs = vec![
            ev(0, 9, EventKind::Send, Some(1), None),
            ev(1, 4, EventKind::Deliver, Some(1), None),
        ];
        let v = verify_causality(&evs);
        assert!(v.contains(&CausalityViolation::DisorderedStream { seq: 1 }));
        assert!(v.contains(&CausalityViolation::DeliverBeforeSend { seq: 1 }));
    }

    #[test]
    fn span_cycle_is_flagged() {
        let evs = vec![
            ev(0, 0, EventKind::Note, Some(1), Some(2)),
            ev(1, 0, EventKind::Note, Some(2), Some(1)),
        ];
        let v = verify_causality(&evs);
        assert!(matches!(v[0], CausalityViolation::SpanCycle { .. }));
    }
}
