//! The metrics registry: counters, gauges, and sim-time histograms keyed
//! by hierarchical dot-separated names (`netsim.delivery_us`,
//! `engineering.calls`, `twopc.commits`).
//!
//! Everything is deterministic. Histograms are log-bucketed rather than
//! raw-sample vectors: memory is O(buckets touched), not O(samples), so
//! a million-invocation run costs the same as a hundred-invocation run.
//! `count`, `sum`, `min`, and `max` stay exact; percentiles are resolved
//! to a bucket's upper bound (clamped to the observed min/max), which
//! bounds the relative error at one sub-bucket width (< 1/16 ≈ 6%).
//! Values below 128 get their own bucket, so small distributions — and
//! every unit-test-sized histogram — report exact percentiles.

use std::collections::BTreeMap;

/// Number of identity buckets: values `< LINEAR_CUTOFF` are their own
/// bucket and percentiles over them are exact.
const LINEAR_CUTOFF: u64 = 128;
/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two octave above the linear range.
const SUBS: u64 = 1 << SUB_BITS;
/// Exponent of the first octave above the linear range (2^7 = 128).
const FIRST_EXP: u32 = 7;

/// Maps a sample to its bucket index.
fn bucket_index(v: u64) -> u32 {
    if v < LINEAR_CUTOFF {
        return v as u32;
    }
    let e = 63 - v.leading_zeros(); // >= FIRST_EXP
    let sub = ((v >> (e - SUB_BITS)) & (SUBS - 1)) as u32;
    LINEAR_CUTOFF as u32 + (e - FIRST_EXP) * SUBS as u32 + sub
}

/// The largest value contained in a bucket.
fn bucket_upper(idx: u32) -> u64 {
    if (idx as u64) < LINEAR_CUTOFF {
        return idx as u64;
    }
    let i = idx - LINEAR_CUTOFF as u32;
    let e = i / SUBS as u32 + FIRST_EXP;
    let sub = (i % SUBS as u32) as u64;
    // Bucket holds [ (SUBS+sub) << (e-SUB_BITS), ((SUBS+sub+1) << (e-SUB_BITS)) - 1 ].
    ((SUBS + sub + 1) << (e - SUB_BITS)).wrapping_sub(1)
}

/// A latency/size distribution over `u64` samples (typically sim-time
/// microseconds), stored as sparse log buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    /// Number of samples (exact).
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all samples (exact; 0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The smallest sample (exact; 0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The largest sample (exact; 0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `p`-th percentile (nearest-rank over buckets),
    /// `0.0 < p <= 100.0`. Returns 0 for an empty histogram. Monotone in
    /// `p` by construction: it walks the same cumulative bucket counts.
    /// The answer is the containing bucket's upper bound clamped to
    /// `[min, max]`, so constant distributions and values `< 128` are
    /// exact and the relative error is otherwise < 1/16.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (&idx, &n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: (p50, p95, p99).
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
        )
    }

    /// Number of distinct buckets currently occupied — the histogram's
    /// memory footprint is proportional to this, never to [`count`].
    ///
    /// [`count`]: Self::count
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Occupied buckets as `(upper_bound_inclusive, count)` pairs in
    /// ascending value order — the raw material for external renderings.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&idx, &n)| (bucket_upper(idx), n))
    }
}

/// The registry: hierarchically-named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to a counter, creating it at 0 first if absent.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(v);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Renders the registry as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (us):\n");
            out.push_str(&format!(
                "  {:<44} {:>7} {:>9} {:>7} {:>7} {:>7}\n",
                "name", "count", "mean", "p50", "p95", "p99"
            ));
            for (name, h) in &self.histograms {
                let (p50, p95, p99) = h.quantiles();
                out.push_str(&format!(
                    "  {:<44} {:>7} {:>9.1} {:>7} {:>7} {:>7}\n",
                    name,
                    h.count(),
                    h.mean(),
                    p50,
                    p95,
                    p99
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for v in [5u64, 1, 9, 7, 3, 3, 8, 2, 6, 4] {
            h.observe(v);
        }
        let (p50, p95, p99) = h.quantiles();
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        assert_eq!(p99, 9);
        assert_eq!(h.percentile(50.0), p50);
        assert_eq!(h.percentile(100.0), 9);
    }

    #[test]
    fn small_values_are_exact() {
        // Values below the linear cutoff land in identity buckets, so
        // nearest-rank percentiles match a raw-sample implementation.
        let mut h = Histogram::default();
        for v in [5u64, 1, 9, 7, 3, 3, 8, 2, 6, 4] {
            h.observe(v);
        }
        assert_eq!(h.percentile(50.0), 4);
        assert_eq!(h.percentile(10.0), 1);
        assert_eq!(h.percentile(90.0), 8);
    }

    #[test]
    fn constant_distribution_is_exact_at_any_scale() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.observe(1_000_000);
        }
        assert_eq!(h.quantiles(), (1_000_000, 1_000_000, 1_000_000));
        assert_eq!(h.mean(), 1_000_000.0);
    }

    #[test]
    fn large_values_have_bounded_relative_error() {
        let mut h = Histogram::default();
        for v in (0..10_000u64).map(|i| 1_000 + i * 37) {
            h.observe(v);
        }
        for p in [10.0, 50.0, 90.0, 95.0, 99.0] {
            let approx = h.percentile(p);
            // Exact nearest-rank over the same arithmetic sequence.
            let rank = ((p / 100.0) * 10_000f64).ceil() as u64;
            let exact = 1_000 + (rank - 1) * 37;
            let err = approx.abs_diff(exact) as f64 / exact as f64;
            assert!(err < 1.0 / 16.0, "p{p}: approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn memory_is_bounded_by_buckets_not_samples() {
        let mut h = Histogram::default();
        for v in 0..100_000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100_000);
        // 128 identity buckets + 16 per octave for ~10 octaves.
        assert!(h.bucket_count() < 320, "got {}", h.bucket_count());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99_999);
        let total: u64 = h.buckets().map(|(_, n)| n).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in (0..64)
            .map(|e| 1u64 << e)
            .chain([0, 1, 127, 128, 129, 1000, 123_456_789])
        {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx as u64 >= LINEAR_CUTOFF {
                // Lower neighbour's upper bound is below v.
                assert!(bucket_upper(idx - 1) < v, "bucket {idx} too wide for {v}");
            }
        }
    }

    #[test]
    fn registry_round_trip() {
        let mut r = Registry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", -7);
        r.observe("h", 10);
        r.observe("h", 20);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.gauge("g"), Some(-7));
        assert_eq!(r.histogram("h").unwrap().count(), 2);
        let rendered = r.render();
        assert!(rendered.contains("a.b"));
        assert!(rendered.contains("p95"));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.quantiles(), (0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }
}
