//! The metrics registry: counters, gauges, and sim-time histograms keyed
//! by hierarchical dot-separated names (`netsim.delivery_us`,
//! `engineering.calls`, `twopc.commits`).
//!
//! Everything is deterministic: histograms store raw samples and compute
//! percentiles by sorting, so the same run yields byte-identical
//! summaries.

use std::collections::BTreeMap;

/// A latency/size distribution over `u64` samples (typically sim-time
/// microseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.samples.iter().map(|&v| v as u128).sum()
    }

    /// Mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.samples.len() as f64
        }
    }

    /// The smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// The largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// The `p`-th percentile (nearest-rank), `0.0 < p <= 100.0`.
    /// Returns 0 for an empty histogram. Monotone in `p` by
    /// construction: it indexes into the same sorted sample vector.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        sorted[rank.clamp(1, n) - 1]
    }

    /// Convenience: (p50, p95, p99).
    pub fn quantiles(&self) -> (u64, u64, u64) {
        // One sort for all three.
        if self.samples.is_empty() {
            return (0, 0, 0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let at = |p: f64| {
            let rank = ((p / 100.0) * n as f64).ceil() as usize;
            sorted[rank.clamp(1, n) - 1]
        };
        (at(50.0), at(95.0), at(99.0))
    }
}

/// The registry: hierarchically-named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to a counter, creating it at 0 first if absent.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(v);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Renders the registry as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (us):\n");
            out.push_str(&format!(
                "  {:<44} {:>7} {:>9} {:>7} {:>7} {:>7}\n",
                "name", "count", "mean", "p50", "p95", "p99"
            ));
            for (name, h) in &self.histograms {
                let (p50, p95, p99) = h.quantiles();
                out.push_str(&format!(
                    "  {:<44} {:>7} {:>9.1} {:>7} {:>7} {:>7}\n",
                    name,
                    h.count(),
                    h.mean(),
                    p50,
                    p95,
                    p99
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for v in [5u64, 1, 9, 7, 3, 3, 8, 2, 6, 4] {
            h.observe(v);
        }
        let (p50, p95, p99) = h.quantiles();
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        assert_eq!(p99, 9);
        assert_eq!(h.percentile(50.0), p50);
        assert_eq!(h.percentile(100.0), 9);
    }

    #[test]
    fn registry_round_trip() {
        let mut r = Registry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", -7);
        r.observe("h", 10);
        r.observe("h", 20);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.gauge("g"), Some(-7));
        assert_eq!(r.histogram("h").unwrap().count(), 2);
        let rendered = r.render();
        assert!(rendered.contains("a.b"));
        assert!(rendered.contains("p95"));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.quantiles(), (0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }
}
