//! Exporters: deterministic JSONL trace dump, per-node / per-channel
//! summary tables, and a causal timeline report.
//!
//! JSON is written by hand with a fixed field order and no whitespace,
//! so the same event stream always renders to the same bytes.

use crate::event::{Event, EventKind, Layer};
use crate::metrics::Registry;
use std::collections::BTreeMap;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a single JSON object (no trailing newline).
/// Field order is fixed; absent coordinates are omitted.
pub fn event_to_json(e: &Event) -> String {
    let mut out = String::with_capacity(96 + e.detail.len());
    out.push_str(&format!(
        "{{\"seq\":{},\"t_us\":{},\"layer\":\"{}\",\"kind\":\"{}\"",
        e.seq,
        e.t_us,
        e.layer.name(),
        e.kind.name()
    ));
    if let Some(v) = e.span {
        out.push_str(&format!(",\"span\":{v}"));
    }
    if let Some(v) = e.parent {
        out.push_str(&format!(",\"parent\":{v}"));
    }
    if let Some(v) = e.node {
        out.push_str(&format!(",\"node\":{v}"));
    }
    if let Some(v) = e.port {
        out.push_str(&format!(",\"port\":{v}"));
    }
    if let Some(v) = e.channel {
        out.push_str(&format!(",\"channel\":{v}"));
    }
    if let Some(v) = e.capsule {
        out.push_str(&format!(",\"capsule\":{v}"));
    }
    if !e.detail.is_empty() {
        out.push_str(",\"detail\":\"");
        escape_into(&mut out, &e.detail);
        out.push('"');
    }
    out.push('}');
    out
}

/// Renders the whole stream as JSON Lines (one object per line,
/// trailing newline after each). Byte-identical for identical streams.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

#[derive(Debug, Default, Clone, Copy)]
struct NodeRow {
    sends: u64,
    delivers: u64,
    drops: u64,
    timers: u64,
    other: u64,
}

/// Renders a per-node summary table (message traffic and all other
/// events located at each node), followed by a per-channel hop count
/// table and per-layer event-kind totals. Unbounded — at federation
/// scale prefer [`summary_table_capped`].
pub fn summary_table(events: &[Event]) -> String {
    summary_table_capped(events, usize::MAX)
}

/// [`summary_table`] with each table truncated to `max_rows` rows; a
/// `(+N more)` marker makes the truncation explicit.
pub fn summary_table_capped(events: &[Event], max_rows: usize) -> String {
    let mut nodes: BTreeMap<u64, NodeRow> = BTreeMap::new();
    let mut channels: BTreeMap<u64, u64> = BTreeMap::new();
    let mut kinds: BTreeMap<(Layer, EventKind), u64> = BTreeMap::new();

    for e in events {
        *kinds.entry((e.layer, e.kind)).or_insert(0) += 1;
        if let Some(node) = e.node {
            let row = nodes.entry(node).or_default();
            match e.kind {
                EventKind::Send => row.sends += 1,
                EventKind::Deliver => row.delivers += 1,
                EventKind::Drop => row.drops += 1,
                EventKind::TimerFired => row.timers += 1,
                _ => row.other += 1,
            }
        }
        if let Some(ch) = e.channel {
            *channels.entry(ch).or_insert(0) += 1;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("events: {}\n", events.len()));
    let more = |out: &mut String, total: usize| {
        if total > max_rows {
            out.push_str(&format!("  (+{} more)\n", total - max_rows));
        }
    };
    if !nodes.is_empty() {
        out.push_str(&format!(
            "{:>6} {:>7} {:>9} {:>6} {:>7} {:>7}\n",
            "node", "sends", "delivers", "drops", "timers", "other"
        ));
        for (node, r) in nodes.iter().take(max_rows) {
            out.push_str(&format!(
                "{:>6} {:>7} {:>9} {:>6} {:>7} {:>7}\n",
                node, r.sends, r.delivers, r.drops, r.timers, r.other
            ));
        }
        more(&mut out, nodes.len());
    }
    if !channels.is_empty() {
        out.push_str(&format!("{:>8} {:>7}\n", "channel", "events"));
        for (ch, n) in channels.iter().take(max_rows) {
            out.push_str(&format!("{ch:>8} {n:>7}\n"));
        }
        more(&mut out, channels.len());
    }
    if !kinds.is_empty() {
        out.push_str(&format!("{:<14} {:<16} {:>6}\n", "layer", "kind", "count"));
        for ((layer, kind), n) in kinds.iter().take(max_rows) {
            out.push_str(&format!(
                "{:<14} {:<16} {:>6}\n",
                layer.name(),
                kind.name(),
                n
            ));
        }
        more(&mut out, kinds.len());
    }
    out
}

/// Renders a causal timeline: events in emission order, indented by the
/// depth of their span in the parent chain, so a migration's checkpoint,
/// transfer messages, and reactivation visually nest under the
/// migration's own span. Unbounded — at federation scale prefer
/// [`timeline_capped`].
pub fn timeline(events: &[Event]) -> String {
    timeline_capped(events, usize::MAX)
}

/// [`timeline`] truncated to the first `max_events` events, with a
/// `(+N more events)` marker making the truncation explicit. Span
/// depths are still computed over the whole stream, so the shown prefix
/// indents exactly as it would untruncated.
pub fn timeline_capped(events: &[Event], max_events: usize) -> String {
    // A span's parent is taken from the first event that declares it.
    let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        if let (Some(span), Some(parent)) = (e.span, e.parent) {
            parent_of.entry(span).or_insert(parent);
        }
    }
    let depth_of = |span: Option<u64>| -> usize {
        let mut d = 0usize;
        let mut cur = span;
        while let Some(s) = cur {
            match parent_of.get(&s) {
                Some(&p) if d < 16 => {
                    d += 1;
                    cur = Some(p);
                }
                _ => break,
            }
        }
        d
    };

    let mut out = String::new();
    for e in events.iter().take(max_events) {
        let indent = "  ".repeat(depth_of(e.span));
        out.push_str(&format!("t={:>8}us {}{}\n", e.t_us, indent, {
            let mut line = format!("[{}] {}", e.layer.name(), e.kind.name());
            if let Some(s) = e.span {
                line.push_str(&format!(" span={s}"));
            }
            if let Some(n) = e.node {
                line.push_str(&format!(" node={n}"));
            }
            if !e.detail.is_empty() {
                line.push_str(&format!(" — {}", e.detail));
            }
            line
        }));
    }
    if events.len() > max_events {
        out.push_str(&format!("(+{} more events)\n", events.len() - max_events));
    }
    out
}

/// Renders the metrics registry (delegates to [`Registry::render`]).
pub fn metrics_table(registry: &Registry) -> String {
    registry.render()
}

/// Renders the durable store's health block: WAL/snapshot footprint and
/// the compaction / recovery counters (`store.*`), plus the failure
/// transparency's lost-update counter, which the store-backed path must
/// keep at zero. Empty when no store metric has been recorded.
pub fn store_summary(registry: &Registry) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for (name, v) in registry.gauges() {
        if name.starts_with("store.") {
            rows.push((name.to_owned(), v.to_string()));
        }
    }
    for (name, v) in registry.counters() {
        if name.starts_with("store.") || name == "failure.lost_updates" {
            rows.push((name.to_owned(), v.to_string()));
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    rows.sort();
    let mut out = String::from("durable store:\n");
    for (name, v) in rows {
        out.push_str(&format!("  {name:<44} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, Layer};

    fn ev(seq: u64, kind: EventKind, span: Option<u64>, parent: Option<u64>) -> Event {
        Event {
            seq,
            t_us: seq * 10,
            layer: Layer::Netsim,
            kind,
            span,
            parent,
            node: Some(seq % 2),
            port: None,
            channel: Some(3),
            capsule: None,
            detail: format!("e{seq}"),
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_escaped() {
        let mut e = ev(0, EventKind::Send, Some(1), None);
        e.detail = "say \"hi\"\nline2\\".into();
        let line = event_to_json(&e);
        assert_eq!(
            line,
            "{\"seq\":0,\"t_us\":0,\"layer\":\"netsim\",\"kind\":\"send\",\"span\":1,\"node\":0,\"channel\":3,\"detail\":\"say \\\"hi\\\"\\nline2\\\\\"}"
        );
        let evs = vec![
            ev(0, EventKind::Send, Some(1), None),
            ev(1, EventKind::Deliver, Some(1), None),
        ];
        assert_eq!(to_jsonl(&evs), to_jsonl(&evs));
        assert_eq!(to_jsonl(&evs).lines().count(), 2);
    }

    #[test]
    fn summary_counts_nodes_and_channels() {
        let evs = vec![
            ev(0, EventKind::Send, Some(1), None),
            ev(1, EventKind::Deliver, Some(1), None),
            ev(2, EventKind::Drop, Some(2), None),
            ev(3, EventKind::TimerFired, None, None),
        ];
        let s = summary_table(&evs);
        assert!(s.contains("events: 4"));
        assert!(s.contains("channel"));
        assert!(s.contains("netsim"));
    }

    #[test]
    fn capped_exports_mark_truncation() {
        let evs: Vec<Event> = (0..20)
            .map(|i| ev(i, EventKind::Send, Some(1), None))
            .collect();
        let t = timeline_capped(&evs, 5);
        assert_eq!(t.lines().count(), 6);
        assert!(t.ends_with("(+15 more events)\n"));
        // Under the cap: no marker, identical to the unbounded render.
        assert_eq!(timeline_capped(&evs, 20), timeline(&evs));
        assert!(!timeline_capped(&evs, 20).contains("more events"));

        // 20 events over nodes 0/1, channel 3 — capping rows to 1 marks
        // the hidden node row.
        let s = summary_table_capped(&evs, 1);
        assert!(s.contains("(+1 more)"));
        assert_eq!(summary_table_capped(&evs, 100), summary_table(&evs));
    }

    #[test]
    fn store_summary_collects_store_metrics_only() {
        let mut reg = Registry::new();
        assert_eq!(store_summary(&reg), "", "no store metrics, no block");
        reg.gauge_set("store.log_bytes", 4096);
        reg.gauge_set("store.snapshot_bytes", 1024);
        reg.counter_add("store.compactions", 2);
        reg.counter_add("store.recovery_replayed", 17);
        reg.counter_add("failure.lost_updates", 0);
        reg.counter_add("netsim.sent", 99);
        let s = store_summary(&reg);
        assert!(s.starts_with("durable store:\n"));
        assert!(s.contains("store.log_bytes"));
        assert!(s.contains("store.snapshot_bytes"));
        assert!(s.contains("store.compactions"));
        assert!(s.contains("store.recovery_replayed"));
        assert!(s.contains("failure.lost_updates"));
        assert!(!s.contains("netsim.sent"));
    }

    #[test]
    fn timeline_indents_child_spans() {
        let evs = vec![
            ev(0, EventKind::CallStart, Some(1), None),
            ev(1, EventKind::Send, Some(2), Some(1)),
            ev(2, EventKind::Deliver, Some(2), Some(1)),
        ];
        let t = timeline(&evs);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[1].contains("  [netsim] send"));
        assert!(!lines[0].contains("  [netsim]"));
    }
}
