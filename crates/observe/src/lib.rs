//! # rmodp-observe — causal tracing and metrics across all five viewpoints
//!
//! The RM-ODP tutorial's central claim is that one system can be
//! described from five viewpoints at once. This crate makes that claim
//! *inspectable at runtime*: every layer of the workspace — the network
//! simulator, the engineering viewpoint's channels and nuclei, the
//! transparency functions, the trader, the transaction service — emits
//! structured events onto one [`bus`], tagged with a causal span, the
//! virtual simulation time, and its node/capsule/channel coordinates.
//!
//! Three things come out of that single stream:
//!
//! * **Traces** — a deterministic JSONL dump ([`export::to_jsonl`]), a
//!   per-node / per-channel [`export::summary_table`], and a causal
//!   [`export::timeline`] in which an invocation's marshalling, channel
//!   hops, retries, and the migration it raced against all nest under
//!   their causal parents.
//! * **Metrics** — a [`metrics::Registry`] of hierarchical counters,
//!   gauges, and sim-time histograms with p50/p95/p99 summaries.
//! * **An oracle** — [`oracle::verify_causality`] checks that the trace
//!   itself is causally sound (every `Deliver` has a preceding `Send`,
//!   the span graph is acyclic, sim time never runs backwards), turning
//!   observability into a correctness check run by the property tests.
//!
//! Determinism is a design constraint, not an afterthought: sequence and
//! span ids are dense counters, time is the simulator's virtual clock,
//! and the exporters use fixed field order — so the same seed yields a
//! byte-identical JSONL trace.
//!
//! The bus is thread-local (the simulation is single-threaded), so
//! emitting requires no handle plumbing and parallel test binaries stay
//! isolated. `Sim::new` resets it; see [`bus::reset`].

pub mod bus;
pub mod event;
pub mod export;
pub mod metrics;
pub mod oracle;

pub use event::{Event, EventBuilder, EventKind, Layer, SpanId};

/// Shorthand: starts building an event.
pub fn event(layer: Layer, kind: EventKind) -> EventBuilder {
    EventBuilder::new(layer, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_trace_and_export() {
        bus::reset();
        let call = bus::new_span();
        event(Layer::Engineering, EventKind::CallStart)
            .span(call)
            .node(0)
            .detail("op=Add")
            .emit();
        let msg = bus::new_span();
        bus::set_time_us(0);
        event(Layer::Netsim, EventKind::Send)
            .span(msg)
            .parent(call)
            .node(0)
            .emit();
        bus::set_time_us(1500);
        event(Layer::Netsim, EventKind::Deliver)
            .span(msg)
            .parent(call)
            .node(1)
            .emit();
        bus::observe("netsim.delivery_us", 1500);
        event(Layer::Engineering, EventKind::CallEnd)
            .span(call)
            .node(0)
            .emit();
        bus::counter_add("engineering.calls", 1);

        let events = bus::snapshot_events();
        assert_eq!(events.len(), 4);
        assert!(oracle::verify_causality(&events).is_empty());

        let jsonl = export::to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("\"kind\":\"call_start\""));

        let summary = export::summary_table(&events);
        assert!(summary.contains("events: 4"));

        let tl = export::timeline(&events);
        assert!(tl.contains("send"));

        let m = bus::snapshot_metrics();
        assert_eq!(m.counter("engineering.calls"), 1);
        assert_eq!(m.histogram("netsim.delivery_us").unwrap().count(), 1);
    }
}
