//! The thread-local event bus.
//!
//! Every crate in the workspace emits onto one per-thread bus through
//! free functions, so no plumbing of handles through constructors is
//! needed and there are no dependency cycles. The simulation is
//! single-threaded, which makes "per thread" mean "per simulation" in
//! practice (and keeps parallel test binaries isolated from each other).
//!
//! Determinism: sequence numbers and span ids are dense counters, time
//! comes from the simulator's virtual clock, and nothing reads the wall
//! clock — so the same seed produces a byte-identical event stream.
//! [`reset`] is called by `Sim::new`, giving each simulation a fresh
//! stream.

use crate::event::{Event, EventBuilder, SpanId};
use crate::metrics::{Histogram, Registry};
use std::cell::RefCell;

#[derive(Debug)]
struct BusState {
    enabled: bool,
    now_us: u64,
    next_seq: u64,
    next_span: SpanId,
    context: Vec<SpanId>,
    events: Vec<Event>,
    metrics: Registry,
}

impl BusState {
    fn fresh() -> Self {
        Self {
            enabled: true,
            now_us: 0,
            next_seq: 0,
            // Span 0 is reserved as "no span" in renderings.
            next_span: 1,
            context: Vec::new(),
            events: Vec::new(),
            metrics: Registry::new(),
        }
    }
}

thread_local! {
    static BUS: RefCell<BusState> = RefCell::new(BusState::fresh());
}

/// Clears the bus: events, metrics, counters, clock. Called by
/// `Sim::new` so each simulation starts a fresh deterministic stream.
/// The enabled/disabled setting survives the reset, so a benchmark that
/// turned recording off stays off across simulation rebuilds.
pub fn reset() {
    BUS.with(|b| {
        let enabled = b.borrow().enabled;
        let mut fresh = BusState::fresh();
        fresh.enabled = enabled;
        *b.borrow_mut() = fresh;
    });
}

/// Enables or disables recording. Disabled recording is a cheap no-op;
/// span allocation still works (ids keep advancing) so code paths do not
/// branch on the setting.
pub fn set_enabled(enabled: bool) {
    BUS.with(|b| b.borrow_mut().enabled = enabled);
}

/// Whether the bus is currently recording.
pub fn is_enabled() -> bool {
    BUS.with(|b| b.borrow().enabled)
}

/// Advances the bus's virtual clock (microseconds). Called by the
/// simulator as it processes the event queue.
pub fn set_time_us(t_us: u64) {
    BUS.with(|b| b.borrow_mut().now_us = t_us);
}

/// The bus's current virtual time in microseconds.
pub fn now_us() -> u64 {
    BUS.with(|b| b.borrow().now_us)
}

/// Pushes a span onto the causal context stack: spans allocated while it
/// is on top get it as their parent. The simulator pushes a message's
/// span around its handler so replies are causally linked; the engine
/// pushes an invocation's span around the whole call.
pub fn push_context(span: SpanId) {
    BUS.with(|b| b.borrow_mut().context.push(span));
}

/// Pops the causal context stack (no-op if empty).
pub fn pop_context() {
    BUS.with(|b| {
        b.borrow_mut().context.pop();
    });
}

/// The span on top of the causal context stack, if any.
pub fn current_context() -> Option<SpanId> {
    BUS.with(|b| b.borrow().context.last().copied())
}

/// Allocates a fresh causal span id.
pub fn new_span() -> SpanId {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        let id = s.next_span;
        s.next_span += 1;
        id
    })
}

/// Records an event built by [`EventBuilder`]; returns its sequence
/// number, or `None` if disabled.
pub(crate) fn record(builder: EventBuilder) -> Option<u64> {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if !s.enabled {
            return None;
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        let t_us = s.now_us;
        s.events.push(Event {
            seq,
            t_us,
            layer: builder.layer,
            kind: builder.kind,
            span: builder.span,
            parent: builder.parent,
            node: builder.node,
            port: builder.port,
            channel: builder.channel,
            capsule: builder.capsule,
            detail: builder.detail,
        });
        Some(seq)
    })
}

/// Number of events recorded so far.
pub fn event_count() -> usize {
    BUS.with(|b| b.borrow().events.len())
}

/// A copy of every event recorded so far, in emission order.
pub fn snapshot_events() -> Vec<Event> {
    BUS.with(|b| b.borrow().events.clone())
}

/// Removes and returns every event recorded so far.
pub fn take_events() -> Vec<Event> {
    BUS.with(|b| std::mem::take(&mut b.borrow_mut().events))
}

/// Adds to a counter in the bus's metrics registry.
pub fn counter_add(name: &str, v: u64) {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if s.enabled {
            s.metrics.counter_add(name, v);
        }
    });
}

/// Sets a gauge in the bus's metrics registry.
pub fn gauge_set(name: &str, v: i64) {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if s.enabled {
            s.metrics.gauge_set(name, v);
        }
    });
}

/// Records a histogram sample (typically sim-time microseconds).
pub fn observe(name: &str, v: u64) {
    BUS.with(|b| {
        let mut s = b.borrow_mut();
        if s.enabled {
            s.metrics.observe(name, v);
        }
    });
}

/// A copy of the metrics registry.
pub fn snapshot_metrics() -> Registry {
    BUS.with(|b| b.borrow().metrics.clone())
}

/// Reads one counter (0 if absent).
pub fn counter(name: &str) -> u64 {
    BUS.with(|b| b.borrow().metrics.counter(name))
}

/// Reads one histogram (cloned; `None` if absent).
pub fn histogram(name: &str) -> Option<Histogram> {
    BUS.with(|b| b.borrow().metrics.histogram(name).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventBuilder, EventKind, Layer};

    #[test]
    fn bus_records_in_order_with_dense_seq() {
        reset();
        set_time_us(5);
        let s1 = new_span();
        EventBuilder::new(Layer::Netsim, EventKind::Send)
            .span(s1)
            .node(0)
            .detail("a")
            .emit();
        set_time_us(9);
        EventBuilder::new(Layer::Netsim, EventKind::Deliver)
            .span(s1)
            .node(1)
            .emit();
        let evs = snapshot_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[0].t_us, 5);
        assert_eq!(evs[1].t_us, 9);
        assert_eq!(evs[0].span, Some(s1));
    }

    #[test]
    fn disabled_bus_drops_events_and_metrics() {
        reset();
        set_enabled(false);
        assert!(!is_enabled());
        EventBuilder::new(Layer::Application, EventKind::Note).emit();
        counter_add("c", 1);
        observe("h", 1);
        assert_eq!(event_count(), 0);
        assert_eq!(counter("c"), 0);
        set_enabled(true);
        EventBuilder::new(Layer::Application, EventKind::Note).emit();
        assert_eq!(event_count(), 1);
    }

    #[test]
    fn reset_restarts_spans_and_seq() {
        reset();
        let a = new_span();
        reset();
        let b = new_span();
        assert_eq!(a, b);
        assert_eq!(event_count(), 0);
    }
}
